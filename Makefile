# Test tiers (see pyproject.toml [tool.pytest.ini_options]):
#   test        - tier-1: fast suite; `slow` and `bench` marked tests excluded
#                 by addopts.
#   test-all    - everything in tests/, including the exhaustive `slow`
#                 equivalence/property sweeps (`-m ""` clears the addopts
#                 marker filter).
#   bench       - the full figure/ablation benchmark harness.
#   bench-scaling - just the parallel-pipeline throughput bench; writes
#                 benchmarks/results/parallel_scaling.txt.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-all bench bench-scaling

test:
	$(PYTEST) -x -q

test-all:
	$(PYTEST) -q -m ""

bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m "" benchmarks/

bench-scaling:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_parallel_scaling.py
