# Test tiers (see pyproject.toml [tool.pytest.ini_options]):
#   test        - tier-1: fast suite; `slow` and `bench` marked tests excluded
#                 by addopts.
#   test-all    - everything in tests/, including the exhaustive `slow`
#                 equivalence/property sweeps (`-m ""` clears the addopts
#                 marker filter) and the observability coverage floor.
#   test-faults - just the fault-injection matrix (`faults` marker):
#                 store corruption detection, shard retry/quarantine,
#                 degraded-run accounting. Also part of tier-1.
#   coverage    - the obs-, store-, and fault-subsystem tests under
#                 pytest-cov with a fail-under floor on src/repro/obs/ +
#                 src/repro/store/ + src/repro/faultinject.py.
#                 Gated: when pytest-cov is not installed the tests still
#                 run, without the floor, instead of erroring (the container
#                 may not ship coverage tooling).
#   bench       - the full figure/ablation benchmark harness.
#   bench-scaling - just the parallel-pipeline throughput bench; writes
#                 benchmarks/results/parallel_scaling.txt.
#   bench-io    - the store-vs-JSONL ingest/pushdown bench; writes
#                 benchmarks/results/BENCH_io.json.
#   test-kernels - just the batch-kernel suite (`kernels` marker): the
#                 batch-vs-row differential oracle matrix and the
#                 per-kernel Hypothesis properties. Also part of tier-1.
#   bench-analyze - the batch-vs-row analysis-engine bench; writes
#                 benchmarks/results/BENCH_analyze.json.
#   test-streaming - just the streaming suite (`streaming` marker): the
#                 route-monitor window semantics and the ingest
#                 watermark/replay-equivalence tests. Also part of tier-1.
#   bench-ingest - the streaming-ingest throughput/seal-latency bench;
#                 writes benchmarks/results/BENCH_ingest.json.
#   test-serve  - just the query-serving suite (`serve` marker): endpoint
#                 contracts vs the batch path, the LRU cache property,
#                 concurrent-client + live-append semantics, and served
#                 fault attribution. Also part of tier-1.
#   bench-serve - the serving load benchmark (concurrent clients, p50/p99
#                 latency, cache hit-rate floor); writes
#                 benchmarks/results/BENCH_serve.json.
#   test-dist   - just the dispatch suite (`dist` marker): the wire
#                 protocol, the worker daemon, dispatch-vs-serial
#                 equivalence (golden trace, both engines), worker-death
#                 reassignment, and the executor-conformance contract
#                 across all four backends. Also part of tier-1.
#   bench-dist  - dispatch over two local daemons vs the process pool on
#                 the same workload; writes benchmarks/results/BENCH_dist.json.
#   test-netsim - just the simulator suite (`netsim` marker): the packet
#                 simulator (engine, link, TCP), the CC-conformance contract
#                 across all registered congestion controls, the validation
#                 sweep, and the scenario bugfix regressions. Also part of
#                 tier-1.
#   bench-cc-matrix - the CC/protocol scenario-matrix ablation (validation
#                 sweep per CC + mobile HDratio/MinRTT distributions);
#                 writes benchmarks/results/ablation_cc_matrix.txt.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

OBS_TESTS = tests/test_obs_registry.py tests/test_obs_tracing.py \
            tests/test_obs_manifest.py tests/test_obs_pipeline.py
STORE_TESTS = tests/test_store.py tests/test_store_pipeline.py \
              tests/test_store_compact.py
FAULT_TESTS = tests/test_fault_tolerance.py
KERNEL_TESTS = tests/test_batch_equivalence.py tests/test_kernels_property.py
STREAMING_TESTS = tests/test_pipeline_streaming.py tests/test_pipeline_ingest.py
SERVE_TESTS = tests/test_serve_api.py tests/test_serve_cache.py \
              tests/test_serve_concurrency.py
DIST_TESTS = tests/test_dist.py tests/test_executor_contract.py
NETSIM_TESTS = tests/test_netsim_engine.py tests/test_netsim_link.py \
               tests/test_netsim_tcp.py tests/test_netsim_congestion.py \
               tests/test_netsim_scenarios.py tests/test_netsim_pep.py \
               tests/test_netsim_trace.py tests/test_cc_contract.py
COV_FLOOR = 85

.PHONY: test test-all test-faults test-kernels test-streaming test-serve \
	test-dist test-netsim coverage bench bench-scaling bench-io \
	bench-analyze bench-ingest bench-serve bench-dist bench-cc-matrix

test:
	$(PYTEST) -x -q

test-all: coverage test-faults test-kernels test-streaming test-serve \
		test-dist test-netsim
	$(PYTEST) -q -m ""

test-faults:
	$(PYTEST) -q -m faults

test-kernels:
	$(PYTEST) -q -m kernels

test-streaming:
	$(PYTEST) -q -m streaming

test-serve:
	$(PYTEST) -q -m serve

test-dist:
	$(PYTEST) -q -m dist

test-netsim:
	$(PYTEST) -q -m netsim

coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTEST) -q -m "" $(OBS_TESTS) $(STORE_TESTS) $(FAULT_TESTS) \
			$(KERNEL_TESTS) $(STREAMING_TESTS) $(SERVE_TESTS) \
			$(DIST_TESTS) $(NETSIM_TESTS) \
			--cov=repro.obs --cov=repro.store --cov=repro.faultinject \
			--cov=repro.kernels --cov=repro.pipeline.ingest \
			--cov=repro.serve --cov=repro.dist \
			--cov=repro.netsim.congestion \
			--cov-report=term-missing \
			--cov-fail-under=$(COV_FLOOR); \
	else \
		echo "pytest-cov not installed; running obs/store/fault/kernel/" \
		     "streaming/serve/dist/netsim tests without the $(COV_FLOOR)% floor"; \
		$(PYTEST) -q -m "" $(OBS_TESTS) $(STORE_TESTS) $(FAULT_TESTS) \
			$(KERNEL_TESTS) $(STREAMING_TESTS) $(SERVE_TESTS) \
			$(DIST_TESTS) $(NETSIM_TESTS); \
	fi

bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m "" benchmarks/

bench-scaling:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_parallel_scaling.py

bench-io:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_io.py

bench-analyze:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_analyze.py

bench-ingest:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_ingest.py

bench-serve:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_serve.py

bench-dist:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_dist.py

bench-cc-matrix:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m "" benchmarks/test_ablation_cc_matrix.py
