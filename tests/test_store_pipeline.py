"""Store-backed analysis must be byte-identical to JSONL-backed analysis.

The acceptance bar for the columnar store: converting the golden trace and
re-running the pipeline over the store — serially or sharded — changes no
analysis output and no data-fact counter. Plus the pushdown guarantee: a
filtered scan decodes strictly fewer bytes than a full one.
"""

import json
import pathlib

import pytest

from repro.obs import MetricsRegistry
from repro.pipeline import (
    ParallelOptions,
    StudyDataset,
    build_dataset,
    convert,
    dataset_from_source,
    detect_format,
)
from repro.store import ScanFilter, TraceStoreReader

DATA = pathlib.Path(__file__).parent / "data"
TRACE = DATA / "golden_trace.jsonl.gz"


@pytest.fixture(scope="module")
def snapshot():
    return json.loads((DATA / "golden_report.json").read_text())


@pytest.fixture(scope="module")
def golden_store(tmp_path_factory):
    path = tmp_path_factory.mktemp("golden") / "golden.store"
    convert(TRACE, path)
    return path


@pytest.fixture(scope="module")
def jsonl_dataset(snapshot):
    return build_dataset(TRACE, study_windows=snapshot["study_windows"])


@pytest.fixture(scope="module")
def store_dataset(golden_store, snapshot):
    return build_dataset(golden_store, study_windows=snapshot["study_windows"])


def assert_same_analysis_state(a: StudyDataset, b: StudyDataset) -> None:
    """Bit-identical dataset state: rows, aggregation store, accounting."""
    assert a.rows == b.rows
    assert [k for k, _ in a.store.items()] == [k for k, _ in b.store.items()]
    for (_, agg_a), (_, agg_b) in zip(a.store.items(), b.store.items()):
        assert agg_a.min_rtts_ms == agg_b.min_rtts_ms
        assert agg_a.hdratios == agg_b.hdratios
        assert agg_a.traffic_bytes == agg_b.traffic_bytes
        assert agg_a.session_count == agg_b.session_count
        assert agg_a.route == agg_b.route
    assert a.filter_stats.dropped_sessions == b.filter_stats.dropped_sessions
    assert a.filter_stats.kept_bytes == b.filter_stats.kept_bytes


class TestGoldenEquivalence:
    def test_conversion_preserves_stream_exactly(self, golden_store):
        from repro.pipeline import read_samples

        assert detect_format(golden_store) == "store"
        assert list(read_samples(golden_store)) == list(read_samples(TRACE))

    def test_store_backed_serial_equals_jsonl_serial(
        self, jsonl_dataset, store_dataset
    ):
        assert_same_analysis_state(store_dataset, jsonl_dataset)

    def test_shared_counters_agree_across_formats(
        self, jsonl_dataset, store_dataset
    ):
        """Counters that describe the *data* (not the storage) must not
        depend on which format fed the pipeline."""
        a = jsonl_dataset.metrics.counters
        b = store_dataset.metrics.counters
        shared = {
            name
            for name in a.keys() & b.keys()
            if not name.startswith("store.")
        }
        assert {n for n in a if not n.startswith("store.")} == shared
        for name in shared:
            assert a[name] == b[name], name

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_store_backed_parallel_equals_serial(
        self, golden_store, store_dataset, snapshot, executor
    ):
        parallel = build_dataset(
            golden_store,
            study_windows=snapshot["study_windows"],
            options=ParallelOptions(workers=4, executor=executor),
        )
        assert_same_analysis_state(parallel, store_dataset)
        # The full counter-equality invariant extends to store.* counters:
        # each partition is decoded exactly once whatever the shard plan.
        assert parallel.metrics.counters == store_dataset.metrics.counters
        assert parallel.metrics.gauges == store_dataset.metrics.gauges

    def test_figure_results_identical(
        self, jsonl_dataset, store_dataset
    ):
        from repro.pipeline import fig6_global_performance, fig9_opportunity

        fig6_a = fig6_global_performance(jsonl_dataset)
        fig6_b = fig6_global_performance(store_dataset)
        assert fig6_a.median_minrtt == fig6_b.median_minrtt
        assert fig6_a.p80_minrtt == fig6_b.p80_minrtt
        assert (
            fig6_a.hdratio_positive_fraction
            == fig6_b.hdratio_positive_fraction
        )
        fig9_a = fig9_opportunity(jsonl_dataset)
        fig9_b = fig9_opportunity(store_dataset)
        assert fig9_a.minrtt.differences == fig9_b.minrtt.differences
        assert (
            fig9_a.minrtt.valid_traffic_fraction
            == fig9_b.minrtt.valid_traffic_fraction
        )

    def test_dataset_from_source_accepts_store_paths(
        self, golden_store, store_dataset, snapshot
    ):
        via_driver = dataset_from_source(
            str(golden_store), study_windows=snapshot["study_windows"]
        )
        assert_same_analysis_state(via_driver, store_dataset)


class TestPredicatePushdown:
    def test_filtered_build_decodes_strictly_fewer_bytes(self, golden_store):
        reader = TraceStoreReader(golden_store)
        # Pick the PoP of the first partition so the filter matches some
        # but (given >1 PoP in the golden trace) not all partitions.
        pop = reader.partitions[0]["pop"]
        pops = {p["pop"] for p in reader.partitions}
        assert len(pops) > 1, "golden trace must span multiple PoPs"

        full = MetricsRegistry()
        list(reader.scan(metrics=full))
        filtered = MetricsRegistry()
        list(reader.scan(ScanFilter(pops=pop), metrics=filtered))

        assert filtered.counter("store.partitions.pruned") > 0
        assert filtered.counter("store.bytes.skipped") > 0
        assert filtered.counter("store.bytes.read") < full.counter(
            "store.bytes.read"
        )
        assert filtered.counter("store.rows.decoded") < full.counter(
            "store.rows.decoded"
        )

    def test_filtered_dataset_equals_filtering_after_read(
        self, golden_store, snapshot
    ):
        from repro.pipeline import read_samples

        reader = TraceStoreReader(golden_store)
        scan_filter = ScanFilter(pops=reader.partitions[0]["pop"])
        pushed = StudyDataset.from_trace(
            golden_store,
            study_windows=snapshot["study_windows"],
            scan_filter=scan_filter,
        )
        plain = StudyDataset(study_windows=snapshot["study_windows"])
        plain.ingest(
            s for s in read_samples(TRACE) if scan_filter.admits_sample(s)
        )
        assert pushed.rows == plain.rows
        assert [k for k, _ in pushed.store.items()] == [
            k for k, _ in plain.store.items()
        ]

    def test_scan_filter_on_jsonl_is_rejected(self, snapshot):
        with pytest.raises(ValueError, match="store"):
            StudyDataset.from_trace(
                TRACE,
                study_windows=snapshot["study_windows"],
                scan_filter=ScanFilter(pops="ams1"),
            )
