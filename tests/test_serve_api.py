"""Endpoint contract tests: a served number IS the batch number.

The serving layer inherits the equivalence-to-serial contract — every
``/v1`` response on the golden-trace store must carry exactly the values
the batch pipeline computes (same figure drivers, same dataset fold), and
the CLI-formatted strings embedded in responses must match ``repro
analyze`` / ``repro routing`` stdout character for character. Cold-cache
and warm-cache responses must be *byte*-identical (canonical rendering +
response memoization), and the row and batch engines must serve identical
bytes.

Filtered queries are checked against an independent oracle: the golden
trace re-read in plain Python with the filter applied by hand, folded
through ``StudyDataset`` directly — no ScanFilter, no store pruning — so
a pruning bug cannot cancel itself out.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.core.aggregation import window_index
from repro.pipeline.dataset import StudyDataset
from repro.pipeline.experiments import fig6_global_performance
from repro.pipeline.io import convert, read_samples
from repro.pipeline.routing_analysis import fig9_opportunity
from repro.serve import QueryEngine, render_payload

pytestmark = pytest.mark.serve

TRACE = pathlib.Path(__file__).parent / "data" / "golden_trace.jsonl.gz"
GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_report.json"


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_api") / "golden.store"
    convert(TRACE, path)
    return path


@pytest.fixture(scope="module")
def engine(store_path):
    return QueryEngine(store_path)


def get(engine, path, **params):
    """Engine call with HTTP-shaped params: every value a list of strings."""
    query = {
        key: value if isinstance(value, list) else [str(value)]
        for key, value in params.items()
    }
    status, payload = engine.handle(path, query)
    return status, payload


class TestQuantilesContract:
    def test_matches_golden_report_fig6(self, engine):
        status, payload = get(engine, "/v1/quantiles")
        assert status == 200
        golden = json.loads(GOLDEN.read_text())
        assert payload["study_windows"] == golden["study_windows"]
        assert payload["sessions"] == golden["session_count"]
        fig6 = golden["fig6"]
        assert payload["minrtt_ms"]["p50"] == fig6["median_minrtt"]
        assert payload["minrtt_ms"]["p80"] == fig6["p80_minrtt"]
        assert (
            payload["hdratio"]["positive_fraction"]
            == fig6["hdratio_positive_fraction"]
        )

    def test_matches_batch_driver_exactly(self, engine, store_path):
        status, payload = get(engine, "/v1/quantiles")
        assert status == 200
        dataset = StudyDataset(study_windows=engine.study_windows)
        dataset.ingest(read_samples(TRACE))
        result = fig6_global_performance(dataset)
        for q in (0.5, 0.8, 0.9, 0.99):
            assert payload["minrtt_ms"][f"p{int(q * 100)}"] == (
                result.minrtt_all.quantile(q)
            )
        assert payload["hdratio"]["full_fraction"] == (
            result.hdratio_full_fraction
        )

    def test_formatted_strings_match_analyze_cli(
        self, engine, store_path, capsys
    ):
        code = main(
            ["analyze", str(store_path), "--windows", str(engine.study_windows)]
        )
        assert code == 0
        out = capsys.readouterr().out
        _, payload = get(engine, "/v1/quantiles")
        formatted = payload["formatted"]
        assert f"global MinRTT p50: {formatted['minrtt_p50']}" in out
        assert f"global MinRTT p80: {formatted['minrtt_p80']}" in out
        assert (
            f"HDratio > 0: {formatted['hdratio_positive']}" in out
        )


class TestRoutingContract:
    def test_matches_batch_driver_exactly(self, engine):
        status, payload = get(engine, "/v1/routing")
        assert status == 200
        dataset = StudyDataset(
            study_windows=engine.routing_windows,
            keep_response_sizes=False,
            window_seconds=engine.routing_window_seconds,
        )
        dataset.ingest(read_samples(TRACE))
        result = fig9_opportunity(dataset)
        assert payload["minrtt"]["within_slack_fraction"] == (
            result.minrtt_within_of_optimal(3.0)
        )
        assert payload["minrtt"]["improvable_fraction_ci"] == (
            result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True)
        )
        assert payload["hdratio"]["improvable_fraction_ci"] == (
            result.hdratio.traffic_fraction_at_least(0.05, use_ci_low=True)
        )

    def test_formatted_strings_match_routing_cli(
        self, engine, store_path, capsys
    ):
        code = main(["routing", "--trace", str(store_path)])
        assert code == 0
        out = capsys.readouterr().out
        _, payload = get(engine, "/v1/routing")
        formatted = payload["formatted"]
        assert (
            f"within 3 ms of optimal: {formatted['minrtt_within_slack']} "
            in out
        )
        assert f"{formatted['minrtt_improvable']} (paper ~2.0%)" in out
        assert f"{formatted['hdratio_improvable']} (paper ~0.2%)" in out


class TestDegradationContract:
    def test_matches_direct_classification(self, engine):
        from repro.core.classification import classify_group
        from repro.core.constants import DEFAULT_MINRTT_THRESHOLD_MS

        status, payload = get(engine, "/v1/degradation")
        assert status == 200
        dataset = StudyDataset(study_windows=engine.study_windows)
        dataset.ingest(read_samples(TRACE))
        verdict_map = dataset.verdicts("minrtt", "degradation")
        assert payload["groups_total"] == len(verdict_map)
        expected_counts: dict = {}
        for group, verdicts in verdict_map.items():
            classification = classify_group(
                verdicts,
                DEFAULT_MINRTT_THRESHOLD_MS,
                dataset.study_windows,
                windows_per_day=dataset.windows_per_day,
            )
            label = (
                classification.temporal_class.value
                if classification.temporal_class is not None
                else "unclassified"
            )
            expected_counts[label] = expected_counts.get(label, 0) + 1
        assert payload["class_counts"] == dict(sorted(expected_counts.items()))

    def test_groups_sorted_and_attributed(self, engine):
        _, payload = get(engine, "/v1/degradation")
        keys = [(g["pop"], g["prefix"], g["country"]) for g in payload["groups"]]
        assert keys == sorted(keys)
        assert all(g["temporal_class"] for g in payload["groups"])

    def test_hdratio_metric_variant(self, engine):
        status, payload = get(engine, "/v1/degradation", metric="hdratio")
        assert status == 200
        assert payload["metric"] == "hdratio"
        assert payload["threshold"] == pytest.approx(0.05)


class TestFilteredQueries:
    """Served filters vs a hand-rolled Python oracle (no store involved)."""

    @pytest.mark.parametrize(
        "pops,countries",
        [(("ams1",), None), (None, ("NL", "BR")), (("gru1", "sjc1"), ("BR",))],
    )
    def test_pop_country_filters_match_oracle(self, engine, pops, countries):
        params = {}
        if pops:
            params["pop"] = list(pops)
        if countries:
            params["country"] = list(countries)
        status, payload = get(engine, "/v1/quantiles", **params)
        assert status == 200
        oracle = StudyDataset(study_windows=engine.study_windows)
        oracle.ingest(
            s
            for s in read_samples(TRACE)
            if (pops is None or s.pop in pops)
            and (countries is None or s.client_country in countries)
        )
        result = fig6_global_performance(oracle)
        assert payload["sessions"] == oracle.session_count
        assert payload["minrtt_ms"]["p50"] == result.minrtt_all.quantile(0.5)
        assert payload["minrtt_ms"]["p80"] == result.minrtt_all.quantile(0.8)

    @pytest.mark.parametrize("window", ["0", "1-2", "0-3", "3"])
    def test_window_range_matches_oracle(self, engine, window):
        status, payload = get(engine, "/v1/quantiles", window=window)
        assert status == 200
        lo, _, hi = window.partition("-")
        lo, hi = int(lo), int(hi) if hi else int(lo)
        oracle = StudyDataset(study_windows=engine.study_windows)
        oracle.ingest(
            s
            for s in read_samples(TRACE)
            if lo <= window_index(s.end_time, engine.window_seconds) <= hi
        )
        assert payload["sessions"] == oracle.session_count
        result = fig6_global_performance(oracle)
        assert payload["minrtt_ms"]["p50"] == result.minrtt_all.quantile(0.5)

    def test_window_boundary_not_over_admitted(self, engine):
        """A window filter must not leak the next window's first sample.

        ScanFilter's inclusive time bound admits end_time == (hi+1)*W at
        the partition level; the exact row predicate must drop it.
        """
        _, w0 = get(engine, "/v1/quantiles", window="0")
        _, w1 = get(engine, "/v1/quantiles", window="1")
        _, w01 = get(engine, "/v1/quantiles", window="0-1")
        assert w0["sessions"] + w1["sessions"] == w01["sessions"]

    def test_empty_filter_result_is_na_not_crash(self, engine):
        status, payload = get(engine, "/v1/quantiles", pop="nonexistent")
        assert status == 200
        assert payload["sessions"] == 0
        assert payload["minrtt_ms"]["p50"] is None
        assert payload["formatted"]["minrtt_p50"] == "n/a"


class TestByteIdentity:
    def test_cold_vs_warm_byte_identical_all_endpoints(self, store_path):
        engine = QueryEngine(store_path)
        queries = [
            ("/v1/quantiles", {}),
            ("/v1/quantiles", {"pop": ["ams1"]}),
            ("/v1/degradation", {"metric": ["hdratio"]}),
            ("/v1/routing", {}),
        ]
        cold = [render_payload(engine.handle(p, q)[1]) for p, q in queries]
        warm = [render_payload(engine.handle(p, q)[1]) for p, q in queries]
        assert cold == warm
        assert engine.cache.hits >= len(queries)

    def test_row_vs_batch_engine_byte_identical(self, store_path):
        row = QueryEngine(store_path, engine="row")
        batch = QueryEngine(store_path, engine="batch")
        for path in ("/v1/quantiles", "/v1/degradation", "/v1/routing"):
            _, row_payload = row.handle(path, {})
            _, batch_payload = batch.handle(path, {})
            row_payload = dict(row_payload)
            batch_payload = dict(batch_payload)
            # The engine name is echoed in the payload by design; the
            # numbers must match byte-for-byte once it is removed.
            assert row_payload.pop("engine") == "row"
            assert batch_payload.pop("engine") == "batch"
            assert render_payload(row_payload) == render_payload(batch_payload)

    def test_fresh_engine_byte_identical_to_warm_engine(self, store_path):
        first = QueryEngine(store_path)
        for _ in range(3):
            first.handle("/v1/quantiles", {})
        second = QueryEngine(store_path)
        assert render_payload(first.handle("/v1/quantiles", {})[1]) == (
            render_payload(second.handle("/v1/quantiles", {})[1])
        )


class TestHealthAndErrors:
    def test_health_ok_on_clean_store(self, engine):
        status, payload = get(engine, "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["quarantine"]["count"] == 0
        assert payload["generation"]["partitions"] > 0

    def test_health_verify_audits_store(self, engine):
        status, payload = get(engine, "/v1/health", verify="1")
        assert status == 200
        assert payload["verify"]["ok"] is True
        assert payload["verify"]["partitions_corrupt"] == 0

    def test_unknown_parameter_rejected(self, engine):
        status, payload = get(engine, "/v1/quantiles", bogus="1")
        assert status == 400
        assert payload["error"] == "bad_request"
        assert "bogus" in payload["detail"]

    def test_unknown_path_404(self, engine):
        status, payload = get(engine, "/v1/unknown")
        assert status == 404
        assert "/v1/quantiles" in payload["paths"]

    @pytest.mark.parametrize(
        "params",
        [
            {"window": "abc"},
            {"window": "3-1"},
            {"window": "-2"},
            {"metric": "loss"},
            {"threshold": "NaNopes"},
            {"limit": "0"},
        ],
    )
    def test_bad_values_rejected(self, engine, params):
        path = (
            "/v1/degradation"
            if set(params) & {"metric", "threshold", "limit"}
            else "/v1/quantiles"
        )
        status, payload = get(engine, path, **params)
        assert status == 400

    def test_repeated_scalar_parameter_rejected(self, engine):
        status, _ = get(engine, "/v1/degradation", metric=["minrtt", "hdratio"])
        assert status == 400

    def test_counters_account_for_every_request(self, store_path):
        engine = QueryEngine(store_path)
        outcomes = [
            engine.handle("/v1/quantiles", {})[0],
            engine.handle("/v1/quantiles", {})[0],
            engine.handle("/v1/quantiles", {"bogus": ["1"]})[0],
            engine.handle("/v1/nope", {})[0],
        ]
        assert outcomes == [200, 200, 400, 404]
        assert engine.metrics.counter("serve.requests") == 4
        assert engine.metrics.counter("serve.responses.ok") == 2
        assert engine.metrics.counter("serve.responses.client_error") == 2
        assert engine.metrics.counter("serve.responses.server_error") == 0
