"""Tests for the §6.2.2 detour controllers and their closed loop."""

import math

import pytest

from repro.edge.detour import (
    CongestibleRoute,
    GradualController,
    GreedyShifter,
    simulate_control_loop,
)
from repro.stats.median_ci import MedianComparison


def comparison(difference, half_width=0.5, valid=True):
    return MedianComparison(
        difference=difference,
        ci_low=difference - half_width,
        ci_high=difference + half_width,
        valid=valid,
        n_a=100,
        n_b=100,
    )


class TestCongestibleRoute:
    def test_flat_below_knee(self):
        route = CongestibleRoute(base_rtt_ms=30.0, capacity=10.0)
        assert route.rtt_at_load(0.0) == 30.0
        assert route.rtt_at_load(6.9) == 30.0

    def test_penalty_grows_past_knee(self):
        route = CongestibleRoute(base_rtt_ms=30.0, capacity=10.0)
        mild = route.rtt_at_load(8.0)
        heavy = route.rtt_at_load(9.8)
        assert 30.0 < mild < heavy
        assert heavy <= 30.0 + route.max_penalty_ms

    def test_zero_capacity(self):
        route = CongestibleRoute(base_rtt_ms=30.0, capacity=0.0)
        assert route.rtt_at_load(1.0) == 30.0 + route.max_penalty_ms


class TestGreedyShifter:
    def test_all_or_nothing(self):
        shifter = GreedyShifter()
        assert shifter.update(comparison(+5.0)) == 1.0
        assert shifter.update(comparison(-1.0)) == 0.0

    def test_invalid_comparison_means_no_shift(self):
        shifter = GreedyShifter()
        shifter.update(comparison(+5.0))
        assert shifter.update(comparison(+5.0, valid=False)) == 0.0


class TestGradualController:
    def test_only_moves_on_confident_win(self):
        controller = GradualController(step=0.1, improve_threshold_ms=3.0)
        # Difference 3.2 with CI low 2.7 does not clear the 3 ms bar.
        assert controller.update(comparison(3.2)) == 0.0
        # Clear win: one step.
        assert controller.update(comparison(8.0)) == pytest.approx(0.1)

    def test_bounded_steps(self):
        controller = GradualController(step=0.1)
        for _ in range(5):
            controller.update(comparison(10.0))
        assert controller.split == pytest.approx(0.5)

    def test_backoff_and_cooldown(self):
        controller = GradualController(step=0.2, backoff=0.5, cooldown=2)
        controller.update(comparison(10.0))
        controller.update(comparison(10.0))
        assert controller.split == pytest.approx(0.4)
        controller.update(comparison(-2.0))   # advantage gone
        assert controller.split == pytest.approx(0.2)
        # Cooldown: the next confident win does not move the split yet.
        controller.update(comparison(10.0))
        controller.update(comparison(10.0))
        assert controller.split == pytest.approx(0.2)
        controller.update(comparison(10.0))
        assert controller.split == pytest.approx(0.4)

    def test_congestion_onset_freezes(self):
        controller = GradualController(step=0.2, congestion_onset_ms=2.0, cooldown=0)
        controller.update(comparison(10.0), alternate_median_ms=28.0)
        controller.update(comparison(10.0), alternate_median_ms=28.1)
        assert controller.split == pytest.approx(0.4)
        # Load-driven RTT inflation on the alternate: retreat one step and
        # freeze further increases.
        controller.update(comparison(10.0), alternate_median_ms=31.5)
        assert controller.split == pytest.approx(0.2)
        assert controller.onset_stops == 1
        controller.update(comparison(10.0), alternate_median_ms=28.0)
        assert controller.split == pytest.approx(0.2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradualController(step=0.0)
        with pytest.raises(ValueError):
            GradualController(backoff=1.0)


class TestClosedLoop:
    def _routes(self):
        preferred = CongestibleRoute(base_rtt_ms=40.0, capacity=100.0)
        alternate = CongestibleRoute(base_rtt_ms=28.0, capacity=7.0)
        return preferred, alternate

    def test_greedy_oscillates(self):
        preferred, alternate = self._routes()
        trace = simulate_control_loop(GreedyShifter(), preferred, alternate)
        assert trace.oscillations() > 10
        assert not trace.settled()

    def test_gradual_converges(self):
        preferred, alternate = self._routes()
        trace = simulate_control_loop(GradualController(), preferred, alternate)
        assert trace.oscillations() == 0
        assert trace.settled()
        assert 0.0 < trace.final_split < 1.0

    def test_gradual_improves_mean_latency(self):
        preferred, alternate = self._routes()
        trace = simulate_control_loop(GradualController(), preferred, alternate)
        tail = trace.mean_rtts[-10:]
        assert sum(tail) / len(tail) < 40.0  # better than never shifting

    def test_gradual_stays_off_worse_alternate(self):
        preferred = CongestibleRoute(base_rtt_ms=30.0, capacity=100.0)
        alternate = CongestibleRoute(base_rtt_ms=45.0, capacity=100.0)
        trace = simulate_control_loop(GradualController(), preferred, alternate)
        assert trace.final_split == 0.0

    def test_gradual_uses_ample_alternate_fully(self):
        preferred = CongestibleRoute(base_rtt_ms=40.0, capacity=100.0)
        alternate = CongestibleRoute(base_rtt_ms=25.0, capacity=100.0)
        trace = simulate_control_loop(GradualController(), preferred, alternate)
        assert trace.final_split >= 0.9
