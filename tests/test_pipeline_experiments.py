"""Tests for the figure drivers (1–7) on a small synthetic dataset."""

import dataclasses

import pytest

from repro.pipeline.dataset import StudyDataset
from repro.pipeline.experiments import (
    CdfSeries,
    ablation_naive_goodput,
    fig1_session_behaviour,
    fig2_transfer_sizes,
    fig3_transaction_counts,
    fig5_population_mix,
    fig6_global_performance,
    fig7_rtt_vs_hdratio,
)
from repro.workload.scenario import EdgeScenario, ScenarioConfig

# Three networks per metro: per-continent statistics need a few networks to
# average over their (random) dominant access classes.
SMALL = ScenarioConfig(
    seed=13,
    days=1,
    networks_per_metro=3,
    base_sessions_per_window=3.0,
    include_figure5_network=True,
)


@pytest.fixture(scope="module")
def dataset():
    scenario = EdgeScenario(SMALL)
    ds = StudyDataset(study_windows=SMALL.total_windows, compute_naive=True)
    ds.ingest(scenario.generate())
    return ds


@pytest.fixture(scope="module")
def fig5_samples():
    # Dense sampling of just the dual-metro network: the per-window median
    # split needs tens of sessions per window.
    config = dataclasses.replace(
        SMALL, networks_per_metro=1, base_sessions_per_window=30.0
    )
    scenario = EdgeScenario(config)
    fig5_state = next(
        s for s in scenario.networks if s.network.secondary_metro is not None
    )
    scenario.networks = [fig5_state]
    return list(scenario.generate())


class TestCdfSeries:
    def test_of_and_queries(self):
        series = CdfSeries.of("x", [1.0, 2.0, 3.0, 4.0])
        assert series.fraction_at_most(2.0) == pytest.approx(0.5)
        assert series.fraction_at_most(0.5) == 0.0
        assert series.quantile(0.5) == pytest.approx(2.5)


class TestFig1(object):
    def test_checkpoints_near_paper(self, dataset):
        result = fig1_session_behaviour(dataset)
        assert 0.03 < result.under_one_second < 0.13
        assert 0.25 < result.under_one_minute < 0.50
        assert 0.12 < result.over_three_minutes < 0.40

    def test_sessions_mostly_idle(self, dataset):
        result = fig1_session_behaviour(dataset)
        assert result.mostly_idle_fraction > 0.6

    def test_h1_sessions_shorter(self, dataset):
        result = fig1_session_behaviour(dataset)
        assert result.duration_h1.fraction_at_most(60.0) > (
            result.duration_h2.fraction_at_most(60.0)
        )


class TestFig2:
    def test_size_checkpoints(self, dataset):
        result = fig2_transfer_sizes(dataset)
        assert result.sessions_under_10kb > 0.35
        assert 0.0 < result.sessions_over_1mb < 0.15
        assert result.median_response < 6000

    def test_media_responses_larger(self, dataset):
        result = fig2_transfer_sizes(dataset)
        assert result.media_response_bytes.quantile(0.5) > (
            result.response_bytes.quantile(0.5)
        )


class TestFig3:
    def test_transaction_checkpoints(self, dataset):
        result = fig3_transaction_counts(dataset)
        assert result.h1_under_5 == pytest.approx(0.87, abs=0.08)
        assert result.h2_under_5 == pytest.approx(0.75, abs=0.08)
        assert result.h1_under_5 > result.h2_under_5

    def test_heavy_sessions_carry_bulk(self, dataset):
        result = fig3_transaction_counts(dataset)
        assert result.heavy_session_byte_share > 0.35


class TestFig5:
    def test_split_series_present(self, fig5_samples):
        result = fig5_population_mix(fig5_samples)
        assert result.windows
        assert any(v is not None for v in result.all_clients)

    def test_regions_have_distinct_latency(self, fig5_samples):
        # Hawaii clients are ~4000 km from sjc1; California ~0 km.
        primary = [
            s.min_rtt_ms for s in fig5_samples if s.geo_tag == "sanfrancisco"
        ]
        secondary = [
            s.min_rtt_ms for s in fig5_samples if s.geo_tag == "honolulu"
        ]
        assert primary and secondary
        from repro.stats.weighted import percentile

        assert percentile(secondary, 50.0) > percentile(primary, 50.0) + 20.0

    def test_combined_median_moves(self, fig5_samples):
        result = fig5_population_mix(fig5_samples)
        assert result.spread() > 5.0


class TestFig6:
    def test_global_medians(self, dataset):
        result = fig6_global_performance(dataset)
        assert 25.0 < result.median_minrtt < 55.0   # paper: 39 ms
        assert result.p80_minrtt < 110.0            # paper: 78 ms
        assert result.hdratio_positive_fraction > 0.75  # paper: 82%

    def test_continent_ordering(self, dataset):
        result = fig6_global_performance(dataset)
        af = result.continent_median_minrtt("AF")
        eu = result.continent_median_minrtt("EU")
        assert af > eu + 15.0

    def test_zero_hd_concentration(self, dataset):
        result = fig6_global_performance(dataset)
        assert result.continent_zero_hd_fraction("AF") > (
            result.continent_zero_hd_fraction("EU") + 0.1
        )


class TestFig7:
    def test_hdratio_degrades_with_latency(self, dataset):
        result = fig7_rtt_vs_hdratio(dataset)
        low = result.hdratio_by_bucket["0-30"]
        high = result.hdratio_by_bucket["81+"]
        # Low-latency sessions reach HDratio=1 far more often.
        assert (1 - low.fraction_at_most(0.999)) > (1 - high.fraction_at_most(0.999))

    def test_all_buckets_present(self, dataset):
        result = fig7_rtt_vs_hdratio(dataset)
        assert set(result.hdratio_by_bucket) == {"0-30", "31-50", "51-80", "81+"}


class TestAblation:
    def test_naive_underestimates(self, dataset):
        result = ablation_naive_goodput(dataset)
        assert result.naive_median_hdratio <= result.model_median_hdratio
        assert result.sessions > 100

    def test_requires_naive_values(self):
        empty = StudyDataset(study_windows=10)
        with pytest.raises(ValueError):
            ablation_naive_goodput(empty)
