"""Cross-layer property-based invariants.

These tie the layers together: the estimator against the packet simulator,
serialization round-trips, coalescing conservation laws — the invariants a
refactor must not break.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coalesce import coalesce_transactions, eligible_transactions
from repro.core.goodput import estimate_delivery_rate, max_testable_goodput
from repro.core.hdratio import session_goodput
from repro.core.records import TransactionRecord
from repro.netsim.scenarios import run_transfer
from repro.pipeline.io import sample_from_dict, sample_to_dict

MSS = 1500


# --------------------------------------------------------------------- #
# Estimator vs simulator: the §3.2.3 invariant on random configurations
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    bw=st.sampled_from([0.5, 1.0, 2.0, 3.0, 5.0]),
    rtt_ms=st.sampled_from([20.0, 50.0, 90.0, 150.0]),
    icw=st.sampled_from([2, 5, 10, 20, 40]),
    packets=st.sampled_from([5, 20, 60, 150, 400]),
)
def test_estimator_never_overestimates_bottleneck(bw, rtt_ms, icw, packets):
    transfer = run_transfer(
        [packets * MSS],
        bottleneck_mbps=bw,
        rtt_ms=rtt_ms,
        initial_cwnd_packets=icw,
        delayed_ack=False,
        queue_packets=10_000,
    )
    record = transfer.records[0]
    if record.measured_bytes <= MSS:
        return
    rtt = transfer.min_rtt_seconds
    wstart = record.cwnd_bytes_at_first_byte
    testable = max_testable_goodput(record.measured_bytes, wstart, rtt)
    bottleneck = bw * 1e6 / 8
    if testable <= bottleneck:
        return
    estimated = min(
        estimate_delivery_rate(
            record.measured_bytes, record.transfer_time, wstart, rtt
        ),
        testable,
    )
    assert estimated <= bottleneck * (1 + 1e-6)


# --------------------------------------------------------------------- #
# Coalescing conservation laws
# --------------------------------------------------------------------- #
@st.composite
def transaction_sequences(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    records = []
    clock = 0.0
    for _ in range(count):
        gap = draw(st.floats(min_value=0.0, max_value=0.3))
        duration = draw(st.floats(min_value=0.01, max_value=0.5))
        nbytes = draw(st.integers(min_value=1500, max_value=60_000))
        start = clock + gap
        ack = start + duration
        write_frac = draw(st.floats(min_value=0.0, max_value=1.0))
        records.append(
            TransactionRecord(
                first_byte_time=start,
                ack_time=ack,
                response_bytes=nbytes,
                last_packet_bytes=min(1500, nbytes),
                cwnd_bytes_at_first_byte=15_000,
                bytes_in_flight_at_start=draw(
                    st.sampled_from([0, 0, 0, 4000])
                ),
                last_byte_write_time=start + write_frac * duration,
            )
        )
        clock = start
    records.sort(key=lambda r: r.first_byte_time)
    return records


@settings(max_examples=150, deadline=None)
@given(transaction_sequences())
def test_coalescing_conserves_bytes_and_members(records):
    coalesced = coalesce_transactions(records)
    assert sum(c.total_bytes for c in coalesced) == sum(
        r.response_bytes for r in records
    )
    assert sum(c.member_count for c in coalesced) == len(records)
    # Order and containment.
    starts = [c.first_byte_time for c in coalesced]
    assert starts == sorted(starts)
    for c in coalesced:
        assert c.ack_time >= c.first_byte_time
        assert c.last_byte_write_time >= c.first_byte_time


@settings(max_examples=150, deadline=None)
@given(transaction_sequences())
def test_eligible_is_subset_of_coalesced(records):
    coalesced = coalesce_transactions(records)
    eligible = eligible_transactions(records)
    assert len(eligible) <= len(coalesced)
    coalesced_keys = {(c.first_byte_time, c.total_bytes) for c in coalesced}
    for txn in eligible:
        assert (txn.first_byte_time, txn.total_bytes) in coalesced_keys


@settings(max_examples=100, deadline=None)
@given(transaction_sequences(), st.floats(min_value=0.01, max_value=0.3))
def test_session_goodput_counts_are_consistent(records, min_rtt):
    summary = session_goodput(records, min_rtt)
    assert 0 <= summary.achieved <= summary.tested
    assert summary.tested <= summary.eligible <= len(records)
    if summary.hdratio is not None:
        assert 0.0 <= summary.hdratio <= 1.0


# --------------------------------------------------------------------- #
# Serialization round-trip
# --------------------------------------------------------------------- #
@settings(max_examples=100, deadline=None)
@given(
    rtt_ms=st.floats(min_value=0.5, max_value=3000.0),
    nbytes=st.integers(min_value=0, max_value=10**9),
    duration=st.floats(min_value=0.001, max_value=3600.0),
    rank=st.integers(min_value=0, max_value=3),
    hosting=st.booleans(),
)
def test_io_round_trip_preserves_sample(rtt_ms, nbytes, duration, rank, hosting):
    from tests.helpers import make_route, make_sample

    sample = make_sample(
        end_time=duration + 1.0,
        min_rtt_ms=rtt_ms,
        route=make_route(rank=rank),
        bytes_sent=nbytes,
        duration=duration,
    )
    sample.client_ip_is_hosting = hosting
    restored = sample_from_dict(sample_to_dict(sample))
    assert restored.min_rtt_seconds == pytest.approx(sample.min_rtt_seconds)
    assert restored.bytes_sent == sample.bytes_sent
    assert restored.route == sample.route
    assert restored.client_ip_is_hosting == hosting
    assert restored.duration == pytest.approx(sample.duration)


# --------------------------------------------------------------------- #
# Streaming vs exact comparison agreement
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    shift=st.floats(min_value=-20.0, max_value=20.0),
    sigma=st.floats(min_value=0.5, max_value=5.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_streaming_comparison_tracks_exact(shift, sigma, seed):
    from repro.stats.median_ci import compare_medians
    from repro.stats.streaming import streaming_compare
    from repro.stats.tdigest import TDigest

    rng = random.Random(seed)
    a = [rng.gauss(50.0 + shift, sigma) for _ in range(400)]
    b = [rng.gauss(50.0, sigma) for _ in range(400)]
    exact = compare_medians(a, b)
    streamed = streaming_compare(TDigest.of(a), TDigest.of(b))
    assert streamed.difference == pytest.approx(exact.difference, abs=max(sigma, 0.5))
    # Decisions agree away from the decision boundary.
    if abs(shift) > 3 * sigma + 2.0:
        assert streamed.exceeds(2.0) == exact.exceeds(2.0)
