"""Tests for degradation/opportunity comparison (§3.4, §§5–6)."""

import math

import pytest

from repro.core.aggregation import AggregationStore
from repro.core.comparison import (
    compute_baseline,
    degradation_series,
    opportunity_series,
)

from tests.helpers import DEFAULT_GROUP, fill_window


def build_store(window_specs, rank=0, **kwargs):
    """window_specs: list of (rtt_ms, hdratio) tuples, one per window."""
    store = AggregationStore()
    for window, (rtt, hd) in enumerate(window_specs):
        fill_window(store, window=window, rtt_ms=rtt, hdratio=hd, rank=rank, **kwargs)
    return store


class TestBaseline:
    def test_baseline_is_best_sustained_performance(self):
        # Mostly 40 ms with an occasional 60 ms spike: the baseline should
        # sit near the good (low) end for MinRTT and the high end for HD.
        specs = [(40.0, 0.9)] * 9 + [(60.0, 0.5)]
        store = build_store(specs)
        baseline = compute_baseline(store.group_series(DEFAULT_GROUP))
        assert 38.0 < baseline.minrtt_p50_ms < 42.0
        assert 0.85 < baseline.hdratio_p50 <= 0.95

    def test_baseline_skips_thin_windows(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=10.0, hdratio=0.9, count=5)   # thin
        fill_window(store, window=1, rtt_ms=40.0, hdratio=0.9, count=40)
        baseline = compute_baseline(store.group_series(DEFAULT_GROUP))
        assert baseline.minrtt_p50_ms > 30.0

    def test_empty_series(self):
        baseline = compute_baseline([])
        assert baseline.minrtt_p50_ms is None
        assert baseline.hdratio_p50 is None


class TestDegradation:
    def test_stable_group_never_degrades(self):
        store = build_store([(40.0, 0.9)] * 10)
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        assert len(verdicts) == 10
        assert not any(v.event_at(5.0) for v in verdicts)

    def test_rtt_spike_detected(self):
        specs = [(40.0, 0.9)] * 8 + [(60.0, 0.9), (40.0, 0.9)]
        store = build_store(specs)
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        flagged = [v.window for v in verdicts if v.event_at(5.0)]
        assert flagged == [8]

    def test_hdratio_drop_detected(self):
        specs = [(40.0, 0.9)] * 8 + [(40.0, 0.4), (40.0, 0.9)]
        store = build_store(specs)
        verdicts = degradation_series(store, DEFAULT_GROUP, "hdratio")
        flagged = [v.window for v in verdicts if v.event_at(0.05)]
        assert flagged == [8]

    def test_degradation_is_one_sided(self):
        # A window *better* than baseline must not count as degraded.
        specs = [(40.0, 0.9)] * 9 + [(20.0, 0.9)]
        store = build_store(specs)
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        assert not verdicts[-1].event_at(5.0)
        assert verdicts[-1].difference < 0

    def test_thin_windows_are_invalid_not_flagged(self):
        store = AggregationStore()
        for window in range(5):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, count=40)
        fill_window(store, window=5, rtt_ms=90.0, hdratio=0.9, count=10)  # thin spike
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        last = [v for v in verdicts if v.window == 5][0]
        assert not last.valid
        assert not last.event_at(5.0)

    def test_noisy_windows_fail_tight_ci(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, count=40)
        # Huge jitter => wide CI => invalid under the 10 ms rule.
        fill_window(store, window=4, rtt_ms=80.0, hdratio=0.9, count=31, jitter_ms=60.0)
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        spike = [v for v in verdicts if v.window == 4][0]
        assert not spike.valid

    def test_unknown_metric_rejected(self):
        store = build_store([(40.0, 0.9)])
        with pytest.raises(ValueError):
            degradation_series(store, DEFAULT_GROUP, "jitter")

    def test_traffic_bytes_carried_through(self):
        store = build_store([(40.0, 0.9)] * 2, bytes_per_session=1000)
        verdicts = degradation_series(store, DEFAULT_GROUP, "minrtt")
        assert all(v.traffic_bytes == 40 * 1000 for v in verdicts)


class TestOpportunity:
    def test_no_alternate_no_verdicts(self):
        store = build_store([(40.0, 0.9)] * 3)
        assert opportunity_series(store, DEFAULT_GROUP, "minrtt") == []

    def test_better_alternate_detected(self):
        store = AggregationStore()
        for window in range(3):
            fill_window(store, window=window, rtt_ms=50.0, hdratio=0.9, rank=0)
            fill_window(store, window=window, rtt_ms=38.0, hdratio=0.9, rank=1)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert len(verdicts) == 3
        assert all(v.event_at(5.0) for v in verdicts)
        assert all(v.alternate_rank == 1 for v in verdicts)

    def test_equivalent_alternate_not_flagged(self):
        store = AggregationStore()
        for window in range(3):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, rank=0)
            fill_window(store, window=window, rtt_ms=40.5, hdratio=0.9, rank=1)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert not any(v.event_at(5.0) for v in verdicts)

    def test_best_of_multiple_alternates_chosen(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=50.0, hdratio=0.9, rank=0)
        fill_window(store, window=0, rtt_ms=45.0, hdratio=0.9, rank=1)
        fill_window(store, window=0, rtt_ms=38.0, hdratio=0.9, rank=2)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert verdicts[0].alternate_rank == 2
        assert verdicts[0].difference == pytest.approx(12.0, abs=2.0)

    def test_hd_guard_suppresses_minrtt_opportunity(self):
        # Alternate is 12 ms faster but collapses HDratio: the MinRTT
        # opportunity must be suppressed (paper prioritizes HDratio).
        store = AggregationStore()
        for window in range(3):
            fill_window(store, window=window, rtt_ms=50.0, hdratio=0.9, rank=0)
            fill_window(store, window=window, rtt_ms=38.0, hdratio=0.3, rank=1)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert not any(v.event_at(5.0) for v in verdicts)

    def test_hdratio_opportunity(self):
        store = AggregationStore()
        for window in range(3):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.5, rank=0)
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, rank=1)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "hdratio")
        assert all(v.event_at(0.05) for v in verdicts)
        assert verdicts[0].difference == pytest.approx(0.4, abs=0.05)

    def test_worse_alternate_negative_difference(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, rank=0)
        fill_window(store, window=0, rtt_ms=55.0, hdratio=0.9, rank=1)
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert verdicts[0].difference < 0
        assert not verdicts[0].event_at(0.0)
