"""Per-kernel properties: each batch kernel equals its row implementation.

`tests/test_batch_equivalence.py` asserts whole-pipeline equality; these
properties localize a divergence to the kernel that caused it. Every
comparison is exact (`==` on floats): the kernels must perform the same
float operations in the same order as the row functions, so any drift —
a reassociated sum, a different epsilon, a reordered guard — fails here
with the kernel's name in the test id.

Explicit edge cases the generators may under-sample (empty batches,
single-row sessions, all-ineligible sessions) get dedicated tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coalesce import (
    coalesce_transactions,
    filter_eligible,
)
from repro.core.goodput import (
    ideal_round_trips,
    ideal_wstart,
    max_testable_goodput,
    model_transfer_time,
)
from repro.core.hdratio import naive_hdratio, session_goodput
from repro.core.records import TransactionRecord
from repro.kernels import (
    assess_kernel,
    coalesce_kernel,
    eligibility_kernel,
    funnel_single,
    gtestable_kernel,
    hdratio_kernel,
    minrtt_bucket_kernel,
    minrtt_ms_kernel,
    next_wstart_kernel,
    rounds_kernel,
    session_funnel,
    tmodel_kernel,
)
from repro.pipeline.experiments import MINRTT_BUCKETS

pytestmark = pytest.mark.kernels

common = settings(deadline=None, max_examples=150)


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
# Gaps mix "clearly separate" with "overlapping/back-to-back" magnitudes
# so the coalescing branch and the 1e-4 boundary both get exercised.
gaps = st.one_of(
    st.floats(min_value=0.0, max_value=0.3),
    st.floats(min_value=0.0, max_value=5e-5),
    st.just(0.0),
    st.just(1e-4),
)
write_spans = st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.1))
ack_spans = st.floats(min_value=0.0, max_value=0.8)
byte_counts = st.integers(min_value=1, max_value=2_000_000)
cwnds = st.integers(min_value=1, max_value=200_000)
inflights = st.sampled_from((0, 0, 0, 1, 17, 40_000))
rtts = st.floats(min_value=1e-4, max_value=0.5)


@st.composite
def transaction_lists(draw, min_size=0, max_size=10):
    """Ordered TransactionRecord lists spanning coalesce/eligibility space."""
    specs = draw(
        st.lists(
            st.tuples(
                gaps, ack_spans, byte_counts, st.floats(0.0, 1.0),
                cwnds, inflights, write_spans,
            ),
            min_size=min_size,
            max_size=max_size,
        )
    )
    records = []
    clock = 1_000.0
    for gap, ack_span, resp, last_frac, cwnd, inflight, write_span in specs:
        clock += gap
        records.append(
            TransactionRecord(
                first_byte_time=clock,
                ack_time=clock + ack_span,
                response_bytes=resp,
                last_packet_bytes=min(resp, int(resp * last_frac)),
                cwnd_bytes_at_first_byte=cwnd,
                bytes_in_flight_at_start=inflight,
                last_byte_write_time=(
                    None if write_span is None else clock + write_span
                ),
            )
        )
    return records


def columns_of(records):
    """Shred records into the seven per-transaction kernel columns."""
    return (
        [r.first_byte_time for r in records],
        [r.ack_time for r in records],
        [r.response_bytes for r in records],
        [r.last_packet_bytes for r in records],
        [r.cwnd_bytes_at_first_byte for r in records],
        [r.bytes_in_flight_at_start for r in records],
        [
            r.first_byte_time
            if r.last_byte_write_time is None
            else r.last_byte_write_time
            for r in records
        ],
    )


def row_groups(records):
    """The row path's coalesced groups, as the kernel's column tuple."""
    coalesced = coalesce_transactions(records)
    opener_inflight = []
    opener_index = 0
    for txn in coalesced:
        opener_inflight.append(records[opener_index].bytes_in_flight_at_start)
        opener_index += txn.member_count
    return (
        [t.first_byte_time for t in coalesced],
        [t.ack_time for t in coalesced],
        [t.total_bytes for t in coalesced],
        [t.last_packet_bytes for t in coalesced],
        [t.cwnd_bytes_at_first_byte for t in coalesced],
        opener_inflight,
    )


# --------------------------------------------------------------------- #
# Coalescing and eligibility
# --------------------------------------------------------------------- #
class TestCoalesceKernel:
    @common
    @given(transaction_lists())
    def test_matches_row_coalescing(self, records):
        assert coalesce_kernel(*columns_of(records)) == row_groups(records)

    @common
    @given(transaction_lists(min_size=2))
    def test_ordering_violation_raises_like_row(self, records):
        disordered = list(reversed(records))
        if disordered[0].first_byte_time <= disordered[-1].first_byte_time:
            return  # all-equal timestamps: no violation to detect
        with pytest.raises(ValueError, match="ordered by first_byte_time"):
            coalesce_transactions(disordered)
        with pytest.raises(ValueError, match="ordered by first_byte_time"):
            coalesce_kernel(*columns_of(disordered))

    @common
    @given(transaction_lists())
    def test_eligibility_matches_filter_eligible(self, records):
        coalesced = coalesce_transactions(records)
        eligible_row = filter_eligible(records, coalesced)
        groups = coalesce_kernel(*columns_of(records))
        mask = eligibility_kernel(groups[5])
        kept = [
            (groups[0][i], groups[1][i], groups[2][i], groups[3][i], groups[4][i])
            for i, keep in enumerate(mask)
            if keep
        ]
        assert kept == [
            (
                t.first_byte_time,
                t.ack_time,
                t.total_bytes,
                t.last_packet_bytes,
                t.cwnd_bytes_at_first_byte,
            )
            for t in eligible_row
        ]


# --------------------------------------------------------------------- #
# Scalar math kernels
# --------------------------------------------------------------------- #
class TestScalarKernels:
    @common
    @given(
        st.lists(st.tuples(byte_counts, cwnds, rtts), max_size=16),
        st.floats(min_value=1e3, max_value=1e9),
    )
    def test_rounds_wstart_gtestable_tmodel(self, triples, rate):
        total = [t for t, _, _ in triples]
        wstart = [w for _, w, _ in triples]
        rtt = [r for _, _, r in triples]
        assert rounds_kernel(total, wstart) == [
            ideal_round_trips(t, w) for t, w in zip(total, wstart)
        ]
        assert next_wstart_kernel(total, wstart) == [
            ideal_wstart(t, w) for t, w in zip(total, wstart)
        ]
        assert gtestable_kernel(total, wstart, rtt) == [
            max_testable_goodput(t, w, r) for t, w, r in zip(total, wstart, rtt)
        ]
        assert tmodel_kernel(rate, total, wstart, rtt) == [
            model_transfer_time(rate, t, w, r)
            for t, w, r in zip(total, wstart, rtt)
        ]

    @common
    @given(st.lists(rtts, max_size=16))
    def test_minrtt_ms(self, seconds):
        assert minrtt_ms_kernel(seconds) == [s * 1000.0 for s in seconds]

    @common
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=16))
    def test_hdratio(self, pairs):
        tested = [max(t, a) for t, a in pairs]
        achieved = [min(t, a) for t, a in pairs]
        expected = [
            (a / t) if t else None for t, a in zip(tested, achieved)
        ]
        assert hdratio_kernel(tested, achieved) == expected

    @common
    @given(st.lists(st.floats(min_value=0.0, max_value=200.0), max_size=16))
    def test_minrtt_buckets_match_fig7_loop(self, values):
        def fig7_bucket(value):
            for position, bounds in enumerate(MINRTT_BUCKETS):
                if value <= bounds[1]:
                    return position
            return -1

        assert minrtt_bucket_kernel(values, MINRTT_BUCKETS) == [
            fig7_bucket(v) for v in values
        ]

    def test_rounds_overflow_raises_like_row(self):
        huge = [1 << 64]
        with pytest.raises(ValueError, match="round_index implausibly large"):
            ideal_wstart(huge[0], 1)
        with pytest.raises(ValueError, match="round_index implausibly large"):
            next_wstart_kernel(huge, [1])
        with pytest.raises(ValueError, match="round_index implausibly large"):
            max_testable_goodput(1 << 65, 1, 0.05)
        with pytest.raises(ValueError, match="round_index implausibly large"):
            gtestable_kernel([1 << 65], [1], [0.05])

    def test_nonpositive_inputs_raise_like_row(self):
        with pytest.raises(ValueError, match="total_bytes must be positive"):
            rounds_kernel([0], [1])
        with pytest.raises(ValueError, match="wstart_bytes must be positive"):
            rounds_kernel([5], [0])
        with pytest.raises(ValueError, match="min_rtt_seconds must be positive"):
            gtestable_kernel([5], [1], [0.0])
        with pytest.raises(ValueError, match="rate must be positive"):
            tmodel_kernel(0.0, [5], [1], [0.05])


# --------------------------------------------------------------------- #
# Fused session funnel
# --------------------------------------------------------------------- #
class TestSessionFunnel:
    @common
    @given(transaction_lists(), rtts)
    def test_matches_session_goodput(self, records, min_rtt):
        row = session_goodput(records, min_rtt)
        funnel = session_funnel(
            *columns_of(records), 0, len(records), min_rtt
        )
        assert funnel.tested == row.tested
        assert funnel.achieved == row.achieved
        assert funnel.eligible == row.eligible
        assert funnel.coalesced == row.coalesced_count
        assert funnel.hdratio == row.hdratio

    @common
    @given(transaction_lists(), rtts)
    def test_naive_matches_naive_hdratio(self, records, min_rtt):
        funnel = session_funnel(
            *columns_of(records), 0, len(records), min_rtt, compute_naive=True
        )
        assert funnel.naive_hdratio == naive_hdratio(records, min_rtt)

    @common
    @given(transaction_lists(), rtts, st.floats(min_value=1e3, max_value=1e8))
    def test_matches_under_varied_target_rate(self, records, min_rtt, rate):
        row = session_goodput(records, min_rtt, rate)
        funnel = session_funnel(
            *columns_of(records), 0, len(records), min_rtt, target_rate=rate
        )
        assert (funnel.tested, funnel.achieved) == (row.tested, row.achieved)

    @common
    @given(
        transaction_lists(min_size=2, max_size=6),
        transaction_lists(min_size=1, max_size=4),
        rtts,
    )
    def test_slices_are_independent(self, first, second, min_rtt):
        """A session's slice of a shared column must assess exactly like
        the same records in isolation (no state leaks across sessions)."""
        columns = [a + b for a, b in zip(columns_of(first), columns_of(second))]
        split = len(first)
        assert session_funnel(
            *columns, 0, split, min_rtt
        ) == session_funnel(*columns_of(first), 0, len(first), min_rtt)
        assert session_funnel(
            *columns, split, split + len(second), min_rtt
        ) == session_funnel(*columns_of(second), 0, len(second), min_rtt)

    @common
    @given(transaction_lists(min_size=1, max_size=1), rtts)
    def test_funnel_single_matches_row_and_general_funnel(
        self, records, min_rtt
    ):
        """The scalar single-transaction fast path must agree with both
        the row path and the general kernel funnel on one-record slices."""
        record = records[0]
        row = session_goodput(records, min_rtt)
        general = session_funnel(
            *columns_of(records), 0, 1, min_rtt, compute_naive=True
        )
        tested, achieved, naive_achieved = funnel_single(
            record.first_byte_time,
            record.ack_time,
            record.response_bytes,
            record.last_packet_bytes,
            record.cwnd_bytes_at_first_byte,
            min_rtt,
            compute_naive=True,
        )
        assert (tested, achieved) == (row.tested, row.achieved)
        assert (tested, achieved, naive_achieved) == (
            general.tested,
            general.achieved,
            general.naive_achieved,
        )

    def test_funnel_single_nonpositive_min_rtt_raises_like_row(self):
        with pytest.raises(ValueError, match="min_rtt_seconds must be positive"):
            funnel_single(0.0, 0.1, 5_000, 100, 10_000, 0.0)

    def test_nonpositive_min_rtt_raises_like_row(self):
        records = [
            TransactionRecord(
                first_byte_time=0.0,
                ack_time=0.1,
                response_bytes=5_000,
                last_packet_bytes=100,
                cwnd_bytes_at_first_byte=10_000,
            )
        ]
        with pytest.raises(ValueError, match="min_rtt_seconds must be positive"):
            session_goodput(records, 0.0)
        with pytest.raises(ValueError, match="min_rtt_seconds must be positive"):
            session_funnel(*columns_of(records), 0, 1, 0.0)


# --------------------------------------------------------------------- #
# Explicit edge cases
# --------------------------------------------------------------------- #
class TestEdgeCases:
    def test_empty_batch(self):
        funnel = session_funnel([], [], [], [], [], [], [], 0, 0, 0.05)
        assert funnel == (0, 0, 0, 0, 0)
        assert funnel.hdratio is None
        assert funnel.naive_hdratio is None
        assert coalesce_kernel([], [], [], [], [], [], []) == (
            [], [], [], [], [], []
        )
        assert eligibility_kernel([]) == []
        assert rounds_kernel([], []) == []
        assert assess_kernel([], [], [], [], [], [], 0.05) == (0, 0, 0)

    def test_single_row_batch(self):
        record = TransactionRecord(
            first_byte_time=10.0,
            ack_time=10.4,
            response_bytes=900_000,
            last_packet_bytes=1_200,
            cwnd_bytes_at_first_byte=30_000,
        )
        row = session_goodput([record], 0.04)
        funnel = session_funnel(*columns_of([record]), 0, 1, 0.04)
        assert (funnel.tested, funnel.achieved) == (row.tested, row.achieved)
        assert funnel.coalesced == 1
        assert funnel.eligible == 1

    def test_all_ineligible_batch(self):
        """Every group refused by the mask: funnel counts must all be
        zero even though the columns carry testable transfers."""
        groups = (
            [0.0, 5.0],
            [0.3, 5.3],
            [500_000, 600_000],
            [1_000, 1_000],
            [20_000, 20_000],
        )
        mask = [False, False]
        assert assess_kernel(*groups, mask, 0.05) == (0, 0, 0)

    def test_ineligible_after_first(self):
        """Openers with bytes in flight: only the first group survives —
        and the row path agrees."""
        records = [
            TransactionRecord(
                first_byte_time=float(i),
                ack_time=float(i) + 0.2,
                response_bytes=400_000,
                last_packet_bytes=1_000,
                cwnd_bytes_at_first_byte=25_000,
                bytes_in_flight_at_start=0 if i == 0 else 9_000,
            )
            for i in range(4)
        ]
        row = session_goodput(records, 0.05)
        funnel = session_funnel(*columns_of(records), 0, 4, 0.05)
        assert funnel.eligible == row.eligible == 1
        assert (funnel.tested, funnel.achieved) == (row.tested, row.achieved)

    def test_back_to_back_boundary_merges_like_row(self):
        """A follow-up exactly at the 1e-4 gap merges; just beyond stays."""
        for gap, expected_groups in ((1e-4, 1), (2.1e-4, 2)):
            records = [
                TransactionRecord(
                    first_byte_time=0.0,
                    ack_time=0.2,
                    response_bytes=10_000,
                    last_packet_bytes=500,
                    cwnd_bytes_at_first_byte=15_000,
                    last_byte_write_time=0.1,
                ),
                TransactionRecord(
                    first_byte_time=0.1 + gap,
                    ack_time=0.4,
                    response_bytes=20_000,
                    last_packet_bytes=700,
                    cwnd_bytes_at_first_byte=15_000,
                ),
            ]
            assert len(coalesce_transactions(records)) == expected_groups
            groups = coalesce_kernel(*columns_of(records))
            assert len(groups[0]) == expected_groups
            assert groups == row_groups(records)
