"""LRU cache semantics, pinned by a Hypothesis model + invalidation tests.

The hot-aggregation cache's accounting is load-bearing: the serving
benchmark's hit-rate floor and the concurrency suite's counter-exactness
assertions are computed from ``hits``/``misses``/``evictions``, so this
file holds a stateful model against arbitrary operation sequences —
a plain dict-plus-recency-list executes every sequence alongside the real
cache and the two must agree on contents, order, accounting, and evicted
pairs at every step.

The second half pins the generation-invalidation contract end to end:
after ``append_to_store`` lands new windows in a served store, the next
query must rebuild from the appended store (never serve the pre-append
aggregate) and the flush must be visible in the invalidation counters.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry
from repro.serve import LruCache, QueryEngine
from repro.store import write_store
from repro.store.writer import append_to_store

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.serve


class ModelLru:
    """Reference LRU: dict + explicit recency list, no cleverness."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = {}
        self.order = []  # least- to most-recently used
        self.hits = self.misses = self.evictions = self.invalidations = 0

    def get(self, key):
        if key in self.data:
            self.hits += 1
            self.order.remove(key)
            self.order.append(key)
            return self.data[key]
        self.misses += 1
        return None

    def put(self, key, value):
        evicted = []
        if key in self.data:
            self.data[key] = value
            self.order.remove(key)
            self.order.append(key)
            return evicted
        self.data[key] = value
        self.order.append(key)
        while len(self.data) > self.capacity:
            victim = self.order.pop(0)
            evicted.append((victim, self.data.pop(victim)))
            self.evictions += 1
        return evicted

    def invalidate_all(self):
        dropped = len(self.data)
        self.data.clear()
        self.order.clear()
        if dropped:
            self.invalidations += dropped
        return dropped


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.integers(0, 9)),
        st.tuples(st.just("put"), st.integers(0, 9)),
        st.tuples(st.just("invalidate"), st.just(0)),
    ),
    max_size=60,
)


class TestLruModel:
    @settings(max_examples=200, deadline=None)
    @given(capacity=st.integers(1, 6), ops=OPS)
    def test_matches_reference_model(self, capacity, ops):
        cache = LruCache(capacity)
        model = ModelLru(capacity)
        for step, (op, key) in enumerate(ops):
            if op == "get":
                assert cache.get(key) == model.get(key)
            elif op == "put":
                assert cache.put(key, step) == model.put(key, step)
            else:
                assert cache.invalidate_all() == model.invalidate_all()
            # Invariants after *every* step, not just at the end.
            assert len(cache) <= capacity
            assert len(cache) == len(model.data)
            assert cache.keys() == model.order
            assert (cache.hits, cache.misses) == (model.hits, model.misses)
            assert cache.evictions == model.evictions
            assert cache.invalidations == model.invalidations
        assert cache.hits + cache.misses == sum(
            1 for op, _ in ops if op == "get"
        )

    @settings(max_examples=100, deadline=None)
    @given(capacity=st.integers(1, 6), ops=OPS)
    def test_metrics_mirror_counters_exactly(self, capacity, ops):
        registry = MetricsRegistry()
        cache = LruCache(capacity, metrics=registry)
        for step, (op, key) in enumerate(ops):
            if op == "get":
                cache.get(key)
            elif op == "put":
                cache.put(key, step)
            else:
                cache.invalidate_all()
        assert registry.counter("serve.cache.hits") == cache.hits
        assert registry.counter("serve.cache.misses") == cache.misses
        assert registry.counter("serve.cache.evictions") == cache.evictions
        assert (
            registry.counter("serve.cache.invalidations")
            == cache.invalidations
        )


class TestLruEdges:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_update_refreshes_recency_without_eviction(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)  # update: "b" is now LRU
        assert cache.put("c", 4) == [("b", 2)]
        assert cache.get("a") == 3
        assert cache.evictions == 1

    def test_contains_does_not_touch_accounting(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert (cache.hits, cache.misses) == (0, 0)
        cache.put("b", 2)
        # Membership tests must not have refreshed "a"'s recency either.
        assert cache.put("c", 3) == [("a", 1)]


class TestAppendInvalidation:
    """An append_to_store generation change must flush served aggregates."""

    @pytest.fixture()
    def store(self, tmp_path):
        path = tmp_path / "live.store"
        samples = make_trace_samples(400, seed=3, windows=8)
        write_store(path, samples)
        return path

    def test_append_never_serves_pre_append_aggregate(self, store):
        engine = QueryEngine(store)
        _, before = engine.handle("/v1/quantiles", {})
        _, warm = engine.handle("/v1/quantiles", {})
        assert warm == before
        assert engine.cache.hits == 1

        extra = make_trace_samples(300, seed=17, windows=8)
        append_to_store(store, extra)

        _, after = engine.handle("/v1/quantiles", {})
        assert engine.cache.invalidations >= 1
        assert after["generation"] != before["generation"]
        assert after["sessions"] > before["sessions"]
        # The rebuilt aggregate equals a cold engine over the appended
        # store — i.e. the served numbers really are post-append numbers.
        _, cold = QueryEngine(store).handle("/v1/quantiles", {})
        assert after == cold

    def test_append_invalidates_every_profile(self, store):
        engine = QueryEngine(store)
        engine.handle("/v1/quantiles", {})
        engine.handle("/v1/routing", {})
        assert len(engine.cache) == 2
        append_to_store(store, make_trace_samples(50, seed=23, windows=8))
        engine.handle("/v1/quantiles", {})
        # The flush dropped both cached aggregations, not just the one
        # whose key was re-requested.
        assert engine.cache.invalidations == 2
        assert len(engine.cache) == 1

    def test_generation_stable_without_append(self, store):
        engine = QueryEngine(store)
        _, first = engine.handle("/v1/health", {})
        for _ in range(3):
            engine.handle("/v1/quantiles", {})
        _, again = engine.handle("/v1/health", {})
        assert first["generation"] == again["generation"]
        assert engine.cache.invalidations == 0
