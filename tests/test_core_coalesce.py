"""Tests for §3.2.5 coalescing and eligibility rules."""

import pytest

from repro.core.coalesce import (
    BACK_TO_BACK_GAP_SECONDS,
    coalesce_transactions,
    eligible_transactions,
)
from repro.core.records import TransactionRecord


def txn(start, ack, nbytes, last=1500, cwnd=15000, in_flight=0, last_write=None):
    """Build a record; by default the writes span the first half of the
    transfer window (NIC writes finish well before the final ACK returns)."""
    if last_write is None:
        last_write = start + 0.5 * (ack - start)
    return TransactionRecord(
        first_byte_time=start,
        ack_time=ack,
        response_bytes=nbytes,
        last_packet_bytes=last,
        cwnd_bytes_at_first_byte=cwnd,
        bytes_in_flight_at_start=in_flight,
        last_byte_write_time=last_write,
    )


class TestCoalesce:
    def test_disjoint_transactions_stay_separate(self):
        records = [txn(0.0, 0.1, 6000), txn(1.0, 1.1, 6000)]
        out = coalesce_transactions(records)
        assert len(out) == 2
        assert out[0].member_count == 1

    def test_overlapping_transactions_merge(self):
        # Second response starts while the first is still unacknowledged
        # (HTTP/2 multiplexing).
        records = [txn(0.0, 0.2, 6000), txn(0.1, 0.3, 9000)]
        out = coalesce_transactions(records)
        assert len(out) == 1
        merged = out[0]
        assert merged.total_bytes == 15000
        assert merged.first_byte_time == 0.0
        assert merged.ack_time == 0.3
        assert merged.member_count == 2

    def test_back_to_back_writes_merge(self):
        gap = BACK_TO_BACK_GAP_SECONDS / 2
        # Second response's first byte written immediately after the first
        # response's last byte hit the NIC (write gap ~0 at the transport).
        records = [
            txn(0.0, 0.1, 3000, last_write=0.02),
            txn(0.02 + gap, 0.12, 3000),
        ]
        out = coalesce_transactions(records)
        assert len(out) == 1
        assert out[0].total_bytes == 6000

    def test_request_response_alternation_stays_separate(self):
        # Next response written only when the previous final ACK returned
        # (the Figure-4 pattern): never coalesced.
        records = [txn(0.0, 0.06, 3000, last_write=0.0), txn(0.06, 0.18, 36000)]
        out = coalesce_transactions(records)
        assert len(out) == 2

    def test_merge_keeps_first_members_cwnd(self):
        records = [txn(0.0, 0.2, 6000, cwnd=15000), txn(0.1, 0.3, 9000, cwnd=60000)]
        out = coalesce_transactions(records)
        assert out[0].cwnd_bytes_at_first_byte == 15000

    def test_merge_takes_last_members_final_packet(self):
        records = [txn(0.0, 0.2, 6000, last=1500), txn(0.1, 0.3, 9000, last=700)]
        out = coalesce_transactions(records)
        assert out[0].last_packet_bytes == 700
        assert out[0].measured_bytes == 15000 - 700

    def test_chain_of_three_merges_into_one(self):
        records = [
            txn(0.0, 0.2, 3000, last_write=0.15),
            txn(0.1, 0.4, 3000, last_write=0.35),
            txn(0.3, 0.6, 3000),
        ]
        out = coalesce_transactions(records)
        assert len(out) == 1
        assert out[0].member_count == 3
        assert out[0].ack_time == 0.6

    def test_ack_time_never_regresses(self):
        # A fully nested response (acked before the first one) must not
        # shrink the merged span.
        records = [txn(0.0, 0.5, 9000), txn(0.1, 0.2, 1500)]
        out = coalesce_transactions(records)
        assert out[0].ack_time == 0.5

    def test_unordered_input_rejected(self):
        records = [txn(1.0, 1.1, 3000), txn(0.0, 0.1, 3000)]
        with pytest.raises(ValueError):
            coalesce_transactions(records)

    def test_empty_input(self):
        assert coalesce_transactions([]) == []


class TestEligibility:
    def test_clean_sequence_all_eligible(self):
        records = [txn(0.0, 0.1, 6000), txn(1.0, 1.1, 6000, in_flight=0)]
        out = eligible_transactions(records)
        assert len(out) == 2

    def test_bytes_in_flight_excludes_transaction(self):
        # The second response started with the first's bytes unacked but a
        # gap too large to coalesce (e.g. the app paused): exclude it.
        records = [txn(0.0, 0.1, 6000), txn(1.0, 1.1, 6000, in_flight=4000)]
        out = eligible_transactions(records)
        assert len(out) == 1
        assert out[0].first_byte_time == 0.0

    def test_first_transaction_always_eligible(self):
        # Handshake bytes in flight do not disqualify the first response.
        records = [txn(0.0, 0.1, 6000, in_flight=500)]
        out = eligible_transactions(records)
        assert len(out) == 1

    def test_coalesced_group_judged_by_its_opener(self):
        # Opener is clean; a merged member reporting in-flight bytes is
        # irrelevant because those bytes belong to the same logical burst.
        records = [
            txn(0.0, 0.1, 6000),
            txn(2.0, 2.3, 6000, in_flight=0),
            txn(2.1, 2.4, 6000, in_flight=6000),  # multiplexed with previous
        ]
        out = eligible_transactions(records)
        assert len(out) == 2
        assert out[1].member_count == 2

    def test_contaminated_opener_drops_whole_group(self):
        records = [
            txn(0.0, 0.1, 6000),
            txn(2.0, 2.3, 6000, in_flight=3000),  # contaminated opener
            txn(2.1, 2.4, 6000),                  # multiplexed with it
        ]
        out = eligible_transactions(records)
        assert len(out) == 1
        assert out[0].first_byte_time == 0.0


class TestRecordValidation:
    def test_ack_before_first_byte_rejected(self):
        with pytest.raises(ValueError):
            txn(1.0, 0.5, 6000)

    def test_nonpositive_bytes_rejected(self):
        with pytest.raises(ValueError):
            txn(0.0, 0.1, 0)

    def test_last_packet_larger_than_response_rejected(self):
        with pytest.raises(ValueError):
            txn(0.0, 0.1, 1000, last=2000)
