"""Tests for the bottleneck link model."""

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link, Packet

pytestmark = pytest.mark.netsim


def collect(link):
    received = []
    link.connect(lambda p: received.append((link.sim.now, p)))
    return received


class TestDelays:
    def test_propagation_only(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, propagation_delay=0.030)
        received = collect(link)
        link.send(Packet(seq=0, payload_bytes=1500))
        sim.run_until_idle()
        assert received[0][0] == pytest.approx(0.030)

    def test_serialization_delay(self):
        sim = Simulator()
        # 1 Mbps: a 1500+40 byte packet serializes in 12.32 ms.
        link = Link(sim, rate_bps=1e6, propagation_delay=0.0)
        received = collect(link)
        link.send(Packet(seq=0, payload_bytes=1500))
        sim.run_until_idle()
        assert received[0][0] == pytest.approx(1540 * 8 / 1e6)

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, propagation_delay=0.0)
        received = collect(link)
        ser = 1540 * 8 / 1e6
        link.send(Packet(seq=0, payload_bytes=1500))
        link.send(Packet(seq=1500, payload_bytes=1500))
        sim.run_until_idle()
        assert received[0][0] == pytest.approx(ser)
        assert received[1][0] == pytest.approx(2 * ser)

    def test_acks_have_header_serialization_only(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, propagation_delay=0.0)
        received = collect(link)
        link.send(Packet(seq=0, payload_bytes=0, ack_seq=100))
        sim.run_until_idle()
        assert received[0][0] == pytest.approx(40 * 8 / 1e6)


class TestDrops:
    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, propagation_delay=0.0, queue_packets=2)
        received = collect(link)
        for i in range(10):
            link.send(Packet(seq=i * 1500, payload_bytes=1500))
        sim.run_until_idle()
        # One in service + two queued survive the burst.
        assert link.stats.dropped_queue == 7
        assert len(received) == 3

    def test_random_loss_rate(self):
        sim = Simulator()
        link = Link(
            sim,
            rate_bps=None,
            propagation_delay=0.0,
            loss_probability=0.3,
            rng=random.Random(7),
        )
        received = collect(link)
        for i in range(2000):
            link.send(Packet(seq=i, payload_bytes=100))
        sim.run_until_idle()
        loss_rate = link.stats.dropped_random / 2000
        assert 0.25 < loss_rate < 0.35
        assert len(received) == 2000 - link.stats.dropped_random

    def test_invalid_loss_probability(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, loss_probability=1.0)


class TestJitter:
    def test_jitter_bounded(self):
        sim = Simulator()
        link = Link(
            sim,
            rate_bps=None,
            propagation_delay=0.010,
            jitter_seconds=0.005,
            rng=random.Random(3),
        )
        received = collect(link)
        for i in range(200):
            link.send(Packet(seq=i, payload_bytes=100))
        sim.run_until_idle()
        delays = [t for t, _ in received]
        assert min(delays) >= 0.010
        assert max(delays) <= 0.015 + 1e-12
        assert max(delays) > 0.011  # jitter actually applied


class TestStats:
    def test_counters(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, propagation_delay=0.0)
        collect(link)
        link.send(Packet(seq=0, payload_bytes=500))
        sim.run_until_idle()
        assert link.stats.sent == 1
        assert link.stats.delivered == 1
        assert link.stats.bytes_delivered == 500

    def test_unconnected_link_raises(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(RuntimeError):
            link.send(Packet(seq=0, payload_bytes=100))
