"""Streaming ingest must replay byte-identical to the batch engine.

The standing invariant (DESIGN.md §11): a live stream pushed through
:class:`StreamingIngestor` — in order or shuffled within the lateness
bound — produces the same dataset, the same data-fact counters, and the
same figures as a batch re-scan of the sealed output store; the store
itself is byte-identical across admissible arrival orders. Plus the
watermark mechanics: gapless monotone sealing, late samples ledgered and
never aggregated, idempotent finish.
"""

import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import window_index
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.obs import MetricsRegistry
from repro.pipeline import (
    StreamingIngestor,
    StudyDataset,
    build_dataset,
    fig6_global_performance,
)
from repro.pipeline.ingest import (
    DEFAULT_ALLOWED_LATENESS_SECONDS,
    LateSampleLedger,
    OnlineTemporalAnalyzer,
)
from tests.helpers import DEFAULT_GROUP, make_route, make_sample, make_trace_samples
from tests.test_store_pipeline import assert_same_analysis_state

pytestmark = pytest.mark.streaming

WINDOW = AGGREGATION_WINDOW_SECONDS

#: Counters describing the storage/transport, not the data: a live stream
#: reads no trace and a batch re-scan reads no stream, so these legitimately
#: differ between the two while everything else must be byte-identical.
EXECUTION_PREFIXES = ("io.", "store.")


def data_counters(dataset: StudyDataset) -> dict:
    return {
        name: value
        for name, value in dataset.metrics.counters.items()
        if not name.startswith(EXECUTION_PREFIXES)
    }


def in_window(window: int, offset: float, rtt_ms: float = 40.0, rank: int = 0):
    return make_sample(
        end_time=window * WINDOW + offset,
        min_rtt_ms=rtt_ms,
        route=make_route(rank=rank),
    )


def jittered_order(samples, lateness: float, seed: int):
    """An arrival order guaranteed to respect the lateness bound.

    Sorting by ``end_time + jitter`` with ``jitter ∈ [0, lateness)`` keeps
    every earlier-keyed sample's end_time within ``lateness`` of any later
    one, so no admitted sample can find its window already sealed.
    """
    rng = random.Random(seed)
    return sorted(
        samples, key=lambda s: s.end_time + rng.uniform(0.0, lateness * 0.99)
    )


# --------------------------------------------------------------------- #
class TestWatermarkSealing:
    def test_watermark_tracks_max_end_time(self):
        ingestor = StreamingIngestor(study_windows=8)
        ingestor.offer(in_window(0, 100.0))
        assert ingestor.watermark == 100.0 - DEFAULT_ALLOWED_LATENESS_SECONDS
        ingestor.offer(in_window(3, 10.0))
        assert (
            ingestor.watermark
            == 3 * WINDOW + 10.0 - DEFAULT_ALLOWED_LATENESS_SECONDS
        )

    def test_windows_seal_in_order_and_gapless(self):
        ingestor = StreamingIngestor(
            study_windows=16, allowed_lateness_seconds=0.0
        )
        ingestor.offer(in_window(0, 100.0))
        assert ingestor.windows_sealed == 0
        # A jump to window 5 seals 0 and the empty 1–4 behind the watermark.
        ingestor.offer(in_window(5, 100.0))
        assert ingestor.windows_sealed == 5
        result = ingestor.finish()
        assert result.windows_sealed == 6
        assert result.windows_empty == 4

    def test_empty_window_counters(self):
        metrics = MetricsRegistry()
        ingestor = StreamingIngestor(
            study_windows=8, allowed_lateness_seconds=0.0, metrics=metrics
        )
        ingestor.offer(in_window(0, 10.0))
        ingestor.offer(in_window(3, 10.0))
        ingestor.finish()
        assert metrics.counter("stream.windows.sealed") == 4
        assert metrics.counter("stream.windows.empty") == 2
        assert metrics.counter("stream.samples.sealed") == 2

    def test_late_sample_is_ledgered_not_aggregated(self):
        metrics = MetricsRegistry()
        ingestor = StreamingIngestor(
            study_windows=8, allowed_lateness_seconds=0.0, metrics=metrics
        )
        ingestor.offer(in_window(0, 100.0))
        ingestor.offer(in_window(2, 100.0))  # seals windows 0 and 1
        rows_before = len(ingestor.dataset.rows)
        late = in_window(0, 200.0, rtt_ms=999.0)
        assert ingestor.offer(late) is False
        assert len(ingestor.dataset.rows) == rows_before
        assert metrics.counter("stream.late_samples") == 1
        result = ingestor.finish()
        assert result.late.count == 1
        assert result.late.per_window == {0: 1}
        assert result.late.retained == [late]
        # The polluted-window regression: the late 999ms RTT must appear in
        # no aggregation of any window.
        for _, aggregation in result.dataset.store.items():
            assert 999.0 not in aggregation.min_rtts_ms

    def test_sample_within_lateness_bound_is_accepted(self):
        ingestor = StreamingIngestor(
            study_windows=8,
            allowed_lateness_seconds=2 * WINDOW,
        )
        ingestor.offer(in_window(2, 100.0))
        # Window 1 is out of order but within two windows of lateness.
        assert ingestor.offer(in_window(1, 50.0)) is True
        result = ingestor.finish()
        assert result.late.count == 0
        assert result.samples_sealed == 2

    def test_late_ledger_bounds_retention(self):
        ledger = LateSampleLedger(max_retained=2)
        for i in range(5):
            ledger.record(in_window(0, float(i)), 0)
        assert ledger.count == 5
        assert len(ledger.retained) == 2
        assert ledger.to_dict() == {
            "count": 5,
            "retained": 2,
            "per_window": {"0": 5},
        }

    def test_finish_is_idempotent(self):
        ingestor = StreamingIngestor(study_windows=8)
        ingestor.offer_all(in_window(w, 100.0) for w in range(3))
        first = ingestor.finish()
        second = ingestor.finish()
        assert second.windows_sealed == first.windows_sealed == 3
        assert second.dataset is first.dataset
        assert second.samples_sealed == first.samples_sealed
        with pytest.raises(ValueError, match="finished"):
            ingestor.offer(in_window(9, 1.0))

    def test_finish_on_empty_stream(self):
        result = StreamingIngestor(study_windows=4).finish()
        assert result.windows_sealed == 0
        assert result.samples_offered == 0
        assert result.dataset.session_count == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamingIngestor(study_windows=4, window_seconds=0.0)
        with pytest.raises(ValueError):
            StreamingIngestor(study_windows=4, allowed_lateness_seconds=-1.0)

    def test_gauges_match_batch_convention(self):
        samples = make_trace_samples(120, seed=21, windows=4)
        ingestor = StreamingIngestor(study_windows=4)
        ingestor.offer_all(sorted(samples, key=lambda s: s.end_time))
        result = ingestor.finish()
        gauges = result.dataset.metrics.gauges
        assert gauges["pipeline.rows"] == len(result.dataset.rows)
        assert gauges["pipeline.aggregations"] == len(result.dataset.store)
        assert gauges["pipeline.groups"] == len(result.dataset.store.groups())


# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def trace_samples():
    return make_trace_samples(600, seed=23, windows=8)


@pytest.fixture(scope="module")
def streamed(tmp_path_factory, trace_samples):
    """One in-order streaming run with a sealed output store."""
    store = tmp_path_factory.mktemp("ingest") / "sealed.store"
    ingestor = StreamingIngestor(study_windows=8, out_store=store)
    ingestor.offer_all(sorted(trace_samples, key=lambda s: s.end_time))
    return ingestor.finish(), store


class TestReplayEquivalence:
    def test_streamed_equals_batch_over_sealed_store(self, streamed):
        result, store = streamed
        batch = build_dataset(store, study_windows=8)
        assert_same_analysis_state(result.dataset, batch)
        assert data_counters(result.dataset) == data_counters(batch)
        assert result.dataset.metrics.gauges == batch.metrics.gauges

    def test_sealed_store_contains_unfiltered_stream(
        self, streamed, trace_samples
    ):
        # Hosting-filtered samples must reach the store too: the batch
        # replay re-decides filtering itself, so dropping them before the
        # store would silently change its counters.
        result, store = streamed
        from repro.store import TraceStoreReader

        sealed = list(TraceStoreReader(store).scan())
        assert len(sealed) == len(trace_samples)
        assert sealed == sorted(
            trace_samples, key=lambda s: (s.end_time, s.session_id)
        )

    def test_figures_identical_to_batch(self, streamed):
        result, store = streamed
        batch = build_dataset(store, study_windows=8)
        ours = fig6_global_performance(result.dataset)
        theirs = fig6_global_performance(batch)
        assert ours.median_minrtt == theirs.median_minrtt
        assert ours.hdratio_positive_fraction == theirs.hdratio_positive_fraction
        assert set(ours.minrtt_by_continent) == set(theirs.minrtt_by_continent)
        for code in ours.minrtt_by_continent:
            assert ours.continent_median_minrtt(
                code
            ) == theirs.continent_median_minrtt(code)

    def test_shuffled_arrival_is_byte_identical(
        self, streamed, trace_samples, tmp_path
    ):
        result, store = streamed
        lateness = DEFAULT_ALLOWED_LATENESS_SECONDS
        shuffled_store = tmp_path / "shuffled.store"
        ingestor = StreamingIngestor(
            study_windows=8,
            out_store=shuffled_store,
            allowed_lateness_seconds=lateness,
        )
        ingestor.offer_all(jittered_order(trace_samples, lateness, seed=5))
        shuffled = ingestor.finish()
        assert shuffled.late.count == 0
        assert_same_analysis_state(shuffled.dataset, result.dataset)
        assert data_counters(shuffled.dataset) == data_counters(result.dataset)
        assert (shuffled_store / "data.bin").read_bytes() == (
            store / "data.bin"
        ).read_bytes()
        assert (shuffled_store / "manifest.json").read_bytes() == (
            store / "manifest.json"
        ).read_bytes()

    def test_golden_trace_streams_identical_to_batch(self, tmp_path):
        golden = pathlib.Path(__file__).parent / "data" / "golden_trace.jsonl.gz"
        from repro.pipeline import read_samples

        samples = list(read_samples(golden))
        span = max(s.end_time for s in samples) + WINDOW
        store = tmp_path / "golden_sealed.store"
        ingestor = StreamingIngestor(
            study_windows=8, out_store=store, allowed_lateness_seconds=span
        )
        # Arrival in file order: with lateness covering the whole span,
        # nothing is late and nothing seals before finish.
        ingestor.offer_all(samples)
        result = ingestor.finish()
        assert result.late.count == 0
        batch = build_dataset(store, study_windows=8)
        assert_same_analysis_state(result.dataset, batch)
        assert data_counters(result.dataset) == data_counters(batch)


# --------------------------------------------------------------------- #
class TestShuffleProperty:
    """Hypothesis: ANY admissible arrival order replays byte-identically."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_order_within_lateness_bound_is_identical(self, seed):
        samples = make_trace_samples(150, seed=29, windows=4)
        lateness = 2 * WINDOW

        baseline = StreamingIngestor(
            study_windows=4, allowed_lateness_seconds=lateness
        )
        baseline.offer_all(sorted(samples, key=lambda s: s.end_time))
        expected = baseline.finish()

        ingestor = StreamingIngestor(
            study_windows=4, allowed_lateness_seconds=lateness
        )
        ingestor.offer_all(jittered_order(samples, lateness, seed=seed))
        result = ingestor.finish()

        assert result.late.count == 0
        assert_same_analysis_state(result.dataset, expected.dataset)
        assert data_counters(result.dataset) == data_counters(expected.dataset)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_unbounded_lateness_admits_any_permutation(self, seed):
        samples = make_trace_samples(120, seed=31, windows=4)
        span = max(s.end_time for s in samples) + WINDOW

        baseline = StreamingIngestor(
            study_windows=4, allowed_lateness_seconds=span
        )
        baseline.offer_all(sorted(samples, key=lambda s: s.end_time))
        expected = baseline.finish()

        shuffled = list(samples)
        random.Random(seed).shuffle(shuffled)
        ingestor = StreamingIngestor(
            study_windows=4, allowed_lateness_seconds=span
        )
        ingestor.offer_all(shuffled)
        result = ingestor.finish()

        assert result.late.count == 0
        assert_same_analysis_state(result.dataset, expected.dataset)
        assert data_counters(result.dataset) == data_counters(expected.dataset)


# --------------------------------------------------------------------- #
def _stable_window(window: int, rtt_ms: float, count: int = 40):
    rng = random.Random(window)
    return [
        in_window(
            window,
            offset=(i + 1) * WINDOW / (count + 2),
            rtt_ms=max(rng.gauss(rtt_ms, 1.0), 1.0),
        )
        for i in range(count)
    ]


class TestOnlineAnalyzer:
    def test_degradation_alert_fires_online(self):
        metrics = MetricsRegistry()
        ingestor = StreamingIngestor(
            study_windows=8,
            allowed_lateness_seconds=0.0,
            metrics=metrics,
        )
        for window in range(6):
            ingestor.offer_all(_stable_window(window, rtt_ms=30.0))
        ingestor.offer_all(_stable_window(6, rtt_ms=60.0))
        result = ingestor.finish()
        assert [a.window for a in result.alerts] == [6]
        alert = result.alerts[0]
        assert alert.metric == "minrtt"
        assert alert.group == DEFAULT_GROUP
        assert alert.difference == pytest.approx(30.0, abs=5.0)
        assert metrics.counter("stream.alerts") == 1

    def test_uneventful_group_raises_no_alert(self):
        ingestor = StreamingIngestor(
            study_windows=8, allowed_lateness_seconds=0.0
        )
        for window in range(8):
            ingestor.offer_all(_stable_window(window, rtt_ms=30.0))
        result = ingestor.finish()
        assert result.alerts == []
        assert result.class_counts() == {"uneventful": 1}

    def test_episodic_classification_online(self):
        ingestor = StreamingIngestor(
            study_windows=8, allowed_lateness_seconds=0.0
        )
        for window in range(6):
            ingestor.offer_all(_stable_window(window, rtt_ms=30.0))
        ingestor.offer_all(_stable_window(6, rtt_ms=60.0))
        ingestor.offer_all(_stable_window(7, rtt_ms=30.0))
        result = ingestor.finish()
        assert result.class_counts() == {"episodic": 1}

    def test_no_alerts_before_min_baseline_history(self):
        analyzer = OnlineTemporalAnalyzer(min_baseline_windows=4)
        ingestor = StreamingIngestor(
            study_windows=8, allowed_lateness_seconds=0.0, analyzer=analyzer
        )
        # An immediate degradation with no history must not alert: the
        # trailing baseline needs min_baseline_windows sealed windows first.
        for window in range(3):
            ingestor.offer_all(_stable_window(window, rtt_ms=60.0))
        result = ingestor.finish()
        assert result.alerts == []

    def test_trailing_baseline_window_is_bounded(self):
        analyzer = OnlineTemporalAnalyzer(
            baseline_windows=3, min_baseline_windows=3
        )
        ingestor = StreamingIngestor(
            study_windows=16, allowed_lateness_seconds=0.0, analyzer=analyzer
        )
        # Windows 0–2 fast, 3–8 slow: with a 3-window trailing baseline the
        # slow level becomes the new normal, so later slow windows stop
        # alerting — the hallmark of a *trailing* (not global) baseline.
        for window in range(3):
            ingestor.offer_all(_stable_window(window, rtt_ms=30.0))
        for window in range(3, 9):
            ingestor.offer_all(_stable_window(window, rtt_ms=60.0))
        result = ingestor.finish()
        alert_windows = [a.window for a in result.alerts]
        assert 3 in alert_windows
        assert 8 not in alert_windows

    def test_analyzer_rejects_bad_args(self):
        with pytest.raises(ValueError):
            OnlineTemporalAnalyzer(baseline_windows=0)
        with pytest.raises(ValueError):
            OnlineTemporalAnalyzer().classifications("neither")
