"""Tests for JSONL trace serialization and chunked parallel reading."""

import pathlib
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
)
from repro.pipeline.io import (
    convert,
    detect_format,
    plan_chunks,
    read_chunk,
    read_samples,
    read_samples_chunked,
    sample_from_dict,
    sample_to_dict,
    write_samples,
)

from tests.helpers import make_route, make_sample, make_trace_samples


def sample_with_txns():
    sample = make_sample(25.0, 55.0, route=make_route(rank=1))
    sample.geo_tag = "amsterdam"
    sample.transactions = [
        TransactionRecord(
            first_byte_time=1.0,
            ack_time=1.2,
            response_bytes=30_000,
            last_packet_bytes=1500,
            cwnd_bytes_at_first_byte=15_000,
            bytes_in_flight_at_start=0,
            last_byte_write_time=1.1,
        )
    ]
    return sample


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = sample_with_txns()
        restored = sample_from_dict(sample_to_dict(original))
        assert restored.session_id == original.session_id
        assert restored.min_rtt_seconds == original.min_rtt_seconds
        assert restored.route == original.route
        assert restored.geo_tag == "amsterdam"
        assert restored.transactions == original.transactions
        assert restored.http_version is original.http_version

    def test_file_round_trip(self, tmp_path):
        samples = [sample_with_txns() for _ in range(5)]
        path = tmp_path / "trace.jsonl"
        assert write_samples(path, samples) == 5
        restored = list(read_samples(path))
        assert len(restored) == 5
        assert restored[0].transactions == samples[0].transactions

    def test_gzip_round_trip(self, tmp_path):
        samples = [sample_with_txns() for _ in range(3)]
        path = tmp_path / "trace.jsonl.gz"
        write_samples(path, samples)
        assert len(list(read_samples(path))) == 3

    def test_sample_without_route(self, tmp_path):
        sample = sample_with_txns()
        sample.route = None
        restored = sample_from_dict(sample_to_dict(sample))
        assert restored.route is None


class TestErrors:
    def test_version_check(self):
        payload = sample_to_dict(sample_with_txns())
        payload["v"] = 99
        with pytest.raises(ValueError):
            sample_from_dict(payload)

    def test_corrupt_line_reported_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with open(path, "a") as handle:
            handle.write("{not json}\n")
        with pytest.raises(ValueError, match=":2"):
            list(read_samples(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_samples(path))) == 1


# --------------------------------------------------------------------- #
# Property-based round trips (Hypothesis)
# --------------------------------------------------------------------- #
finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def transactions_strategy(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    records = []
    clock = 0.0
    for _ in range(count):
        first_byte = clock + draw(st.floats(min_value=0.0, max_value=5.0, **finite))
        response = draw(st.integers(min_value=1, max_value=1_000_000))
        records.append(
            TransactionRecord(
                first_byte_time=first_byte,
                ack_time=first_byte
                + draw(st.floats(min_value=0.0, max_value=10.0, **finite)),
                response_bytes=response,
                last_packet_bytes=draw(st.integers(min_value=0, max_value=response)),
                cwnd_bytes_at_first_byte=draw(
                    st.integers(min_value=1, max_value=500_000)
                ),
                bytes_in_flight_at_start=draw(
                    st.integers(min_value=0, max_value=100_000)
                ),
                coalesced_count=draw(st.integers(min_value=1, max_value=5)),
                last_byte_write_time=draw(
                    st.one_of(
                        st.none(),
                        st.floats(min_value=first_byte, max_value=first_byte + 20.0, **finite),
                    )
                ),
            )
        )
        clock = first_byte
    return records


name_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
)


@st.composite
def samples_strategy(draw):
    start = draw(st.floats(min_value=0.0, max_value=1e6, **finite))
    route = draw(
        st.one_of(
            st.none(),
            st.builds(
                RouteInfo,
                prefix=name_text,
                as_path=st.tuples(st.integers(min_value=1, max_value=2**31)),
                relationship=st.sampled_from(Relationship),
                preference_rank=st.integers(min_value=0, max_value=3),
                prepended=st.booleans(),
            ),
        )
    )
    return SessionSample(
        session_id=draw(st.integers(min_value=0, max_value=2**62)),
        start_time=start,
        end_time=start + draw(st.floats(min_value=0.0, max_value=1e4, **finite)),
        http_version=draw(st.sampled_from(HttpVersion)),
        min_rtt_seconds=draw(st.floats(min_value=1e-6, max_value=10.0, **finite)),
        bytes_sent=draw(st.integers(min_value=0, max_value=2**40)),
        busy_time_seconds=draw(st.floats(min_value=0.0, max_value=1e4, **finite)),
        transactions=draw(transactions_strategy()),
        route=route,
        pop=draw(name_text),
        client_country=draw(name_text),
        client_continent=draw(name_text),
        client_ip_is_hosting=draw(st.booleans()),
        geo_tag=draw(name_text),
        media_response_sizes=draw(
            st.tuples(st.integers(min_value=0, max_value=2**31))
        ),
    )


class TestPropertyRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(sample=samples_strategy())
    def test_dict_round_trip_is_lossless(self, sample):
        payload = json.loads(json.dumps(sample_to_dict(sample)))
        assert sample_from_dict(payload) == sample

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        samples=st.lists(samples_strategy(), max_size=12),
        blank_every=st.integers(min_value=0, max_value=3),
        trailing_newline=st.booleans(),
        gzip_file=st.booleans(),
        num_chunks=st.integers(min_value=1, max_value=6),
    )
    @pytest.mark.filterwarnings("ignore:.*not seekable.*:RuntimeWarning")
    def test_chunked_reads_equal_whole_file(
        self, samples, blank_every, trailing_newline, gzip_file, num_chunks, tmp_path_factory
    ):
        import gzip as gzip_module

        root = tmp_path_factory.mktemp("chunked")
        path = root / ("trace.jsonl.gz" if gzip_file else "trace.jsonl")
        lines = []
        for index, sample in enumerate(samples):
            lines.append(json.dumps(sample_to_dict(sample)))
            if blank_every and index % blank_every == 0:
                lines.append("")  # blank lines must be skipped everywhere
        text = "\n".join(lines)
        if trailing_newline and text:
            text += "\n"
        if gzip_file:
            with gzip_module.open(path, "wt", encoding="utf-8") as handle:
                handle.write(text)
        else:
            path.write_text(text, encoding="utf-8")

        whole = list(read_samples(path))
        chunked = list(read_samples_chunked(path, num_chunks))
        assert chunked == whole == samples

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        samples=st.lists(samples_strategy(), min_size=1, max_size=10),
        num_chunks=st.integers(min_value=1, max_value=5),
        gzip_file=st.booleans(),
    )
    @pytest.mark.filterwarnings("ignore:.*not seekable.*:RuntimeWarning")
    def test_chunk_order_keys_are_global_and_monotone(
        self, samples, num_chunks, gzip_file, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("keys")
        path = root / ("trace.jsonl.gz" if gzip_file else "trace.jsonl")
        write_samples(path, samples)
        chunks = plan_chunks(path, num_chunks)
        assert len(chunks) <= num_chunks
        keys = []
        restored = []
        for chunk in chunks:
            for key, sample in read_chunk(chunk):
                keys.append(key)
                restored.append(sample)
        assert keys == sorted(keys) and len(set(keys)) == len(keys)
        assert restored == samples


class TestChunkPlanning:
    def test_empty_file_has_no_chunks(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert plan_chunks(path, 4) == []

    def test_zero_chunks_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with pytest.raises(ValueError):
            plan_chunks(path, 0)

    def test_chunk_paths_are_resolved(self, tmp_path, monkeypatch):
        # Chunks ship to worker daemons whose CWD is not the planner's
        # (DESIGN.md §13): a relative path must be pinned at plan time.
        write_samples(tmp_path / "trace.jsonl", [sample_with_txns()])
        monkeypatch.chdir(tmp_path)
        for chunk in plan_chunks("trace.jsonl", 2):
            assert pathlib.Path(chunk.path).is_absolute()

    def test_store_chunk_paths_are_resolved(self, tmp_path, monkeypatch):
        write_samples(tmp_path / "t.jsonl", [sample_with_txns()])
        convert(tmp_path / "t.jsonl", tmp_path / "t.store")
        monkeypatch.chdir(tmp_path)
        for chunk in plan_chunks("t.store", 2):
            assert pathlib.Path(chunk.path).is_absolute()

    def test_chunks_cover_file_without_overlap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns() for _ in range(25)])
        chunks = plan_chunks(path, 4)
        assert chunks[0].start_byte == 0
        assert chunks[-1].end_byte == path.stat().st_size
        for previous, current in zip(chunks, chunks[1:]):
            assert previous.end_byte == current.start_byte

    def test_more_chunks_than_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns(), sample_with_txns()])
        restored = list(read_samples_chunked(path, 10))
        assert len(restored) == 2

    def test_corrupt_chunk_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with open(path, "a") as handle:
            handle.write("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            list(read_samples_chunked(path, 2))


class TestFormatDetection:
    def test_detect_format_by_suffix_and_manifest(self, tmp_path):
        assert detect_format(tmp_path / "t.jsonl") == "jsonl"
        assert detect_format(tmp_path / "t.jsonl.gz") == "jsonl"
        assert detect_format(tmp_path / "t.store") == "store"
        store = tmp_path / "unsuffixed"
        convert_target = tmp_path / "src.jsonl"
        write_samples(convert_target, [sample_with_txns()])
        convert(convert_target, store / "x.store")
        assert detect_format(store / "x.store") == "store"

    def test_convert_round_trips_through_store(self, tmp_path):
        samples = make_trace_samples(60, seed=31)
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        back = tmp_path / "back.jsonl"
        write_samples(jsonl, samples)
        assert convert(jsonl, store) == 60
        assert convert(store, back) == 60
        assert back.read_bytes() == jsonl.read_bytes()


class TestAtomicWrites:
    def test_interrupted_write_keeps_previous_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = [sample_with_txns() for _ in range(4)]
        write_samples(path, good)
        before = path.read_bytes()

        def interrupted():
            yield sample_with_txns()
            raise RuntimeError("export died mid-stream")

        with pytest.raises(RuntimeError):
            write_samples(path, interrupted())
        # The half-written export must not have replaced (or truncated)
        # the existing trace, and must not leave temp litter behind.
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_interrupted_write_leaves_no_new_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"

        def interrupted():
            yield sample_with_txns()
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            write_samples(path, interrupted())
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_gzip_target_writes_gzip_despite_temp_name(self, tmp_path):
        import gzip as gzip_module

        path = tmp_path / "t.jsonl.gz"
        write_samples(path, [sample_with_txns()])
        with gzip_module.open(path, "rt", encoding="utf-8") as handle:
            assert json.loads(handle.readline())["v"] == 1


class TestGzipChunkFallback:
    def test_multi_chunk_gzip_plan_warns_and_counts(self, tmp_path):
        from repro.obs import MetricsRegistry, activate_metrics

        path = tmp_path / "t.jsonl.gz"
        write_samples(path, [sample_with_txns() for _ in range(8)])
        registry = MetricsRegistry()
        with activate_metrics(registry):
            with pytest.warns(RuntimeWarning, match="not seekable"):
                chunks = plan_chunks(path, 4)
        assert len(chunks) > 1
        # An execution fact, recorded process-wide — never in a dataset's
        # registry, where it would break serial-vs-parallel counter
        # equality (serial ingestion never plans chunks).
        assert registry.counter("io.gzip_chunk_fallback") == 1

    def test_warns_once_per_path_but_counts_every_plan(self, tmp_path):
        import warnings

        from repro.obs import MetricsRegistry, activate_metrics

        path = tmp_path / "t.jsonl.gz"
        write_samples(path, [sample_with_txns() for _ in range(8)])
        registry = MetricsRegistry()
        with activate_metrics(registry):
            with pytest.warns(RuntimeWarning, match="not seekable"):
                plan_chunks(path, 4)
            # Same path again: the counter keeps the tally, the warning
            # does not repeat (one actionable line per file per process).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                plan_chunks(path, 4)
        assert registry.counter("io.gzip_chunk_fallback") == 2

        # A different gzip path is new information and warns afresh.
        other = tmp_path / "other.jsonl.gz"
        write_samples(other, [sample_with_txns() for _ in range(8)])
        with pytest.warns(RuntimeWarning, match="not seekable"):
            plan_chunks(other, 4)

    def test_single_chunk_gzip_plan_is_silent(self, tmp_path):
        import warnings

        path = tmp_path / "t.jsonl.gz"
        write_samples(path, [sample_with_txns()])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan_chunks(path, 1)

    def test_plain_jsonl_plan_is_silent(self, tmp_path):
        import warnings

        path = tmp_path / "t.jsonl"
        write_samples(path, [sample_with_txns() for _ in range(8)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan_chunks(path, 4)


class TestAnalysisOverRestoredTrace:
    def test_restored_trace_feeds_pipeline(self, tmp_path):
        from repro.pipeline import StudyDataset

        samples = [sample_with_txns() for _ in range(10)]
        path = tmp_path / "trace.jsonl"
        write_samples(path, samples)
        dataset = StudyDataset(study_windows=96)
        dataset.ingest(read_samples(path))
        assert dataset.session_count == 10
        assert len(dataset.store) == 1
