"""Tests for JSONL trace serialization."""

import json

import pytest

from repro.core.records import TransactionRecord
from repro.pipeline.io import (
    read_samples,
    sample_from_dict,
    sample_to_dict,
    write_samples,
)

from tests.helpers import make_route, make_sample


def sample_with_txns():
    sample = make_sample(25.0, 55.0, route=make_route(rank=1))
    sample.geo_tag = "amsterdam"
    sample.transactions = [
        TransactionRecord(
            first_byte_time=1.0,
            ack_time=1.2,
            response_bytes=30_000,
            last_packet_bytes=1500,
            cwnd_bytes_at_first_byte=15_000,
            bytes_in_flight_at_start=0,
            last_byte_write_time=1.1,
        )
    ]
    return sample


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = sample_with_txns()
        restored = sample_from_dict(sample_to_dict(original))
        assert restored.session_id == original.session_id
        assert restored.min_rtt_seconds == original.min_rtt_seconds
        assert restored.route == original.route
        assert restored.geo_tag == "amsterdam"
        assert restored.transactions == original.transactions
        assert restored.http_version is original.http_version

    def test_file_round_trip(self, tmp_path):
        samples = [sample_with_txns() for _ in range(5)]
        path = tmp_path / "trace.jsonl"
        assert write_samples(path, samples) == 5
        restored = list(read_samples(path))
        assert len(restored) == 5
        assert restored[0].transactions == samples[0].transactions

    def test_gzip_round_trip(self, tmp_path):
        samples = [sample_with_txns() for _ in range(3)]
        path = tmp_path / "trace.jsonl.gz"
        write_samples(path, samples)
        assert len(list(read_samples(path))) == 3

    def test_sample_without_route(self, tmp_path):
        sample = sample_with_txns()
        sample.route = None
        restored = sample_from_dict(sample_to_dict(sample))
        assert restored.route is None


class TestErrors:
    def test_version_check(self):
        payload = sample_to_dict(sample_with_txns())
        payload["v"] = 99
        with pytest.raises(ValueError):
            sample_from_dict(payload)

    def test_corrupt_line_reported_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with open(path, "a") as handle:
            handle.write("{not json}\n")
        with pytest.raises(ValueError, match=":2"):
            list(read_samples(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_samples(path, [sample_with_txns()])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_samples(path))) == 1


class TestAnalysisOverRestoredTrace:
    def test_restored_trace_feeds_pipeline(self, tmp_path):
        from repro.pipeline import StudyDataset

        samples = [sample_with_txns() for _ in range(10)]
        path = tmp_path / "trace.jsonl"
        write_samples(path, samples)
        dataset = StudyDataset(study_windows=96)
        dataset.ingest(read_samples(path))
        assert dataset.session_count == 10
        assert len(dataset.store) == 1
