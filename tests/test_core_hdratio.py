"""Tests for per-session HDratio (§3.2.4) and the naive-estimator ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import model_transfer_time
from repro.core.hdratio import naive_hdratio, session_goodput
from repro.core.records import TransactionRecord

MSS = 1500
RTT = 0.060
ICW = 10 * MSS


def txn(start, ack, nbytes, last=MSS, cwnd=ICW, in_flight=0):
    return TransactionRecord(
        first_byte_time=start,
        ack_time=ack,
        response_bytes=nbytes,
        last_packet_bytes=last,
        cwnd_bytes_at_first_byte=cwnd,
        bytes_in_flight_at_start=in_flight,
    )


def ideal_txn(start, nbytes, cwnd=ICW, rtt=RTT):
    """A transaction that transfers at the ideal slow-start pace."""
    measured = nbytes - MSS
    # Transfer time just under the model time at HD rate => achieves HD
    # whenever it can test.
    t_hd = model_transfer_time(HD_GOODPUT_BYTES_PER_SEC, max(measured, 1), cwnd, rtt)
    return txn(start, start + t_hd * 0.9, nbytes, cwnd=cwnd)


class TestSessionGoodput:
    def test_empty_session_has_no_hdratio(self):
        result = session_goodput([], RTT)
        assert result.hdratio is None
        assert result.tested == 0

    def test_small_transactions_cannot_test(self):
        # 2-packet responses can never demonstrate 2.5 Mbps at 60 ms.
        records = [txn(i, i + RTT, 2 * MSS) for i in range(3)]
        result = session_goodput(records, RTT)
        assert result.tested == 0
        assert result.hdratio is None

    def test_fast_large_transaction_achieves(self):
        records = [ideal_txn(0.0, 100 * MSS)]
        result = session_goodput(records, RTT)
        assert result.tested == 1
        assert result.achieved == 1
        assert result.hdratio == 1.0

    def test_slow_large_transaction_fails(self):
        records = [txn(0.0, 10.0, 100 * MSS)]  # 150 KB over 10 s: ~0.12 Mbps
        result = session_goodput(records, RTT)
        assert result.tested == 1
        assert result.achieved == 0
        assert result.hdratio == 0.0

    def test_mixed_session_fractional_ratio(self):
        records = [
            ideal_txn(0.0, 100 * MSS),
            txn(10.0, 20.0, 100 * MSS),   # slow
            ideal_txn(30.0, 100 * MSS),
            txn(40.0, 40.0 + RTT, 2 * MSS),  # too small to test
        ]
        result = session_goodput(records, RTT)
        assert result.tested == 3
        assert result.achieved == 2
        assert result.hdratio == pytest.approx(2 / 3)

    def test_window_chain_lets_later_small_txn_test(self):
        # A 24-packet transaction grows the ideal window to 20 packets, so
        # a following 14-packet transaction CAN test for HD at 60 ms even
        # though it could not with a cold 10-packet window (Figure 4).
        first = ideal_txn(0.0, 24 * MSS)
        second = ideal_txn(5.0, 14 * MSS + MSS)  # +MSS for excluded last pkt
        result = session_goodput([first, second], RTT)
        assert result.tested == 2

        # Without the chain (cold window), the second alone cannot test.
        alone = session_goodput([second], RTT)
        assert alone.tested == 0

    def test_ineligible_transactions_are_skipped(self):
        records = [
            ideal_txn(0.0, 100 * MSS),
            txn(10.0, 11.0, 100 * MSS, in_flight=5000),  # contaminated
        ]
        result = session_goodput(records, RTT)
        assert result.tested == 1
        assert result.eligible == 1

    def test_rejects_nonpositive_minrtt(self):
        with pytest.raises(ValueError):
            session_goodput([], 0.0)


class TestNaiveAblation:
    def test_naive_underestimates_achievement(self):
        # Transfers completing exactly at the HD model time: the model says
        # achieved; the naive estimator (which ignores the slow-start and
        # propagation rounds) says not achieved.
        measured = 100 * MSS - MSS
        t_hd = model_transfer_time(HD_GOODPUT_BYTES_PER_SEC, measured, ICW, RTT)
        records = [txn(0.0, t_hd, 100 * MSS)]
        model_result = session_goodput(records, RTT)
        naive_result = naive_hdratio(records, RTT)
        assert model_result.hdratio == 1.0
        assert naive_result == 0.0

    def test_naive_agrees_on_very_fast_transfers(self):
        # A transfer far faster than HD passes both estimators.
        records = [txn(0.0, 0.05, 200 * MSS)]  # 300 KB in 50 ms = 48 Mbps
        assert session_goodput(records, RTT).hdratio == 1.0
        assert naive_hdratio(records, RTT) == 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=2 * MSS, max_value=500 * MSS),  # size
            st.floats(min_value=0.01, max_value=5.0),             # duration
        ),
        min_size=1,
        max_size=10,
    )
)
def test_hdratio_is_a_valid_ratio(txn_specs):
    records = []
    t = 0.0
    for size, duration in txn_specs:
        records.append(txn(t, t + duration, size))
        t += duration + 1.0  # keep transactions disjoint
    result = session_goodput(records, RTT)
    if result.hdratio is not None:
        assert 0.0 <= result.hdratio <= 1.0
    assert result.achieved <= result.tested <= len(records)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=20 * MSS, max_value=500 * MSS))
def test_naive_never_beats_model(size):
    # For any single transaction, if the naive estimator says HD was
    # achieved then the model must agree (the model corrects *upward*).
    for duration in (0.05, 0.1, 0.5, 1.0, 3.0):
        records = [txn(0.0, duration, size)]
        model = session_goodput(records, RTT)
        naive = naive_hdratio(records, RTT)
        if naive == 1.0 and model.tested:
            assert model.hdratio == 1.0
