"""Tests for geography, PoP catalogue, and client networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.geo import (
    Continent,
    Location,
    great_circle_km,
    propagation_rtt_ms,
)
from repro.edge.topology import DEFAULT_METROS, ClientNetwork, Metro, default_pops


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_km(52.0, 4.0, 52.0, 4.0) == 0.0

    def test_known_distance_ams_lhr(self):
        # Amsterdam to London is ~360 km.
        d = great_circle_km(52.37, 4.90, 51.51, -0.13)
        assert 330 < d < 390

    def test_known_distance_nyc_lax(self):
        d = great_circle_km(40.71, -74.01, 34.05, -118.24)
        assert 3900 < d < 4000

    def test_symmetry(self):
        d1 = great_circle_km(10, 20, -30, 100)
        d2 = great_circle_km(-30, 100, 10, 20)
        assert d1 == pytest.approx(d2)

    def test_antipodal_is_half_circumference(self):
        d = great_circle_km(0, 0, 0, 180)
        assert d == pytest.approx(20015, rel=0.01)


class TestPropagation:
    def test_500km_within_10ms(self):
        # The paper: half of traffic is within 500 km of its PoP and most
        # such users see low RTTs.
        assert propagation_rtt_ms(500.0) < 10.0

    def test_2500km_tens_of_ms(self):
        rtt = propagation_rtt_ms(2500.0)
        assert 25.0 < rtt < 50.0

    def test_zero_distance(self):
        assert propagation_rtt_ms(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            propagation_rtt_ms(-1.0)

    def test_inflation_scales(self):
        assert propagation_rtt_ms(1000.0, inflation=2.0) == pytest.approx(
            2.0 * propagation_rtt_ms(1000.0, inflation=1.0)
        )


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
)
def test_distance_bounds(lat1, lon1, lat2, lon2):
    d = great_circle_km(lat1, lon1, lat2, lon2)
    assert 0.0 <= d <= 20038.0  # half circumference


class TestLocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            Location(91.0, 0.0, "XX", Continent.EUROPE)
        with pytest.raises(ValueError):
            Location(0.0, 181.0, "XX", Continent.EUROPE)

    def test_distance_method(self):
        a = Location(52.37, 4.90, "NL", Continent.EUROPE)
        b = Location(51.51, -0.13, "GB", Continent.EUROPE)
        assert 330 < a.distance_km(b) < 390


class TestCatalogue:
    def test_pops_cover_six_continents(self):
        continents = {pop.continent for pop in default_pops()}
        assert continents == set(Continent)

    def test_pop_density_skew(self):
        # EU+NA have more PoPs than AF+SA+OC combined — the infrastructure
        # skew behind Figure 6(b).
        pops = default_pops()
        dense = sum(
            1 for p in pops
            if p.continent in (Continent.EUROPE, Continent.NORTH_AMERICA)
        )
        sparse = sum(
            1 for p in pops
            if p.continent
            in (Continent.AFRICA, Continent.SOUTH_AMERICA, Continent.OCEANIA)
        )
        assert dense > 2 * sparse

    def test_pop_names_unique(self):
        names = [pop.name for pop in default_pops()]
        assert len(names) == len(set(names))

    def test_metros_cover_six_continents(self):
        continents = {m.location.continent for m in DEFAULT_METROS}
        assert continents == set(Continent)


class TestClientNetwork:
    def _metro(self):
        return DEFAULT_METROS[0]

    def test_requires_prefixes(self):
        with pytest.raises(ValueError):
            ClientNetwork(asn=65001, prefixes=[], metro=self._metro())

    def test_secondary_share_needs_metro(self):
        with pytest.raises(ValueError):
            ClientNetwork(
                asn=65001,
                prefixes=["10.0.0.0/20"],
                metro=self._metro(),
                secondary_share=0.5,
            )

    def test_country_and_continent_follow_metro(self):
        network = ClientNetwork(
            asn=65001, prefixes=["10.0.0.0/20"], metro=self._metro()
        )
        assert network.country == self._metro().location.country
        assert network.continent is self._metro().location.continent
