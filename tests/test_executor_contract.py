"""Executor-conformance suite: every backend honors one contract.

The :class:`~repro.pipeline.parallel.ShardExecutor` contract (DESIGN.md
§13) is what makes *where* shards run orthogonal to *what* they compute:
any backend — serial, thread pool, process pool, or dispatch over socket
daemons — must produce datasets and data counters byte-identical to the
serial pass, and must route every failed attempt through the same
retry/quarantine/strict policy so accounting is indistinguishable across
backends.

This suite runs the same assertions over all four built-ins. Adding a
fifth backend via :func:`register_executor` means adding one line to
``BACKENDS`` here and inheriting the whole bar.
"""

from __future__ import annotations

import pytest

from repro import faultinject
from repro.dist import WorkerDaemon
from repro.faultinject import FaultPlan
from repro.obs import MetricsRegistry, activate_metrics
from repro.pipeline import (
    ParallelOptions,
    ShardError,
    StudyDataset,
    build_dataset,
)
from repro.pipeline.parallel import (
    SerialExecutor,
    ShardExecutor,
    _EXECUTOR_FACTORIES,
    executor_for,
    register_executor,
)

from tests.helpers import make_trace_samples
from tests.test_pipeline_parallel import assert_datasets_equal

pytestmark = pytest.mark.dist

STUDY_WINDOWS = 8

BACKENDS = ("serial", "thread", "process", "dispatch")
#: Backends whose shards run in this process (or its threads), where a
#: programmatic ``faultinject.inject`` plan is visible. The process pool
#: picks plans up from the environment instead, with per-child budgets —
#: so count-limited (transient) faults are exercised on these only.
IN_PROCESS_BACKENDS = ("serial", "thread", "dispatch")


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faultinject.reset()
    yield
    faultinject.reset()


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(500, seed=47, windows=STUDY_WINDOWS)


@pytest.fixture(scope="module")
def serial_dataset(samples):
    return StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))


@pytest.fixture(scope="module")
def daemons():
    with WorkerDaemon() as first, WorkerDaemon() as second:
        yield (first.address, second.address)


def _options(backend, daemons, **kwargs) -> ParallelOptions:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("retry_backoff", 0.0)
    if backend == "dispatch":
        kwargs.setdefault("worker_addrs", daemons)
    return ParallelOptions(executor=backend, **kwargs)


def _ledger_accounting(ledger) -> tuple:
    """The backend-invariant shape of a degraded ledger.

    Error *text* legitimately differs across backends (a dispatch run
    reports ``RemoteShardFailure: RuntimeError: ...`` where a local one
    reports ``RuntimeError: ...``), so it is excluded here and asserted
    separately.
    """
    payload = ledger.to_dict()
    return (
        payload["shards_lost"],
        payload["samples_lost"],
        payload["partitions_skipped"],
        payload["retries"],
        [
            (e["ordinal"], e["attempts"], e["samples_lost"],
             e["partitions_skipped"])
            for e in payload["shards"]
        ],
    )


# --------------------------------------------------------------------- #
# Equivalence: dataset and data-counter identity vs serial
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestEquivalence:
    def test_dataset_identical_to_serial(
        self, samples, serial_dataset, daemons, backend
    ):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_options(backend, daemons),
        )
        assert_datasets_equal(dataset, serial_dataset)
        assert dataset.degraded is None

    def test_counters_and_gauges_identical_to_serial(
        self, samples, daemons, backend
    ):
        serial = build_dataset(iter(samples), study_windows=STUDY_WINDOWS)
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_options(backend, daemons),
        )
        assert dataset.metrics.counters == serial.metrics.counters
        assert dataset.metrics.gauges == serial.metrics.gauges


# --------------------------------------------------------------------- #
# Failure policy: retry, quarantine, strict — identical accounting
# --------------------------------------------------------------------- #
class TestFailurePolicy:
    @pytest.mark.parametrize("backend", IN_PROCESS_BACKENDS)
    def test_transient_failure_retried_to_clean_result(
        self, samples, serial_dataset, daemons, backend
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": 2})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options(backend, daemons),
            )
        assert dataset.degraded is None
        assert_datasets_equal(dataset, serial_dataset)
        assert registry.counter("fault.shard_retries") == 2
        assert registry.counter("fault.shards_quarantined") == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_quarantine_accounting_identical(
        self, samples, daemons, backend, monkeypatch
    ):
        # Permanent kill of shard 1, activated via the environment so the
        # process pool's children see it too (budget per process, but a
        # permanent fault has no budget to diverge on).
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        monkeypatch.setenv(faultinject.ENV_VAR, plan.to_json())
        faultinject.reset()
        serial = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_options("serial", daemons),
        )
        faultinject.reset()
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_options(backend, daemons),
        )
        assert dataset.degraded is not None
        assert _ledger_accounting(dataset.degraded) == _ledger_accounting(
            serial.degraded
        )
        # The worker-side error is named in every backend's ledger entry.
        assert "injected fault" in dataset.degraded.shards[0]["error"]
        # The surviving shards are identical to serial's survivors.
        assert dataset.rows == serial.rows
        assert [k for k, _ in dataset.store.items()] == [
            k for k, _ in serial.store.items()
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_strict_raises_shard_error_naming_the_shard(
        self, samples, daemons, backend, monkeypatch
    ):
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        monkeypatch.setenv(faultinject.ENV_VAR, plan.to_json())
        faultinject.reset()
        with pytest.raises(ShardError) as excinfo:
            build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options(backend, daemons, strict=True, max_retries=0),
            )
        assert excinfo.value.shard_id == 1
        assert excinfo.value.attempts == 1
        assert "injected fault" in str(excinfo.value)


# --------------------------------------------------------------------- #
# The registry: lookup, replacement, and the base-class contract
# --------------------------------------------------------------------- #
class TestExecutorRegistry:
    def test_every_builtin_resolves(self, daemons):
        for backend in BACKENDS:
            executor = executor_for(_options(backend, daemons))
            assert isinstance(executor, ShardExecutor)
            executor.close()  # idempotent, resourceless here

    def test_unregistered_name_is_a_value_error(self, daemons):
        options = _options("thread", daemons)
        factory = _EXECUTOR_FACTORIES.pop("thread")
        try:
            with pytest.raises(ValueError, match="no executor backend"):
                executor_for(options)
        finally:
            _EXECUTOR_FACTORIES["thread"] = factory

    def test_register_replaces_a_builtin(self, samples, daemons):
        # The documented test-double path: swap a built-in for a custom
        # backend and get the whole pipeline (plan, merge, faults) free.
        calls = []

        class RecordingExecutor(SerialExecutor):
            def run(self, tasks, ledger):
                calls.append(len(tasks))
                return super().run(tasks, ledger)

        original = _EXECUTOR_FACTORIES["thread"]
        register_executor("thread", RecordingExecutor)
        try:
            serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(
                iter(samples[:100])
            )
            dataset = build_dataset(
                iter(samples[:100]),
                study_windows=STUDY_WINDOWS,
                options=_options("thread", daemons),
            )
        finally:
            register_executor("thread", original)
        assert calls == [4]
        assert dataset.rows == serial.rows

    def test_base_run_is_abstract(self, daemons):
        executor = ShardExecutor(_options("serial", daemons))
        with pytest.raises(NotImplementedError):
            executor.run([], None)
        executor.close()  # the default close is a safe no-op
