"""Tests for the PEP split-connection study (§2.2.1)."""

import pytest

from repro.netsim.pep import run_end_to_end_transfer, run_split_transfer

pytestmark = pytest.mark.netsim

MSS = 1500


class TestSplitTransfer:
    @pytest.fixture(scope="class")
    def split(self):
        return run_split_transfer([100 * MSS, 100 * MSS])

    def test_all_bytes_reach_the_client(self, split):
        assert split.client_received_bytes == 200 * MSS

    def test_server_underestimates_latency(self, split):
        # The server measures RTT to the PEP (~20 ms), not to the client
        # (~570 ms) — the paper's "may underestimate latency".
        assert split.server_min_rtt_ms < 30.0

    def test_server_overestimates_goodput(self, split):
        # Server-side goodput reflects the clean middle mile; end-to-end
        # delivery is bottlenecked by the 2 Mbps satellite hop.
        assert split.server_goodput_bps > 2.0 * split.end_to_end_goodput_bps
        assert split.end_to_end_goodput_bps < 2.5e6

    def test_server_sees_hd_capable_session(self, split):
        # The measurement bias in full: HDratio says HD-capable while the
        # client cannot actually sustain HD.
        assert split.server_hdratio == 1.0

    def test_end_to_end_completion_lags_server_view(self, split):
        assert split.end_to_end_completion > split.server_view.completion_time


class TestEndToEndComparison:
    def test_unsplit_connection_measures_truth(self):
        result = run_end_to_end_transfer([100 * MSS])
        # Without the PEP, the server's MinRTT includes the satellite hop.
        assert result.min_rtt_seconds * 1000 > 400.0

    def test_split_completes_for_multiple_responses(self):
        split = run_split_transfer([20 * MSS, 20 * MSS, 20 * MSS])
        assert split.client_received_bytes == 60 * MSS

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_split_transfer([])


class TestProxylessEquivalence:
    def test_split_with_clean_last_mile_matches_direct(self):
        # With a fast clean last mile the PEP's effect on totals vanishes.
        split = run_split_transfer(
            [50 * MSS],
            last_mile_rtt_ms=20.0,
            last_mile_mbps=100.0,
            last_mile_loss=0.0,
        )
        assert split.client_received_bytes == 50 * MSS
        assert split.end_to_end_completion < 1.0
