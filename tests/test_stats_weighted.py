"""Tests for weighted percentiles and ECDFs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    ecdf,
    weighted_ecdf,
    weighted_fraction_at_most,
    weighted_percentile,
)
from repro.stats.weighted import percentile


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50.0) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50.0) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestWeightedPercentile:
    def test_uniform_weights_match_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        weights = [1.0] * 4
        assert weighted_percentile(values, weights, 50.0) == 20.0
        assert weighted_percentile(values, weights, 100.0) == 40.0

    def test_heavy_weight_dominates(self):
        values = [1.0, 100.0]
        weights = [99.0, 1.0]
        assert weighted_percentile(values, weights, 90.0) == 1.0
        assert weighted_percentile(values, weights, 99.9) == 100.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_percentile([1.0], [1.0, 2.0], 50.0)

    def test_zero_total_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_percentile([1.0, 2.0], [0.0, 0.0], 50.0)


class TestEcdf:
    def test_unweighted_fractions(self):
        xs, fs = ecdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert fs == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]

    def test_weighted_fractions(self):
        xs, fs = weighted_ecdf([10.0, 20.0], [3.0, 1.0])
        assert xs == [10.0, 20.0]
        assert fs == [pytest.approx(0.75), pytest.approx(1.0)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestFractionAtMost:
    def test_basic(self):
        values = [10.0, 20.0, 30.0]
        weights = [1.0, 1.0, 2.0]
        assert weighted_fraction_at_most(values, weights, 20.0) == pytest.approx(0.5)
        assert weighted_fraction_at_most(values, weights, 9.0) == 0.0
        assert weighted_fraction_at_most(values, weights, 30.0) == 1.0

    def test_threshold_between_points(self):
        assert weighted_fraction_at_most([1.0, 3.0], [1.0, 1.0], 2.0) == pytest.approx(0.5)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-1e3, max_value=1e3),
            st.floats(min_value=0.01, max_value=10.0),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_weighted_percentile_monotone_in_q(pairs):
    values = [v for v, _ in pairs]
    weights = [w for _, w in pairs]
    results = [weighted_percentile(values, weights, q) for q in (0, 25, 50, 75, 100)]
    assert results == sorted(results)
    assert min(values) <= results[0]
    assert results[-1] <= max(values)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=100),
)
def test_weighted_matches_unweighted_with_unit_weights(values):
    weights = [1.0] * len(values)
    # The weighted definition is the inverse ECDF (lower step); it must agree
    # with the unweighted rank definition at q=100 and never exceed max.
    assert weighted_percentile(values, weights, 100.0) == max(values)
    assert weighted_percentile(values, weights, 0.0) == min(values)
