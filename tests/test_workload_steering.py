"""Tests for §2.1 traffic-locality behaviour of the generator."""

import dataclasses

import pytest

from repro.edge.geo import Continent
from repro.workload.scenario import EdgeScenario, ScenarioConfig

CFG = ScenarioConfig(
    seed=9, days=1, base_sessions_per_window=4.0, networks_per_metro=2
)


@pytest.fixture(scope="module")
def trace():
    scenario = EdgeScenario(CFG)
    pops = {pop.name: pop for pop in scenario.pops}
    return scenario, pops, list(scenario.generate())


class TestLocality:
    def test_majority_of_traffic_near_pop(self, trace):
        scenario, pops, samples = trace
        by_prefix = {
            state.network.prefixes[0]: state for state in scenario.networks
        }
        within_500 = within_2500 = 0
        for sample in samples:
            state = by_prefix[sample.route.prefix]
            pop = pops[sample.pop]
            distance = state.network.metro.location.distance_km(pop.location)
            within_500 += distance <= 500
            within_2500 += distance <= 2500
        # Paper: 50% within 500 km, 90% within 2500 km.
        assert within_500 / len(samples) > 0.35
        assert within_2500 / len(samples) > 0.80

    def test_overflow_steering_present_for_af_as(self, trace):
        scenario, pops, samples = trace
        off_continent = [
            s
            for s in samples
            if s.client_continent in ("AF", "AS")
            and pops[s.pop].continent.code not in (s.client_continent,)
        ]
        total_af_as = sum(
            1 for s in samples if s.client_continent in ("AF", "AS")
        )
        share = len(off_continent) / max(total_af_as, 1)
        # Configured at 10% of AF/AS sessions (some networks' nearest PoP
        # is already off-continent, so the share can exceed the knob).
        assert 0.04 < share < 0.45

    def test_overflow_disabled(self):
        config = dataclasses.replace(CFG, overflow_steer_fraction=0.0)
        scenario = EdgeScenario(config)
        pops = {pop.name: pop for pop in scenario.pops}
        for state in scenario.networks:
            if state.network.continent in (Continent.AFRICA, Continent.ASIA):
                assert state.overflow_pop is None or state.overflow_pop is not None
        # With the knob at zero, every session uses the network's primary PoP.
        samples = list(scenario.generate())
        by_prefix = {s.network.prefixes[0]: s for s in scenario.networks}
        for sample in samples:
            assert sample.pop == by_prefix[sample.route.prefix].pop.name

    def test_overflow_sessions_have_higher_rtt(self, trace):
        scenario, pops, samples = trace
        asia = [s for s in samples if s.client_continent == "AS"]
        local = [
            s.min_rtt_ms for s in asia if pops[s.pop].continent.code == "AS"
        ]
        remote = [
            s.min_rtt_ms for s in asia if pops[s.pop].continent.code != "AS"
        ]
        if local and remote:
            from repro.stats.weighted import percentile

            assert percentile(remote, 50.0) > percentile(local, 50.0)
