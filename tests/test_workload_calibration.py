"""Tests for the executable calibration contract."""

import pytest

from repro.pipeline.dataset import StudyDataset
from repro.workload.calibration import (
    CalibrationTarget,
    render_report,
    run_calibration,
)
from repro.workload.scenario import EdgeScenario, ScenarioConfig


@pytest.fixture(scope="module")
def dataset():
    config = ScenarioConfig(
        seed=101,
        days=1,
        networks_per_metro=3,
        base_sessions_per_window=4.0,
    )
    ds = StudyDataset(study_windows=config.total_windows)
    ds.ingest(EdgeScenario(config).generate())
    return ds


class TestTargets:
    def test_target_check_mechanics(self):
        target = CalibrationTarget(
            name="demo", paper_value=1.0, low=0.5, high=1.5,
            extract=lambda c: c["value"],
        )
        assert target.check({"value": 1.2}).passed
        assert not target.check({"value": 2.0}).passed

    def test_most_anchors_pass_at_test_scale(self, dataset):
        results = run_calibration(dataset)
        passed = sum(1 for r in results if r.passed)
        # At reduced sampling a couple of per-continent anchors may sit just
        # outside their band; the bulk must hold.
        assert passed >= len(results) - 4, render_report(results)

    def test_workload_anchors_all_pass(self, dataset):
        # The pure-workload anchors (figs 1-3) are scale-insensitive.
        results = [
            r for r in run_calibration(dataset) if r.target.section in ("fig1", "fig2", "fig3")
        ]
        assert results
        assert all(r.passed for r in results), render_report(results)

    def test_render_report(self, dataset):
        results = run_calibration(dataset)
        text = render_report(results)
        assert "anchors within band" in text
        assert "paper" in text

    def test_custom_target_subset(self, dataset):
        only = [
            CalibrationTarget(
                name="sessions exist", paper_value=1.0, low=1.0, high=float("inf"),
                extract=lambda c: float(len(c["fig1"].duration_all.xs)),
            )
        ]
        results = run_calibration(dataset, targets=only)
        assert len(results) == 1
        assert results[0].passed
