"""Cross-validation of the two simulation tiers.

DESIGN.md's central fidelity argument: the analytic channel model
(:mod:`repro.workload.channel`) may replace the packet simulator for trace
generation because both produce transfer times with the same structure and
both feed the same measurement code. These tests make that claim concrete:
for matched configurations, per-transaction transfer times and the derived
HD verdicts from the two tiers must agree statistically.
"""

import random

import pytest

from repro.core.hdratio import session_goodput
from repro.netsim.scenarios import run_transfer
from repro.workload.channel import ChannelModel, PathState
from repro.workload.sessions import SessionSpec, TransactionSpec
from repro.core.records import HttpVersion

MSS = 1500


def channel_transfer(size_bytes, path, seed):
    """One transaction through the channel model; returns its record."""
    model = ChannelModel(random.Random(seed))
    spec = SessionSpec(
        http_version=HttpVersion.HTTP_2,
        target_duration_seconds=1.0,
        is_media_session=False,
        transactions=[TransactionSpec(size_bytes, 0.0, False)],
    )
    sample = model.simulate_session(spec, path, start_time=0.0)
    return sample


class TestTransferTimes:
    @pytest.mark.parametrize(
        "bw,rtt_ms,packets",
        [(2.0, 60.0, 100), (5.0, 40.0, 200), (1.0, 100.0, 60)],
    )
    def test_clean_path_times_agree(self, bw, rtt_ms, packets):
        size = packets * MSS
        netsim = run_transfer(
            [size], bottleneck_mbps=bw, rtt_ms=rtt_ms, delayed_ack=False
        )
        net_time = netsim.records[0].transfer_time

        path = PathState(base_rtt_ms=rtt_ms, bottleneck_mbps=bw)
        chan = channel_transfer(size, path, seed=3)
        chan_time = chan.transactions[0].transfer_time

        # Deterministic clean paths: within 20% of each other.
        assert chan_time == pytest.approx(net_time, rel=0.20)

    def test_lossy_path_times_agree_in_aggregate(self):
        bw, rtt_ms, packets, loss = 3.0, 60.0, 120, 0.02
        size = packets * MSS

        net_times = []
        for seed in range(15):
            result = run_transfer(
                [size],
                bottleneck_mbps=bw,
                rtt_ms=rtt_ms,
                loss_probability=loss,
                delayed_ack=False,
                seed=seed,
                max_duration=120.0,
            )
            net_times.append(result.records[0].transfer_time)

        path = PathState(base_rtt_ms=rtt_ms, bottleneck_mbps=bw, loss_probability=loss)
        chan_times = [
            channel_transfer(size, path, seed).transactions[0].transfer_time
            for seed in range(15)
        ]

        net_mean = sum(net_times) / len(net_times)
        chan_mean = sum(chan_times) / len(chan_times)
        assert chan_mean == pytest.approx(net_mean, rel=0.45)
        # Both tiers slower than the loss-free fluid bound.
        clean = run_transfer(
            [size], bottleneck_mbps=bw, rtt_ms=rtt_ms, delayed_ack=False
        ).records[0].transfer_time
        assert net_mean > clean
        assert chan_mean > clean


class TestHdVerdicts:
    @pytest.mark.parametrize("bw,expected", [(8.0, 1.0), (1.0, 0.0)])
    def test_same_hd_verdict_on_clear_paths(self, bw, expected):
        size = 150 * MSS
        netsim = run_transfer(
            [size], bottleneck_mbps=bw, rtt_ms=50.0, delayed_ack=False
        )
        net_hd = session_goodput(netsim.records, netsim.min_rtt_seconds).hdratio

        path = PathState(base_rtt_ms=50.0, bottleneck_mbps=bw)
        chan = channel_transfer(size, path, seed=5)
        chan_hd = session_goodput(chan.transactions, chan.min_rtt_seconds).hdratio

        assert net_hd == expected
        assert chan_hd == expected

    def test_marginal_path_rates_agree(self):
        """Near the HD boundary both tiers estimate similar delivery rates."""
        from repro.core.goodput import estimate_delivery_rate

        size = 200 * MSS
        bw, rtt_ms = 3.0, 60.0
        netsim = run_transfer(
            [size], bottleneck_mbps=bw, rtt_ms=rtt_ms, delayed_ack=False
        )
        record = netsim.records[0]
        net_rate = estimate_delivery_rate(
            record.measured_bytes,
            record.transfer_time,
            record.cwnd_bytes_at_first_byte,
            netsim.min_rtt_seconds,
        )

        path = PathState(base_rtt_ms=rtt_ms, bottleneck_mbps=bw)
        chan = channel_transfer(size, path, seed=7)
        chan_record = chan.transactions[0]
        chan_rate = estimate_delivery_rate(
            chan_record.measured_bytes,
            chan_record.transfer_time,
            chan_record.cwnd_bytes_at_first_byte,
            chan.min_rtt_seconds,
        )
        assert chan_rate == pytest.approx(net_rate, rel=0.25)
