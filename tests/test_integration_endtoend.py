"""End-to-end integration: packet-level simulator output through the full
analysis pipeline.

The design claim in DESIGN.md is that the two simulation tiers (packet-level
netsim, analytic channel model) feed the *same* measurement/analysis code.
These tests prove it by building SessionSamples directly from simulator
transfers and running them through aggregation, comparison, and the figure
drivers.
"""

import pytest

from repro.core.aggregation import AggregationStore
from repro.core.comparison import opportunity_series
from repro.core.hdratio import session_goodput
from repro.core.records import HttpVersion, SessionSample
from repro.netsim.scenarios import run_transfer
from repro.pipeline.dataset import StudyDataset

from tests.helpers import DEFAULT_GROUP, make_route

MSS = 1500


def simulated_sample(
    session_id,
    end_time,
    rank=0,
    bottleneck_mbps=8.0,
    rtt_ms=50.0,
    loss=0.0,
    seed=1,
):
    """One SessionSample whose transactions come from the packet simulator."""
    transfer = run_transfer(
        [40 * MSS, 40 * MSS],
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        loss_probability=loss,
        seed=seed,
        max_duration=120.0,
    )
    duration = max(transfer.completion_time, 1.0)
    return SessionSample(
        session_id=session_id,
        start_time=end_time - duration,
        end_time=end_time,
        http_version=HttpVersion.HTTP_2,
        min_rtt_seconds=transfer.min_rtt_seconds,
        bytes_sent=transfer.total_bytes,
        busy_time_seconds=min(transfer.completion_time, duration),
        transactions=transfer.records,
        route=make_route(rank=rank),
        pop=DEFAULT_GROUP.pop,
        client_country=DEFAULT_GROUP.country,
        client_continent="EU",
    )


class TestSimulatorThroughPipeline:
    def test_sample_yields_hdratio_via_store(self):
        store = AggregationStore()
        sample = simulated_sample(1, end_time=100.0)
        aggregation = store.add(sample)
        assert aggregation.hdratios == [1.0]
        assert aggregation.minrtt_p50 == pytest.approx(50.0, rel=0.1)

    def test_lossy_path_scores_below_clean_path(self):
        clean = simulated_sample(1, 100.0, bottleneck_mbps=8.0, seed=2)
        lossy = simulated_sample(
            2, 100.0, bottleneck_mbps=2.0, loss=0.05, seed=3
        )
        clean_hd = session_goodput(clean.transactions, clean.min_rtt_seconds)
        lossy_hd = session_goodput(lossy.transactions, lossy.min_rtt_seconds)
        assert clean_hd.hdratio == 1.0
        assert lossy_hd.hdratio is not None and lossy_hd.hdratio < 1.0

    def test_opportunity_detected_on_simulated_routes(self):
        # Preferred route: 70 ms; alternate: 45 ms. Thirty-plus simulated
        # sessions per side in one window.
        store = AggregationStore()
        for index in range(32):
            store.add(
                simulated_sample(
                    index, end_time=10.0 + index, rank=0, rtt_ms=70.0,
                    seed=index,
                )
            )
            store.add(
                simulated_sample(
                    100 + index, end_time=10.0 + index, rank=1, rtt_ms=45.0,
                    seed=100 + index,
                )
            )
        verdicts = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        assert len(verdicts) == 1
        assert verdicts[0].valid
        assert verdicts[0].event_at(5.0)
        assert verdicts[0].difference == pytest.approx(25.0, abs=5.0)

    def test_study_dataset_ingests_simulator_samples(self):
        samples = [
            simulated_sample(index, end_time=50.0 + index, seed=index)
            for index in range(10)
        ]
        dataset = StudyDataset(study_windows=96)
        dataset.ingest(samples)
        assert dataset.session_count == 10
        assert all(row.hdratio == 1.0 for row in dataset.rows)

        from repro.pipeline.experiments import fig6_global_performance

        result = fig6_global_performance(dataset)
        assert result.median_minrtt == pytest.approx(50.0, rel=0.1)
        assert result.hdratio_positive_fraction == 1.0
