"""Tests for the simulated TCP stack."""

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.scenarios import run_transfer
from repro.netsim.tcp import TcpConnection, TcpParams

pytestmark = pytest.mark.netsim

MSS = 1500


def make_connection(
    rtt_ms=60.0,
    bottleneck_mbps=None,
    icw=10,
    delayed_ack=False,
    loss=0.0,
    seed=1,
    queue_packets=1000,
):
    sim = Simulator()
    rng = random.Random(seed)
    one_way = rtt_ms / 2000.0
    data = Link(
        sim,
        rate_bps=None if bottleneck_mbps is None else bottleneck_mbps * 1e6,
        propagation_delay=one_way,
        loss_probability=loss,
        queue_packets=queue_packets,
        rng=rng,
    )
    ack = Link(sim, rate_bps=None, propagation_delay=one_way, rng=rng)
    conn = TcpConnection(
        sim, data, ack, TcpParams(initial_cwnd_packets=icw, delayed_ack=delayed_ack)
    )
    return sim, conn


class TestBasicTransfer:
    def test_single_window_completes_in_one_rtt(self):
        sim, conn = make_connection()
        conn.write(5 * MSS)
        sim.run_until_idle()
        assert conn.all_acked
        assert sim.now == pytest.approx(0.060, abs=1e-6)

    def test_two_round_transfer(self):
        sim, conn = make_connection()
        conn.write(24 * MSS)  # 10 in round 1, 14 in round 2
        sim.run_until_idle()
        assert conn.all_acked
        assert sim.now == pytest.approx(0.120, abs=1e-6)

    def test_slow_start_doubles_window(self):
        sim, conn = make_connection(icw=2)
        conn.write(100 * MSS)  # rounds: 2,4,8,16,32,38 -> 6 RTTs
        sim.run_until_idle()
        assert conn.all_acked
        assert sim.now == pytest.approx(0.360, abs=1e-6)

    def test_cwnd_grows_by_bytes_acked_in_slow_start(self):
        sim, conn = make_connection(icw=10)
        conn.write(30 * MSS)
        sim.run(until=0.090)  # after the first round's ACKs
        assert conn.state.cwnd_bytes >= 20 * MSS

    def test_delivered_bytes_counted(self):
        sim, conn = make_connection()
        conn.write(7 * MSS)
        sim.run_until_idle()
        assert conn.state.delivered_bytes == 7 * MSS

    def test_write_rejects_nonpositive(self):
        _, conn = make_connection()
        with pytest.raises(ValueError):
            conn.write(0)


class TestBottleneck:
    def test_long_transfer_paced_at_bottleneck(self):
        # 300 packets at 2 Mbps: payload-limited duration ~ 1.85 s.
        total = 300 * MSS
        sim, conn = make_connection(bottleneck_mbps=2.0)
        conn.write(total)
        sim.run_until_idle()
        assert conn.all_acked
        wire_time = (total + 300 * 40) * 8 / 2e6
        assert sim.now >= wire_time
        assert sim.now < wire_time * 1.4

    def test_min_rtt_measured(self):
        sim, conn = make_connection(rtt_ms=80.0)
        conn.write(10 * MSS)
        sim.run_until_idle()
        assert conn.min_rtt.at_termination(sim.now) == pytest.approx(0.080, rel=0.05)


class TestLossRecovery:
    def test_transfer_survives_random_loss(self):
        sim, conn = make_connection(loss=0.02, seed=11)
        conn.write(200 * MSS)
        sim.run(until=120.0)
        assert conn.all_acked
        assert conn.state.retransmits > 0

    def test_transfer_survives_heavy_loss(self):
        sim, conn = make_connection(loss=0.15, seed=13)
        conn.write(50 * MSS)
        sim.run(until=300.0)
        assert conn.all_acked

    def test_fast_retransmit_triggers_before_rto(self):
        # Lose exactly one packet mid-window: dup ACKs should recover it
        # without a timeout.
        sim, conn = make_connection(icw=20)
        original_send = conn.data_link.send
        dropped = []

        def lossy_send(packet):
            if packet.seq == 5 * MSS and not packet.retransmission and not dropped:
                dropped.append(packet.seq)
                return
            original_send(packet)

        conn.data_link.send = lossy_send
        conn.write(20 * MSS)
        sim.run(until=30.0)
        assert conn.all_acked
        assert conn.state.fast_retransmits == 1
        assert conn.state.timeouts == 0

    def test_window_reduced_after_loss(self):
        sim, conn = make_connection(icw=20)
        original_send = conn.data_link.send

        def lossy_send(packet):
            if packet.seq == 5 * MSS and not packet.retransmission:
                if not getattr(lossy_send, "done", False):
                    lossy_send.done = True
                    return
            original_send(packet)

        conn.data_link.send = lossy_send
        conn.write(20 * MSS)
        sim.run(until=30.0)
        assert conn.state.cwnd_bytes < 20 * MSS

    def test_rto_recovers_tail_loss(self):
        # Drop the last packet once: no dup ACKs possible, RTO must fire.
        sim, conn = make_connection(icw=10)
        original_send = conn.data_link.send

        def lossy_send(packet):
            if packet.seq == 4 * MSS and not packet.retransmission:
                if not getattr(lossy_send, "done", False):
                    lossy_send.done = True
                    return
            original_send(packet)

        conn.data_link.send = lossy_send
        conn.write(5 * MSS)
        sim.run(until=30.0)
        assert conn.all_acked
        assert conn.state.timeouts >= 1

    def test_bytes_in_flight_never_negative(self):
        sim, conn = make_connection(loss=0.1, seed=17)
        conn.write(100 * MSS)
        sim.run(until=120.0)
        assert conn.state.bytes_in_flight >= 0


class TestDelayedAck:
    def test_delayed_ack_single_packet_waits_for_timeout(self):
        sim, conn = make_connection(delayed_ack=True)
        conn.write(1 * MSS)
        sim.run_until_idle()
        # One packet: ACK held for the 40 ms delayed-ACK timeout.
        assert sim.now == pytest.approx(0.060 + 0.040, abs=1e-6)

    def test_delayed_ack_pairs_acked_immediately(self):
        sim, conn = make_connection(delayed_ack=True)
        conn.write(2 * MSS)
        sim.run_until_idle()
        assert sim.now == pytest.approx(0.060, abs=1e-6)

    def test_delayed_ack_slows_small_transfer_metrics(self):
        with_da = run_transfer([1 * MSS], rtt_ms=60.0, delayed_ack=True)
        without = run_transfer([1 * MSS], rtt_ms=60.0, delayed_ack=False)
        assert with_da.completion_time > without.completion_time


class TestAppLimited:
    def test_idle_connection_does_not_grow_cwnd(self):
        sim, conn = make_connection(icw=10)
        conn.write(1 * MSS)  # tiny write, far below the window
        sim.run_until_idle()
        assert conn.state.cwnd_bytes == 10 * MSS
