"""Differential oracle: the batch engine must equal the row engine exactly.

The row path (`StudyDataset.ingest` and its parallel fold) is the reference
implementation of the §3.2 methodology; the column-batch kernels in
:mod:`repro.kernels` are a from-scratch reimplementation of the same math
over decoded column arrays. This harness asserts the two engines produce
**identical** output — rows, filter accounting, observability counters,
gauges, aggregation contents, figure/report numbers, and run-manifest
accounting — across the full execution matrix:

    {serial, workers=4} x {jsonl trace, columnar store}

on the committed golden trace, plus in-memory sources and the
``compute_naive`` ablation. Everything here is exact equality (``==`` on
floats): the kernels are required to perform the same float operations in
the same order as the row path, not merely approximate it. When one of
these tests fails, ``tests/test_kernels_property.py`` names the kernel.
"""

import pathlib

import pytest

from tests.helpers import make_trace_samples
from repro.obs import RunManifest
from repro.pipeline import (
    ParallelOptions,
    StudyDataset,
    ablation_naive_goodput,
    build_dataset,
    fig1_session_behaviour,
    fig2_transfer_sizes,
    fig3_transaction_counts,
    fig6_global_performance,
    fig7_rtt_vs_hdratio,
    fig8_degradation,
    fig9_opportunity,
    fig10_relationship_comparison,
    read_samples,
    table1_temporal_classes,
    table2_opportunity_relationships,
)
from repro.store import write_store

pytestmark = pytest.mark.kernels

DATA = pathlib.Path(__file__).parent / "data"
TRACE = DATA / "golden_trace.jsonl.gz"
STUDY_WINDOWS = 4

SERIAL = None
WORKERS4 = {"workers": 4, "shards": 4, "executor": "thread"}


@pytest.fixture(scope="module")
def golden_store(tmp_path_factory):
    """The golden trace converted once into a columnar store."""
    store = tmp_path_factory.mktemp("equivalence") / "golden.store"
    write_store(store, read_samples(TRACE))
    return store


def build(source, engine, options=None, **kwargs):
    parallel = ParallelOptions(**options) if options else None
    return build_dataset(
        source,
        study_windows=STUDY_WINDOWS,
        engine=engine,
        options=parallel,
        **kwargs,
    )


def dataset_facts(dataset: StudyDataset, store_source: bool):
    """Everything deterministic a dataset exposes, as one comparable value.

    For store sources the *within*-aggregation raw sample order is not
    pinned (partitions interleave sequence ranges, and the parallel row
    path already merges them piece-wise), so per-aggregation lists are
    compared as sorted multisets there; jsonl and in-memory sources are
    compared with raw order intact. Every derived statistic is an order
    statistic or a sum, so the figure-level comparisons below stay exact
    either way.
    """
    normalize = sorted if store_source else list
    return (
        dataset.rows,
        dataset.filter_stats,
        dataset.metrics.counters,
        dataset.metrics.gauges,
        [key for key, _ in dataset.store.items()],
        dataset.store.windows(),
        sorted(dataset.store.groups(), key=str),
        [
            (
                aggregation.group,
                aggregation.window,
                aggregation.route,
                normalize(aggregation.min_rtts_ms),
                normalize(aggregation.hdratios),
                aggregation.traffic_bytes,
                aggregation.session_count,
            )
            for aggregation in dataset.store.all_aggregations()
        ],
    )


def figure_facts(dataset: StudyDataset):
    """All figure/table driver outputs (dataclasses with exact equality)."""
    return (
        fig1_session_behaviour(dataset),
        fig2_transfer_sizes(dataset),
        fig3_transaction_counts(dataset),
        fig6_global_performance(dataset),
        fig7_rtt_vs_hdratio(dataset),
        fig8_degradation(dataset),
        fig9_opportunity(dataset),
        fig10_relationship_comparison(dataset),
        table1_temporal_classes(dataset),
        table2_opportunity_relationships(dataset),
    )


def manifest_facts(dataset: StudyDataset):
    """The run-manifest view of a dataset: accounting + degradation."""
    manifest = RunManifest.collect("analyze", registry=dataset.metrics)
    return manifest.sample_accounting(), manifest.degraded


def assert_engines_equal(source, options, store_source=False, **kwargs):
    row = build(source, "row", options, **kwargs)
    batch = build(source, "batch", options, **kwargs)
    assert dataset_facts(batch, store_source) == dataset_facts(row, store_source)
    assert figure_facts(batch) == figure_facts(row)
    assert manifest_facts(batch) == manifest_facts(row)


class TestGoldenTraceMatrix:
    """The ISSUE-mandated matrix: {serial, workers=4} x {jsonl, store}."""

    def test_jsonl_serial(self):
        assert_engines_equal(TRACE, SERIAL)

    def test_jsonl_workers4(self):
        assert_engines_equal(TRACE, WORKERS4)

    def test_store_serial(self, golden_store):
        assert_engines_equal(golden_store, SERIAL, store_source=True)

    def test_store_workers4(self, golden_store):
        assert_engines_equal(golden_store, WORKERS4, store_source=True)


class TestCrossSourceConsistency:
    """Batch over a store must also equal row over the original jsonl,
    modulo the store.* read counters that only a store source emits."""

    def test_batch_store_equals_row_jsonl(self, golden_store):
        row = build(TRACE, "row")
        batch = build(golden_store, "batch")
        assert batch.rows == row.rows
        assert batch.filter_stats == row.filter_stats
        row_counters = {
            name: value
            for name, value in row.metrics.counters.items()
            if not name.startswith("store.")
        }
        batch_counters = {
            name: value
            for name, value in batch.metrics.counters.items()
            if not name.startswith("store.")
        }
        assert batch_counters == row_counters
        assert figure_facts(batch) == figure_facts(row)


class TestInMemoryAndModes:
    """In-memory sources, the naive ablation, and dataset-shape knobs."""

    def test_in_memory_serial(self):
        samples = make_trace_samples(400)
        assert_engines_equal(samples, SERIAL)

    def test_in_memory_sharded(self):
        samples = make_trace_samples(400)
        assert_engines_equal(samples, WORKERS4)

    def test_compute_naive_ablation(self):
        samples = make_trace_samples(300)
        row = build(samples, "row", compute_naive=True)
        batch = build(samples, "batch", compute_naive=True)
        assert dataset_facts(batch, False) == dataset_facts(row, False)
        assert ablation_naive_goodput(batch) == ablation_naive_goodput(row)

    def test_without_response_sizes(self):
        samples = make_trace_samples(300)
        assert_engines_equal(samples, SERIAL, keep_response_sizes=False)

    def test_empty_source(self):
        row = build([], "row")
        batch = build([], "batch")
        assert dataset_facts(batch, False) == dataset_facts(row, False)
        assert manifest_facts(batch) == manifest_facts(row)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be 'row' or 'batch'"):
            build_dataset([], study_windows=1, engine="vector")
