"""Tests for text report rendering."""

import math

from repro.pipeline.report import (
    NOT_AVAILABLE,
    format_cdf_checkpoints,
    format_metric,
    format_percent,
    format_table,
)


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.839) == "83.9%"
        assert format_percent(0.0204, digits=2) == "2.04%"
        assert format_percent(1.0) == "100.0%"

    def test_missing_renders_not_available(self):
        assert format_percent(None) == NOT_AVAILABLE
        assert format_percent(float("nan")) == NOT_AVAILABLE


class TestFormatMetric:
    def test_value_with_spec_and_suffix(self):
        assert format_metric(34.56, ".0f", " ms") == "35 ms"
        assert format_metric(0.125, ".3f") == "0.125"

    def test_missing_renders_not_available_without_suffix(self):
        assert format_metric(None, ".0f", " ms") == NOT_AVAILABLE
        assert format_metric(math.nan) == NOT_AVAILABLE


class TestZeroSessionAggregations:
    """Satellite: an empty study renders as n/a instead of raising."""

    def test_empty_fig6_renders(self):
        from repro.pipeline import StudyDataset, fig6_global_performance

        result = fig6_global_performance(StudyDataset(study_windows=4))
        assert result.median_minrtt is None
        assert result.p80_minrtt is None
        assert result.hdratio_positive_fraction is None
        assert result.hdratio_full_fraction == 0.0
        assert format_metric(result.median_minrtt, ".0f", " ms") == NOT_AVAILABLE
        assert format_percent(result.hdratio_positive_fraction) == NOT_AVAILABLE

    def test_empty_cdf_series(self):
        from repro.pipeline.experiments import CdfSeries

        series = CdfSeries.of("empty", [])
        assert len(series) == 0
        assert series.quantile(0.5) is None
        assert series.fraction_at_most(10.0) == 0.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1), ("beta-long", 22)],
            title="Demo:",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo:"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # Columns aligned: 'value' cells start at the same offset.
        assert lines[3].index("1") == lines[4].index("2")

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_cells_coerced_to_str(self):
        text = format_table(("x",), [(3.14159,)])
        assert "3.14159" in text


class TestFormatCheckpoints:
    def test_labels_and_values(self):
        text = format_cdf_checkpoints(
            "Header:", [("short", 0.5), ("a longer label", 123.456)]
        )
        lines = text.splitlines()
        assert lines[0] == "Header:"
        assert "short" in lines[1]
        assert "123.5" in lines[2]

    def test_empty_checkpoints(self):
        assert format_cdf_checkpoints("H:", []) == "H:"
