"""Tests for text report rendering."""

from repro.pipeline.report import format_cdf_checkpoints, format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.839) == "83.9%"
        assert format_percent(0.0204, digits=2) == "2.04%"
        assert format_percent(1.0) == "100.0%"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1), ("beta-long", 22)],
            title="Demo:",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo:"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # Columns aligned: 'value' cells start at the same offset.
        assert lines[3].index("1") == lines[4].index("2")

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_cells_coerced_to_str(self):
        text = format_table(("x",), [(3.14159,)])
        assert "3.14159" in text


class TestFormatCheckpoints:
    def test_labels_and_values(self):
        text = format_cdf_checkpoints(
            "Header:", [("short", 0.5), ("a longer label", 123.456)]
        )
        lines = text.splitlines()
        assert lines[0] == "Header:"
        assert "short" in lines[1]
        assert "123.5" in lines[2]

    def test_empty_checkpoints(self):
        assert format_cdf_checkpoints("H:", []) == "H:"
