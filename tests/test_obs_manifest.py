"""Tests for the run manifest (``repro.obs.manifest``)."""

import json

import pytest

from repro.obs import (
    MANIFEST_FORMAT_VERSION,
    MetricsRegistry,
    RunManifest,
    Tracer,
    activate_tracer,
    span,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("pipeline.samples.read", 100)
    registry.inc("pipeline.samples.kept", 90)
    registry.inc("methodology.transactions.gtestable", 40)
    registry.inc("netsim.runs", 2)
    registry.set_gauge("pipeline.rows", 90)
    registry.observe("stage.cli.snapshot", 1.5)
    return registry


def _populated_tracer(registry=None) -> Tracer:
    tracer = Tracer(metrics=registry)
    with activate_tracer(tracer):
        with span("cli.snapshot"):
            with span("ingest"):
                pass
    return tracer


class TestCollect:
    def test_collect_snapshots_registry_and_tracer(self):
        manifest = RunManifest.collect(
            command="snapshot",
            config={"seed": 42, "rate": 10.0},
            registry=_populated_registry(),
            tracer=_populated_tracer(),
            shard_plan={"workers": 4, "shards": 4, "executor": "process"},
            exit_code=0,
        )
        assert manifest.command == "snapshot"
        assert manifest.counters["pipeline.samples.read"] == 100
        assert manifest.gauges["pipeline.rows"] == 90.0
        assert manifest.timers["stage.cli.snapshot"]["count"] == 1
        assert manifest.stage_names() == ["cli.snapshot", "cli.snapshot.ingest"]
        assert manifest.shard_plan["workers"] == 4
        assert manifest.exit_code == 0
        assert manifest.python_version

    def test_collect_with_nothing_is_empty_but_valid(self):
        manifest = RunManifest.collect(command="sweep")
        assert manifest.counters == {}
        assert manifest.stages == []
        assert manifest.exit_code is None

    def test_sample_accounting_filters_to_data_namespaces(self):
        manifest = RunManifest.collect(
            command="snapshot", registry=_populated_registry()
        )
        accounting = manifest.sample_accounting()
        assert "pipeline.samples.read" in accounting
        assert "methodology.transactions.gtestable" in accounting
        # The event loop's counters are engine stats, not sample accounting.
        assert "netsim.runs" not in accounting


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        manifest = RunManifest.collect(
            command="analyze",
            config={"trace": "t.jsonl", "windows": 96},
            registry=_populated_registry(),
            tracer=_populated_tracer(),
            shard_plan={"workers": 1, "shards": 1, "executor": "process"},
            exit_code=0,
        )
        path = manifest.write(tmp_path / "manifest.json")
        loaded = RunManifest.read(path)
        assert loaded.command == manifest.command
        assert loaded.config == manifest.config
        assert loaded.shard_plan == manifest.shard_plan
        assert loaded.counters == manifest.counters
        assert loaded.gauges == manifest.gauges
        assert loaded.timers == manifest.timers
        assert loaded.stages == manifest.stages
        assert loaded.exit_code == 0
        assert loaded.python_version == manifest.python_version

    def test_written_file_is_plain_json_with_version(self, tmp_path):
        path = RunManifest.collect(command="sweep").write(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == MANIFEST_FORMAT_VERSION
        assert set(payload) == {
            "format_version", "command", "config", "shard_plan", "stages",
            "counters", "gauges", "timers", "exit_code", "python_version",
            "degraded", "streaming", "serving", "dist",
        }

    def test_counters_serialize_sorted(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        path = RunManifest.collect(command="x", registry=registry).write(
            tmp_path / "m.json"
        )
        payload = json.loads(path.read_text())
        assert list(payload["counters"]) == ["a.first", "z.last"]

    def test_unknown_format_version_rejected(self):
        payload = RunManifest.collect(command="sweep").to_dict()
        payload["format_version"] = MANIFEST_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            RunManifest.from_dict(payload)

    def test_missing_format_version_rejected(self):
        with pytest.raises(ValueError, match="format version"):
            RunManifest.from_dict({"command": "sweep"})


class TestServingSection:
    def test_serve_counters_summarize_into_serving(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 5)
        registry.inc("serve.responses.ok", 4)
        registry.inc("serve.responses.client_error", 1)
        registry.inc("serve.cache.hits", 3)
        registry.inc("serve.cache.misses", 1)
        manifest = RunManifest.collect(command="serve", registry=registry)
        assert manifest.serving == {
            "requests": 5,
            "responses_ok": 4,
            "responses_client_error": 1,
            "responses_server_error": 0,
            "cache_hits": 3,
            "cache_misses": 1,
            "cache_evictions": 0,
            "cache_invalidations": 0,
            "quarantined": 0,
        }

    def test_non_serving_run_has_empty_serving_section(self):
        registry = MetricsRegistry()
        registry.inc("pipeline.samples.read", 10)
        manifest = RunManifest.collect(command="analyze", registry=registry)
        assert manifest.serving == {}

    def test_serving_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("serve.requests")
        registry.inc("serve.responses.ok")
        manifest = RunManifest.collect(command="serve", registry=registry)
        path = manifest.write(tmp_path / "m.json")
        assert RunManifest.read(path).serving == manifest.serving


class TestDistSection:
    def test_dist_counters_summarize_into_dist(self):
        registry = MetricsRegistry()
        registry.inc("dist.workers.connected", 2)
        registry.inc("dist.workers.lost", 1)
        registry.inc("dist.tasks.dispatched", 5)
        registry.inc("dist.tasks.completed", 4)
        registry.inc("dist.tasks.reassigned", 1)
        registry.inc("dist.remote_failures", 1)
        registry.inc("dist.bytes.sent", 1000)
        registry.inc("dist.bytes.received", 2000)
        manifest = RunManifest.collect(command="analyze", registry=registry)
        assert manifest.dist == {
            "workers_connected": 2,
            "workers_unreachable": 0,
            "workers_lost": 1,
            "tasks_dispatched": 5,
            "tasks_completed": 4,
            "tasks_reassigned": 1,
            "tasks_stranded": 0,
            "remote_failures": 1,
            "bytes_sent": 1000,
            "bytes_received": 2000,
        }

    def test_single_host_run_has_empty_dist_section(self):
        registry = MetricsRegistry()
        registry.inc("pipeline.samples.read", 10)
        manifest = RunManifest.collect(command="analyze", registry=registry)
        assert manifest.dist == {}

    def test_dist_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("dist.workers.connected", 2)
        registry.inc("dist.tasks.completed", 2)
        manifest = RunManifest.collect(command="analyze", registry=registry)
        path = manifest.write(tmp_path / "m.json")
        assert RunManifest.read(path).dist == manifest.dist
