"""Tests for user-group/window aggregation (§3.3)."""

import pytest

from repro.core.aggregation import AggregationStore, window_index
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.core.records import Relationship, UserGroupKey

from tests.helpers import DEFAULT_GROUP, fill_window, make_route, make_sample


class TestWindowIndex:
    def test_window_boundaries(self):
        assert window_index(0.0) == 0
        assert window_index(AGGREGATION_WINDOW_SECONDS - 0.001) == 0
        assert window_index(AGGREGATION_WINDOW_SECONDS) == 1

    def test_custom_window(self):
        assert window_index(59.0, window_seconds=60.0) == 0
        assert window_index(61.0, window_seconds=60.0) == 1


class TestAggregationStore:
    def test_samples_grouped_by_key(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=1.0)
        store.add(make_sample(20.0, 42.0), hdratio=0.5)
        assert len(store) == 1
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg is not None
        assert agg.session_count == 2
        assert agg.traffic_bytes == 200_000

    def test_different_windows_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0))
        store.add(make_sample(AGGREGATION_WINDOW_SECONDS + 10.0, 40.0))
        assert len(store) == 2
        assert store.windows() == [0, 1]

    def test_different_route_ranks_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0, route=make_route(rank=0)))
        store.add(make_sample(10.0, 50.0, route=make_route(rank=1)))
        assert len(store) == 2
        assert store.route_ranks(DEFAULT_GROUP, 0) == [0, 1]

    def test_different_pops_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0, pop="ams1"))
        store.add(make_sample(10.0, 40.0, pop="sjc1"))
        assert len(store.groups()) == 2

    def test_missing_route_rejected(self):
        store = AggregationStore()
        sample = make_sample(10.0, 40.0)
        sample.route = None
        with pytest.raises(ValueError):
            store.add(sample)

    def test_minrtt_p50(self):
        store = AggregationStore()
        for rtt in (30.0, 40.0, 50.0):
            store.add(make_sample(10.0, rtt), hdratio=None)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.minrtt_p50 == pytest.approx(40.0)

    def test_hdratio_p50_ignores_untestable_sessions(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=None)
        store.add(make_sample(11.0, 40.0), hdratio=0.8)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.hdratio_p50 == pytest.approx(0.8)
        assert agg.session_count == 2
        assert len(agg.hdratios) == 1

    def test_hdratio_p50_none_when_no_testable(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=None)
        assert store.get(DEFAULT_GROUP, 0, 0).hdratio_p50 is None

    def test_streaming_p50_tracks_exact(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=200)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.minrtt_p50_streaming() == pytest.approx(agg.minrtt_p50, abs=0.5)
        assert agg.hdratio_p50_streaming() == pytest.approx(agg.hdratio_p50, abs=0.02)

    def test_group_series_ordering(self):
        store = AggregationStore()
        for window in (3, 1, 2):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, count=5)
        series = store.group_series(DEFAULT_GROUP, route_rank=0)
        assert [agg.window for agg in series] == [1, 2, 3]

    def test_group_windows_filters_rank(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=5, rank=0)
        fill_window(store, window=1, rtt_ms=40.0, hdratio=0.9, count=5, rank=1)
        assert store.group_windows(DEFAULT_GROUP, route_rank=0) == [0]
        assert store.group_windows(DEFAULT_GROUP, route_rank=1) == [1]

    def test_has_min_samples(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=29)
        assert not store.get(DEFAULT_GROUP, 0, 0).has_min_samples
        fill_window(store, window=1, rtt_ms=40.0, hdratio=0.9, count=30)
        assert store.get(DEFAULT_GROUP, 0, 1).has_min_samples

    def test_computes_hdratio_from_transactions_when_present(self):
        from repro.core.records import TransactionRecord

        sample = make_sample(10.0, 60.0)
        # One large fast transaction: tests and achieves HD.
        sample.transactions = [
            TransactionRecord(
                first_byte_time=0.0,
                ack_time=0.12,
                response_bytes=150_000,
                last_packet_bytes=1500,
                cwnd_bytes_at_first_byte=15000,
            )
        ]
        store = AggregationStore()
        agg = store.add(sample)
        assert agg.hdratios == [1.0]


class TestAggregationMerge:
    """Merge contract backing the sharded pipeline (repro.pipeline.parallel)."""

    def test_merge_rejects_key_mismatch(self):
        store = AggregationStore()
        a = store.add(make_sample(10.0, 40.0, route=make_route(rank=0)))
        b = store.add(make_sample(10.0, 50.0, route=make_route(rank=1)))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_concatenates_in_argument_order(self):
        first = AggregationStore()
        second = AggregationStore()
        for rtt in (30.0, 31.0):
            first.add(make_sample(10.0, rtt), hdratio=0.2)
        for rtt in (50.0, 51.0):
            second.add(make_sample(20.0, rtt), hdratio=0.9)
        merged = first.get(DEFAULT_GROUP, 0, 0).merge(second.get(DEFAULT_GROUP, 0, 0))
        assert merged.min_rtts_ms == [30.0, 31.0, 50.0, 51.0]
        assert merged.hdratios == [0.2, 0.2, 0.9, 0.9]

    def test_merge_sums_counters_and_keeps_first_route(self):
        first = AggregationStore()
        second = AggregationStore()
        route_a = make_route(rank=0, as_path=(64500, 1))
        route_b = make_route(rank=0, as_path=(64500, 2))
        first.add(make_sample(10.0, 40.0, route=route_a, bytes_sent=100))
        second.add(make_sample(20.0, 41.0, route=route_b, bytes_sent=250))
        second.add(make_sample(21.0, 42.0, route=route_b, bytes_sent=250))
        merged = first.get(DEFAULT_GROUP, 0, 0).merge(second.get(DEFAULT_GROUP, 0, 0))
        assert merged.session_count == 3
        assert merged.traffic_bytes == 600
        assert merged.route == route_a

    def test_merge_combines_streaming_digests(self):
        first = AggregationStore()
        second = AggregationStore()
        for i in range(40):
            first.add(make_sample(10.0 + i * 0.1, 30.0), hdratio=0.5)
            second.add(make_sample(14.0 + i * 0.1, 50.0), hdratio=0.5)
        merged = first.get(DEFAULT_GROUP, 0, 0).merge(second.get(DEFAULT_GROUP, 0, 0))
        assert 30.0 < merged.minrtt_p50_streaming() < 50.0
        assert merged.minrtt_p50 == pytest.approx(40.0)


class TestStoreMerge:
    def test_put_merges_on_collision(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0))
        other = AggregationStore()
        other.add(make_sample(20.0, 50.0))
        ((key, piece),) = other.items()
        store.put(key, piece)
        merged = store.get(DEFAULT_GROUP, 0, 0)
        assert merged.min_rtts_ms == [40.0, 50.0]
        assert merged.session_count == 2

    def test_merge_store_requires_matching_window_seconds(self):
        store = AggregationStore(window_seconds=900.0)
        other = AggregationStore(window_seconds=60.0)
        with pytest.raises(ValueError):
            store.merge_store(other)

    def test_merge_store_appends_new_keys_in_other_order(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0, route=make_route(rank=0)))
        other = AggregationStore()
        other.add(make_sample(10.0, 45.0, route=make_route(rank=1)))
        other.add(make_sample(10.0, 41.0, route=make_route(rank=0)))
        store.merge_store(other)
        assert [rank for (_, rank, _), _ in store.items()] == [0, 1]
        assert store.get(DEFAULT_GROUP, 0, 0).min_rtts_ms == [40.0, 41.0]
        assert store.get(DEFAULT_GROUP, 1, 0).min_rtts_ms == [45.0]
