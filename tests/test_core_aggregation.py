"""Tests for user-group/window aggregation (§3.3)."""

import pytest

from repro.core.aggregation import AggregationStore, window_index
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.core.records import Relationship, UserGroupKey

from tests.helpers import DEFAULT_GROUP, fill_window, make_route, make_sample


class TestWindowIndex:
    def test_window_boundaries(self):
        assert window_index(0.0) == 0
        assert window_index(AGGREGATION_WINDOW_SECONDS - 0.001) == 0
        assert window_index(AGGREGATION_WINDOW_SECONDS) == 1

    def test_custom_window(self):
        assert window_index(59.0, window_seconds=60.0) == 0
        assert window_index(61.0, window_seconds=60.0) == 1


class TestAggregationStore:
    def test_samples_grouped_by_key(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=1.0)
        store.add(make_sample(20.0, 42.0), hdratio=0.5)
        assert len(store) == 1
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg is not None
        assert agg.session_count == 2
        assert agg.traffic_bytes == 200_000

    def test_different_windows_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0))
        store.add(make_sample(AGGREGATION_WINDOW_SECONDS + 10.0, 40.0))
        assert len(store) == 2
        assert store.windows() == [0, 1]

    def test_different_route_ranks_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0, route=make_route(rank=0)))
        store.add(make_sample(10.0, 50.0, route=make_route(rank=1)))
        assert len(store) == 2
        assert store.route_ranks(DEFAULT_GROUP, 0) == [0, 1]

    def test_different_pops_split(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0, pop="ams1"))
        store.add(make_sample(10.0, 40.0, pop="sjc1"))
        assert len(store.groups()) == 2

    def test_missing_route_rejected(self):
        store = AggregationStore()
        sample = make_sample(10.0, 40.0)
        sample.route = None
        with pytest.raises(ValueError):
            store.add(sample)

    def test_minrtt_p50(self):
        store = AggregationStore()
        for rtt in (30.0, 40.0, 50.0):
            store.add(make_sample(10.0, rtt), hdratio=None)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.minrtt_p50 == pytest.approx(40.0)

    def test_hdratio_p50_ignores_untestable_sessions(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=None)
        store.add(make_sample(11.0, 40.0), hdratio=0.8)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.hdratio_p50 == pytest.approx(0.8)
        assert agg.session_count == 2
        assert len(agg.hdratios) == 1

    def test_hdratio_p50_none_when_no_testable(self):
        store = AggregationStore()
        store.add(make_sample(10.0, 40.0), hdratio=None)
        assert store.get(DEFAULT_GROUP, 0, 0).hdratio_p50 is None

    def test_streaming_p50_tracks_exact(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=200)
        agg = store.get(DEFAULT_GROUP, 0, 0)
        assert agg.minrtt_p50_streaming() == pytest.approx(agg.minrtt_p50, abs=0.5)
        assert agg.hdratio_p50_streaming() == pytest.approx(agg.hdratio_p50, abs=0.02)

    def test_group_series_ordering(self):
        store = AggregationStore()
        for window in (3, 1, 2):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, count=5)
        series = store.group_series(DEFAULT_GROUP, route_rank=0)
        assert [agg.window for agg in series] == [1, 2, 3]

    def test_group_windows_filters_rank(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=5, rank=0)
        fill_window(store, window=1, rtt_ms=40.0, hdratio=0.9, count=5, rank=1)
        assert store.group_windows(DEFAULT_GROUP, route_rank=0) == [0]
        assert store.group_windows(DEFAULT_GROUP, route_rank=1) == [1]

    def test_has_min_samples(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, count=29)
        assert not store.get(DEFAULT_GROUP, 0, 0).has_min_samples
        fill_window(store, window=1, rtt_ms=40.0, hdratio=0.9, count=30)
        assert store.get(DEFAULT_GROUP, 0, 1).has_min_samples

    def test_computes_hdratio_from_transactions_when_present(self):
        from repro.core.records import TransactionRecord

        sample = make_sample(10.0, 60.0)
        # One large fast transaction: tests and achieves HD.
        sample.transactions = [
            TransactionRecord(
                first_byte_time=0.0,
                ack_time=0.12,
                response_bytes=150_000,
                last_packet_bytes=1500,
                cwnd_bytes_at_first_byte=15000,
            )
        ]
        store = AggregationStore()
        agg = store.add(sample)
        assert agg.hdratios == [1.0]
