"""Tests for the §3.2 goodput model: Gtestable, Tmodel(R), delivery rate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import (
    assess_transaction,
    estimate_delivery_rate,
    ideal_round_trips,
    ideal_wstart,
    max_testable_goodput,
    model_transfer_time,
    naive_goodput,
    slow_start_rounds_for_rate,
    window_at_round,
)

MSS = 1500
RTT = 0.060


def mbps(bytes_per_sec):
    return bytes_per_sec * 8 / 1e6


class TestIdealRoundTrips:
    def test_fits_in_initial_window(self):
        assert ideal_round_trips(5 * MSS, 10 * MSS) == 1

    def test_exactly_fills_initial_window(self):
        assert ideal_round_trips(10 * MSS, 10 * MSS) == 1

    def test_one_byte_over_initial_window(self):
        assert ideal_round_trips(10 * MSS + 1, 10 * MSS) == 2

    def test_doubling_schedule(self):
        # Rounds carry W, 2W, 4W ... so 7W fits in 3 rounds, 7W+1 needs 4.
        w = 10 * MSS
        assert ideal_round_trips(7 * w, w) == 3
        assert ideal_round_trips(7 * w + 1, w) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ideal_round_trips(0, MSS)
        with pytest.raises(ValueError):
            ideal_round_trips(MSS, 0)


class TestWindowAtRound:
    def test_first_round_is_wstart(self):
        assert window_at_round(1, 15000) == 15000

    def test_doubles_each_round(self):
        assert window_at_round(3, 15000) == 60000

    def test_rejects_zero_index(self):
        with pytest.raises(ValueError):
            window_at_round(0, 15000)


class TestFigure4:
    """The paper's worked example: 60 ms RTT, icw 10, 1500 B packets."""

    def test_txn1_testable_goodput(self):
        g = max_testable_goodput(2 * MSS, 10 * MSS, RTT)
        assert mbps(g) == pytest.approx(0.4)

    def test_txn2_testable_goodput(self):
        g = max_testable_goodput(24 * MSS, 10 * MSS, RTT)
        assert mbps(g) == pytest.approx(2.8)

    def test_txn2_grows_ideal_window_to_20(self):
        assert ideal_wstart(24 * MSS, 10 * MSS) == 20 * MSS

    def test_txn3_testable_goodput_with_chained_window(self):
        wstart = ideal_wstart(24 * MSS, 10 * MSS)
        g = max_testable_goodput(14 * MSS, wstart, RTT)
        assert mbps(g) == pytest.approx(2.8)

    def test_txn3_with_collapsed_cwnd_still_tests_hd(self):
        # §3.2.2: if real losses collapsed Wnic to 1 packet, the *ideal*
        # chained window must still be used so poor performance is measured
        # rather than excluded.
        assessment = assess_transaction(
            total_bytes=14 * MSS,
            transfer_time_seconds=0.500,  # badly degraded transfer
            wnic_bytes=1 * MSS,
            min_rtt_seconds=RTT,
            prev_ideal_wstart_bytes=20 * MSS,
        )
        assert assessment.can_test
        assert not assessment.achieved

    def test_txn1_cannot_test_hd(self):
        assessment = assess_transaction(
            total_bytes=2 * MSS,
            transfer_time_seconds=RTT,
            wnic_bytes=10 * MSS,
            min_rtt_seconds=RTT,
        )
        assert not assessment.can_test
        assert not assessment.achieved

    def test_txn2_achieves_hd_under_ideal_conditions(self):
        assessment = assess_transaction(
            total_bytes=24 * MSS,
            transfer_time_seconds=2 * RTT,
            wnic_bytes=10 * MSS,
            min_rtt_seconds=RTT,
        )
        assert assessment.can_test
        assert assessment.achieved


class TestSlowStartRounds:
    def test_no_rounds_when_window_covers_bdp(self):
        # 2.5 Mbps * 60 ms = 18750 bytes BDP; a 20-packet window covers it.
        assert slow_start_rounds_for_rate(HD_GOODPUT_BYTES_PER_SEC, 20 * MSS, RTT) == 0

    def test_one_round_when_one_doubling_needed(self):
        assert slow_start_rounds_for_rate(HD_GOODPUT_BYTES_PER_SEC, 10 * MSS, RTT) == 1

    def test_many_rounds_from_cold_window(self):
        n = slow_start_rounds_for_rate(HD_GOODPUT_BYTES_PER_SEC, MSS, RTT)
        assert n == math.ceil(math.log2(18750 / 1500))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            slow_start_rounds_for_rate(0.0, MSS, RTT)


class TestModelTransferTime:
    def test_single_rtt_regime(self):
        # Response fits in Wnic: one round trip plus the payload's
        # transmission time at the bottleneck (paper footnote 5 charges
        # payload transmission even for single-window responses).
        total = 5 * MSS
        t = model_transfer_time(1e9, total, 10 * MSS, RTT)
        assert t == pytest.approx(total / 1e9 + RTT)

    def test_short_response_rate_form(self):
        # n = 0 branch: T = Btotal / R + MinRTT.
        rate = 250_000.0
        total = 10 * MSS
        t = model_transfer_time(rate, total, 20 * MSS, RTT)
        assert t == pytest.approx(total / rate + RTT)

    def test_slow_start_plus_rate_regime(self):
        rate = HD_GOODPUT_BYTES_PER_SEC  # needs 1 doubling from icw 10
        total = 24 * MSS
        expected = 1 * RTT + (total - 10 * MSS) / rate + RTT
        assert model_transfer_time(rate, total, 10 * MSS, RTT) == pytest.approx(expected)

    def test_monotone_nonincreasing_in_rate(self):
        total, wnic = 200 * MSS, 10 * MSS
        times = [
            model_transfer_time(rate, total, wnic, RTT)
            for rate in (1e5, 2e5, 5e5, 1e6, 5e6, 1e8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_floor_is_ideal_slow_start_time(self):
        total, wnic = 100 * MSS, 10 * MSS
        ideal = ideal_round_trips(total, wnic) * RTT
        assert model_transfer_time(1e12, total, wnic, RTT) == pytest.approx(ideal)


class TestEstimateDeliveryRate:
    def test_single_rtt_closed_form(self):
        # 6000 bytes in 108 ms with 60 ms MinRTT: R = 6000 / 48 ms.
        rate = estimate_delivery_rate(6000, 0.108, 15000, RTT)
        assert rate == pytest.approx(6000 / 0.048)

    def test_ideal_transfer_returns_ceiling(self):
        total, wnic = 24 * MSS, 10 * MSS
        ideal = ideal_round_trips(total, wnic) * RTT
        assert estimate_delivery_rate(total, ideal, wnic, RTT) == pytest.approx(125e6)

    def test_round_trip_consistency_with_model(self):
        # The estimated rate R must satisfy Ttotal <= Tmodel(R) and any
        # slightly higher rate must not.
        total, wnic, ttotal = 300 * MSS, 10 * MSS, 1.2
        rate = estimate_delivery_rate(total, ttotal, wnic, RTT)
        assert ttotal <= model_transfer_time(rate, total, wnic, RTT) + 1e-9
        assert ttotal > model_transfer_time(rate * 1.05, total, wnic, RTT) - 1e-9

    def test_slower_transfer_lower_rate(self):
        total, wnic = 300 * MSS, 10 * MSS
        fast = estimate_delivery_rate(total, 0.8, wnic, RTT)
        slow = estimate_delivery_rate(total, 2.0, wnic, RTT)
        assert slow < fast

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            estimate_delivery_rate(MSS, 0.0, MSS, RTT)


class TestNaiveGoodput:
    def test_value(self):
        assert naive_goodput(36000, 0.120) == pytest.approx(300_000.0)

    def test_underestimates_model(self):
        # Same transfer: naive divides by the full wall time including the
        # propagation round trips, so it reports a lower rate.
        total, wnic, ttotal = 24 * MSS, 10 * MSS, 0.150
        model = estimate_delivery_rate(total, ttotal, wnic, RTT)
        assert naive_goodput(total, ttotal) < model


class TestAssessTransaction:
    def test_wstart_takes_max_of_wnic_and_chain(self):
        a = assess_transaction(10 * MSS, RTT, wnic_bytes=30 * MSS,
                               min_rtt_seconds=RTT, prev_ideal_wstart_bytes=20 * MSS)
        assert a.wstart_bytes == 30 * MSS
        b = assess_transaction(10 * MSS, RTT, wnic_bytes=5 * MSS,
                               min_rtt_seconds=RTT, prev_ideal_wstart_bytes=20 * MSS)
        assert b.wstart_bytes == 20 * MSS

    def test_next_wstart_chains_ideal_growth(self):
        a = assess_transaction(24 * MSS, 2 * RTT, wnic_bytes=10 * MSS,
                               min_rtt_seconds=RTT)
        assert a.next_wstart_bytes == 20 * MSS

    def test_model_time_present_only_when_testable(self):
        small = assess_transaction(2 * MSS, RTT, 10 * MSS, RTT)
        assert small.model_time_seconds is None
        large = assess_transaction(100 * MSS, 0.5, 10 * MSS, RTT)
        assert large.model_time_seconds is not None


# --------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------- #
sizes = st.integers(min_value=1, max_value=2_000_000)
windows = st.integers(min_value=MSS, max_value=100 * MSS)
rtts = st.floats(min_value=0.005, max_value=0.500)


@settings(max_examples=200, deadline=None)
@given(sizes, windows, rtts)
def test_testable_goodput_bounded_by_total_bytes_per_rtt(total, wstart, rtt):
    g = max_testable_goodput(total, wstart, rtt)
    assert 0 < g <= total / rtt + 1e-9


@settings(max_examples=200, deadline=None)
@given(sizes, windows, rtts)
def test_testable_goodput_monotone_in_wstart(total, wstart, rtt):
    g1 = max_testable_goodput(total, wstart, rtt)
    g2 = max_testable_goodput(total, wstart * 2, rtt)
    assert g2 >= g1 - 1e-9


@settings(max_examples=200, deadline=None)
@given(sizes, windows)
def test_round_trips_cover_bytes(total, wstart):
    m = ideal_round_trips(total, wstart)
    capacity = wstart * ((2 ** m) - 1)
    assert capacity >= total
    if m > 1:
        assert wstart * ((2 ** (m - 1)) - 1) < total


@settings(max_examples=200, deadline=None)
@given(sizes, windows, rtts, st.floats(min_value=1e4, max_value=1e7))
def test_model_time_at_least_slow_start_floor(total, wnic, rtt, rate):
    t = model_transfer_time(rate, total, wnic, rtt)
    assert t >= rtt - 1e-12  # at minimum one round trip
    # And never faster than pure transmission plus one ack round trip.
    assert t >= total / max(rate, 1e12) + rtt - 1e-9


@settings(max_examples=150, deadline=None)
@given(sizes, windows, rtts, st.floats(min_value=1.2, max_value=20.0))
def test_estimated_rate_consistent_with_model(total, wnic, rtt, slowdown):
    m = ideal_round_trips(total, wnic)
    ttotal = m * rtt * slowdown
    rate = estimate_delivery_rate(total, ttotal, wnic, rtt)
    if rate > 0 and rate < 125e6:
        assert ttotal <= model_transfer_time(rate, total, wnic, rtt) + 1e-6


@settings(max_examples=150, deadline=None)
@given(sizes, windows)
def test_ideal_wstart_matches_final_round_window(total, wstart):
    nxt = ideal_wstart(total, wstart)
    m = ideal_round_trips(total, wstart)
    assert nxt == wstart * (2 ** (m - 1))
