"""Observability through the pipeline: the counter-equality invariant.

Counters and gauges are *data facts*: running the same input through any
shard plan (any executor, any shard count, in-memory or file-backed) must
produce byte-identical counters and gauges to the serial pass. This
mirrors the state-equality matrix in ``tests/test_pipeline_parallel.py``
at the metrics layer. Timings (``timers``, ``shard_report``) are execution
facts and are only checked for shape.
"""

import json

import pytest

from repro.core.hdratio import session_goodput
from repro.obs import MetricsRegistry, activate_metrics, active_metrics
from repro.pipeline import ParallelOptions, StudyDataset, build_dataset
from repro.pipeline.io import read_samples, write_samples
from repro.pipeline.parallel import LOCAL_EXECUTORS

from tests.helpers import make_trace_samples

STUDY_WINDOWS = 8


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(600, seed=11, windows=STUDY_WINDOWS)


@pytest.fixture(scope="module")
def serial_dataset(samples):
    return build_dataset(iter(samples), study_windows=STUDY_WINDOWS)


@pytest.fixture(scope="module")
def trace_paths(samples, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-traces")
    plain = root / "trace.jsonl"
    gz = root / "trace.jsonl.gz"
    write_samples(plain, samples)
    write_samples(gz, samples)
    return {"plain": plain, "gz": gz}


def canonical_counters(dataset: StudyDataset) -> str:
    """Byte-comparable serialization of the dataset's data facts."""
    return json.dumps(
        {"counters": dataset.metrics.counters, "gauges": dataset.metrics.gauges},
        sort_keys=True,
    )


def assert_counters_equal(parallel: StudyDataset, serial: StudyDataset) -> None:
    assert canonical_counters(parallel) == canonical_counters(serial)


# --------------------------------------------------------------------- #
# Counter equality across shard plans
# --------------------------------------------------------------------- #
class TestInMemoryCounterEquality:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_serial_executor(self, samples, serial_dataset, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=shards, executor="serial"),
        )
        assert_counters_equal(dataset, serial_dataset)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_thread_executor(self, samples, serial_dataset, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=4, shards=shards, executor="thread"),
        )
        assert_counters_equal(dataset, serial_dataset)

    def test_process_executor(self, samples, serial_dataset):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=4, executor="process"),
        )
        assert_counters_equal(dataset, serial_dataset)

    @pytest.mark.slow
    @pytest.mark.parametrize("executor", LOCAL_EXECUTORS)
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_full_matrix(self, samples, serial_dataset, executor, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=4, shards=shards, executor=executor),
        )
        assert_counters_equal(dataset, serial_dataset)


class TestFileCounterEquality:
    @pytest.mark.parametrize("kind,shards", [("plain", 1), ("plain", 3), ("gz", 2)])
    def test_chunked_serial(self, trace_paths, serial_dataset, kind, shards):
        dataset = build_dataset(
            trace_paths[kind],
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=shards, executor="serial"),
        )
        # File-backed runs additionally count io.rows_read, which an
        # in-memory serial baseline cannot have; compare against the
        # serial *file* read instead.
        baseline = build_dataset(trace_paths[kind], study_windows=STUDY_WINDOWS)
        assert_counters_equal(dataset, baseline)
        assert dataset.metrics.counter("io.rows_read") == len(
            make_trace_samples(600, seed=11, windows=STUDY_WINDOWS)
        )

    def test_chunked_process(self, trace_paths, serial_dataset):
        dataset = build_dataset(
            trace_paths["plain"],
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=3, executor="process"),
        )
        baseline = build_dataset(trace_paths["plain"], study_windows=STUDY_WINDOWS)
        assert_counters_equal(dataset, baseline)

    def test_file_and_memory_agree_on_everything_but_io(
        self, trace_paths, serial_dataset
    ):
        file_dataset = build_dataset(trace_paths["plain"], study_windows=STUDY_WINDOWS)
        file_counters = dict(file_dataset.metrics.counters)
        io_counters = {
            name: file_counters.pop(name)
            for name in list(file_counters)
            if name.startswith("io.")
        }
        assert io_counters == {"io.rows_read": 600}
        assert file_counters == serial_dataset.metrics.counters


# --------------------------------------------------------------------- #
# The counters mean what they claim
# --------------------------------------------------------------------- #
class TestCounterSemantics:
    def test_sample_funnel_adds_up(self, samples, serial_dataset):
        counters = serial_dataset.metrics.counters
        assert counters["pipeline.samples.read"] == len(samples)
        assert (
            counters["pipeline.samples.read"]
            == counters["pipeline.samples.kept"]
            + counters["pipeline.samples.dropped_hosting"]
        )
        assert counters["pipeline.samples.kept"] == len(serial_dataset.rows)

    def test_methodology_funnel_matches_independent_recompute(
        self, samples, serial_dataset
    ):
        """§3.2 classifier counts: recompute the raw → coalesced →
        eligible → tested → achieved funnel per session and compare."""
        expected = {
            "raw": 0, "coalesced": 0, "inflight_dropped": 0,
            "gtestable": 0, "achieved": 0, "hd_testable": 0,
        }
        kept = {id(row) for row in serial_dataset.rows}
        filter_probe = StudyDataset(study_windows=STUDY_WINDOWS)
        for sample in samples:
            if not filter_probe.ingest_one(sample):
                continue
            if not sample.transactions:
                continue
            summary = session_goodput(sample.transactions, sample.min_rtt_seconds)
            expected["raw"] += summary.raw_count
            expected["coalesced"] += summary.merged_away
            expected["inflight_dropped"] += summary.inflight_dropped
            expected["gtestable"] += summary.tested
            expected["achieved"] += summary.achieved
            expected["hd_testable"] += 1 if summary.tested else 0
        counters = serial_dataset.metrics.counters
        assert counters["methodology.transactions.raw"] == expected["raw"]
        assert counters["methodology.transactions.coalesced"] == expected["coalesced"]
        assert (
            counters["methodology.transactions.inflight_dropped"]
            == expected["inflight_dropped"]
        )
        assert counters["methodology.transactions.gtestable"] == expected["gtestable"]
        assert counters["methodology.transactions.achieved"] == expected["achieved"]
        assert counters["methodology.sessions.hd_testable"] == expected["hd_testable"]
        # The funnel is monotone.
        assert (
            counters["methodology.transactions.raw"]
            >= counters["methodology.transactions.gtestable"]
            >= counters["methodology.transactions.achieved"]
        )

    def test_aggregation_counters(self, serial_dataset):
        counters = serial_dataset.metrics.counters
        assert counters["core.aggregation.samples"] == len(serial_dataset.rows)
        assert (
            counters["core.aggregation.hd_samples"]
            == counters["methodology.sessions.hd_testable"]
        )

    def test_shape_gauges(self, serial_dataset):
        gauges = serial_dataset.metrics.gauges
        assert gauges["pipeline.rows"] == len(serial_dataset.rows)
        assert gauges["pipeline.aggregations"] == len(serial_dataset.store)
        assert gauges["pipeline.groups"] == len(serial_dataset.store.groups())

    def test_io_rows_read_counts_gz_identically(self, trace_paths):
        for kind in ("plain", "gz"):
            registry = MetricsRegistry()
            rows = list(read_samples(trace_paths[kind], metrics=registry))
            assert registry.counter("io.rows_read") == len(rows) == 600

    def test_io_decode_error_counted_before_raise(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{this is not json\n")
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid JSON"):
            list(read_samples(bad, metrics=registry))
        assert registry.counter("io.decode_errors") == 1
        assert registry.counter("io.rows_read") == 0


# --------------------------------------------------------------------- #
# Execution facts & plumbing
# --------------------------------------------------------------------- #
class TestExecutionFacts:
    def test_shard_report_shape(self, samples):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=4, executor="serial"),
        )
        assert len(dataset.shard_report) == 4
        assert sum(entry["samples"] for entry in dataset.shard_report) == len(samples)
        for entry in dataset.shard_report:
            assert set(entry) == {"ordinal", "samples", "rows_kept", "wall_seconds"}
            assert entry["wall_seconds"] >= 0.0
        stat = dataset.metrics.timer_stat("pipeline.shard_wall_seconds")
        assert stat.count == 4

    def test_serial_run_has_no_shard_report(self, serial_dataset):
        assert serial_dataset.shard_report == []

    def test_build_dataset_merges_into_active_registry(self, samples):
        cli_registry = MetricsRegistry()
        with activate_metrics(cli_registry):
            dataset = build_dataset(iter(samples), study_windows=STUDY_WINDOWS)
        assert cli_registry.counters == dataset.metrics.counters
        assert cli_registry.gauges == dataset.metrics.gauges

    def test_dataset_registry_is_fresh_not_the_active_one(self):
        cli_registry = MetricsRegistry()
        with activate_metrics(cli_registry):
            dataset = StudyDataset(study_windows=4)
            assert dataset.metrics is not cli_registry
            assert active_metrics() is cli_registry


# --------------------------------------------------------------------- #
# Netsim event-loop stats
# --------------------------------------------------------------------- #
class TestNetsimMetrics:
    def test_simulator_publishes_into_active_registry(self):
        from repro.netsim.engine import Simulator

        registry = MetricsRegistry()
        with activate_metrics(registry):
            sim = Simulator()
            handle = sim.schedule(0.5, lambda: None)
            handle.cancel()
            sim.schedule(1.0, lambda: None)
            sim.run_until_idle()
        assert registry.counter("netsim.events_processed") == 1
        assert registry.counter("netsim.events_cancelled") == 1
        assert registry.counter("netsim.runs") == 1
        assert registry.gauge("netsim.sim_time_seconds") == 1.0

    def test_simulator_is_silent_without_activation(self):
        from repro.netsim.engine import Simulator

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()  # must not raise
        assert sim.events_processed == 1
        assert sim.events_cancelled == 0
