"""Tests for packet trace capture and rendering."""

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.tcp import TcpConnection, TcpParams
from repro.netsim.trace import PacketTrace

pytestmark = pytest.mark.netsim

MSS = 1500


def traced_transfer(nbytes, loss=0.0, seed=1, delayed_ack=False):
    sim = Simulator()
    rng = random.Random(seed)
    data = Link(sim, rate_bps=None, propagation_delay=0.030,
                loss_probability=loss, rng=rng)
    ack = Link(sim, rate_bps=None, propagation_delay=0.030, rng=rng)
    trace = PacketTrace(data, ack)
    conn = TcpConnection(
        sim, data, ack, TcpParams(delayed_ack=delayed_ack)
    )
    conn.write(nbytes)
    sim.run(until=60.0)
    return conn, trace


class TestCapture:
    def test_counts_match_transfer(self):
        conn, trace = traced_transfer(5 * MSS)
        assert conn.all_acked
        assert trace.data_packets_sent == 5
        assert trace.acks_sent == 5  # no delayed acks
        assert trace.drops == 0

    def test_delayed_acks_fewer_ack_events(self):
        _, undelayed = traced_transfer(10 * MSS, delayed_ack=False)
        _, delayed = traced_transfer(10 * MSS, delayed_ack=True)
        assert delayed.acks_sent < undelayed.acks_sent

    def test_losses_recorded(self):
        conn, trace = traced_transfer(60 * MSS, loss=0.15, seed=5)
        assert trace.drops > 0
        retransmissions = [
            e for e in trace.events
            if e.direction == "data" and e.kind == "send" and e.retransmission
        ]
        assert retransmissions

    def test_events_time_ordered(self):
        _, trace = traced_transfer(24 * MSS)
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_round_trip_estimate(self):
        _, trace = traced_transfer(24 * MSS)  # icw 10 => 2 rounds
        assert trace.round_trips() == 2


class TestRender:
    def test_render_contains_rails_and_summary(self):
        _, trace = traced_transfer(3 * MSS)
        text = trace.render()
        assert "server" in text and "client" in text
        assert "data 0..1500" in text
        assert "ack" in text
        assert "[3 data packets" in text

    def test_render_truncates(self):
        _, trace = traced_transfer(100 * MSS)
        text = trace.render(max_events=10)
        assert "more events" in text

    def test_render_marks_retransmissions(self):
        _, trace = traced_transfer(60 * MSS, loss=0.15, seed=5)
        text = trace.render(max_events=10_000)
        assert "(rtx)" in text
        assert "drop-loss" in text or "✕" in text
