"""Concurrent serving: many clients, live appends, exact accounting.

Three properties a serving layer must hold under fire, each pinned here
over a real socket (``ThreadingHTTPServer``, one engine):

1. **No torn responses.** Every body a client reads parses as JSON, names
   a store generation that actually existed, and carries exactly the
   session count a cold rebuild of that generation produces — even while
   ``append_to_store`` lands new windows mid-flight.
2. **No cross-request state bleed.** Each response echoes the filters of
   the request it answers, and identical queries yield byte-identical
   bodies no matter which thread asked or what ran in between.
3. **Exact counters.** ``serve.*`` totals equal the sum of per-client
   tallies — no lost updates under concurrency (the engine serializes
   request handling, which this suite would catch regressing).
"""

import http.client
import json
import threading

import pytest

from repro.serve import QueryEngine, make_server, render_payload
from repro.store import write_store
from repro.store.writer import append_to_store

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.serve

CLIENTS = 8
REQUESTS_PER_CLIENT = 12

#: A repeated-key mix: a few hot queries plus per-thread variety.
QUERY_MIX = [
    "/v1/quantiles",
    "/v1/quantiles?pop=ams1",
    "/v1/quantiles?country=NL&country=BR",
    "/v1/degradation",
    "/v1/degradation?metric=hdratio",
    "/v1/routing",
    "/v1/health",
]


def _fetch(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _run_clients(host, port, paths_for_client):
    """Run one thread per client; returns each client's (path, status, body)
    records plus any transport errors."""
    results = [[] for _ in range(len(paths_for_client))]
    errors = []

    def client(index, paths):
        try:
            for path in paths:
                status, body = _fetch(host, port, path)
                results[index].append((path, status, body))
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append((index, repr(error)))

    threads = [
        threading.Thread(target=client, args=(index, paths))
        for index, paths in enumerate(paths_for_client)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


@pytest.fixture()
def served_store(tmp_path):
    path = tmp_path / "served.store"
    write_store(path, make_trace_samples(500, seed=7, windows=8))
    server = make_server(path, port=0, cache_capacity=16)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield path, server, host, port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestConcurrentClients:
    def test_threaded_responses_byte_identical_and_counters_exact(
        self, served_store
    ):
        _, server, host, port = served_store
        paths_for_client = [
            [
                QUERY_MIX[(client + step) % len(QUERY_MIX)]
                for step in range(REQUESTS_PER_CLIENT)
            ]
            for client in range(CLIENTS)
        ]
        results, errors = _run_clients(host, port, paths_for_client)
        assert errors == []

        # Identical queries -> byte-identical bodies, regardless of thread
        # or ordering. /v1/health reports live counters, so only its
        # stable core is compared.
        by_path = {}
        for records in results:
            for path, status, body in records:
                assert status == 200, (path, body)
                if path == "/v1/health":
                    payload = json.loads(body)
                    body = render_payload(
                        {
                            "status": payload["status"],
                            "generation": payload["generation"],
                            "quarantine": payload["quarantine"],
                        }
                    )
                by_path.setdefault(path, set()).add(body)
        assert {path: len(bodies) for path, bodies in by_path.items()} == {
            path: 1 for path in by_path
        }

        # Counter exactness: the engine's totals are the sum of what the
        # clients actually did.
        total = CLIENTS * REQUESTS_PER_CLIENT
        engine = server.engine
        assert engine.metrics.counter("serve.requests") == total
        assert engine.metrics.counter("serve.responses.ok") == total
        assert engine.metrics.counter("serve.responses.client_error") == 0
        assert engine.metrics.counter("serve.responses.server_error") == 0
        data_requests = sum(
            1
            for records in results
            for path, _, _ in records
            if path != "/v1/health"
        )
        assert engine.cache.hits + engine.cache.misses == data_requests
        # The mix repeats 6 data queries across 96 requests: almost all
        # warm. Distinct (profile-normalized) keys bound the misses.
        assert engine.cache.misses <= 6
        assert engine.cache.hits == data_requests - engine.cache.misses

    def test_threaded_bytes_match_serial_engine(self, served_store):
        """The acceptance bar: serial and threaded serve identical bytes."""
        path, _, host, port = served_store
        from urllib.parse import parse_qs, urlsplit

        serial = QueryEngine(path, cache_capacity=16)
        data_paths = [p for p in QUERY_MIX if p != "/v1/health"]
        results, errors = _run_clients(
            host, port, [data_paths for _ in range(4)]
        )
        assert errors == []
        for records in results:
            for query, status, body in records:
                split = urlsplit(query)
                _, expected = serial.handle(
                    split.path, parse_qs(split.query, keep_blank_values=True)
                )
                assert status == 200
                assert body == render_payload(expected), query

    def test_filter_echo_never_bleeds_across_requests(self, served_store):
        _, _, host, port = served_store
        filters = ["ams1", "sjc1", "gru1", "none1"]
        paths_for_client = [
            [f"/v1/quantiles?pop={pop}" for _ in range(REQUESTS_PER_CLIENT)]
            for pop in filters
        ]
        results, errors = _run_clients(host, port, paths_for_client)
        assert errors == []
        for client_index, records in enumerate(results):
            expected_pop = filters[client_index]
            for _, status, body in records:
                assert status == 200
                payload = json.loads(body)
                assert payload["filters"]["pops"] == [expected_pop]


class TestConcurrentAppends:
    def test_no_torn_responses_while_ingest_appends(self, served_store):
        store, server, host, port = served_store

        # Generation -> expected unfiltered session count, observed by a
        # cold engine. Seeded with the initial store; extended after every
        # append below (appends happen between snapshots, so the set of
        # generations that ever existed is exactly this dict's keys).
        def snapshot():
            _, payload = QueryEngine(store).handle("/v1/quantiles", {})
            expected[json.dumps(payload["generation"], sort_keys=True)] = (
                payload["sessions"]
            )

        expected = {}
        snapshot()

        stop = threading.Event()
        records, errors = [], []

        def hammer():
            try:
                while not stop.is_set():
                    status, body = _fetch(host, port, "/v1/quantiles")
                    records.append((status, body))
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for append_round in range(3):
                append_to_store(
                    store,
                    make_trace_samples(120, seed=100 + append_round, windows=8),
                )
                snapshot()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert errors == []
        assert records, "clients made no requests"

        torn = []
        for status, body in records:
            assert status == 200
            payload = json.loads(body)  # parses -> not byte-torn
            key = json.dumps(payload["generation"], sort_keys=True)
            if key not in expected or payload["sessions"] != expected[key]:
                torn.append(payload)
        assert torn == []

        # The appends flushed the cache: at least one invalidation per
        # append that was observed by a subsequent query.
        engine = server.engine
        assert engine.cache.invalidations >= 1
        assert engine.metrics.counter("serve.responses.server_error") == 0
