"""Unit tests for EdgeScenario.path_state — the point where geography,
route condition, events, and access draws combine."""

import pytest

from repro.workload.events import ContinuousImpairment
from repro.workload.scenario import EdgeScenario, ROUTE_BASE_MBPS, ScenarioConfig

QUIET = ScenarioConfig(
    seed=21,
    days=1,
    base_sessions_per_window=1.0,
    diurnal_fraction=0.0,
    episodic_fraction=0.0,
    continuous_fraction=0.0,
    route_episodic_fraction=0.0,
    mispreferred_fraction=0.0,
)


@pytest.fixture(scope="module")
def scenario():
    return EdgeScenario(QUIET)


def mean_path(scenario, state, rank=0, window=0, draws=200, **kwargs):
    rtts, bottlenecks, losses = [], [], []
    route = state.ranked.routes[rank]
    for _ in range(draws):
        path = scenario.path_state(state, route, rank, window, **kwargs)
        rtts.append(path.base_rtt_ms)
        bottlenecks.append(path.bottleneck_mbps)
        losses.append(path.loss_probability)
    n = len(rtts)
    return sum(rtts) / n, sum(bottlenecks) / n, sum(losses) / n


class TestBaseline:
    def test_rtt_floor_is_geography(self, scenario):
        state = scenario.networks[0]
        rtt, _, _ = mean_path(scenario, state)
        # base propagation + last mile: can never be below the propagation.
        assert rtt > state.base_rtt_ms

    def test_route_penalty_applied(self, scenario):
        state = next(
            s for s in scenario.networks
            if len(s.ranked.routes) >= 2
            and s.ranked.routes[1].condition.rtt_penalty_ms
            > s.ranked.routes[0].condition.rtt_penalty_ms + 2.0
        )
        rtt0, _, _ = mean_path(scenario, state, rank=0)
        rtt1, _, _ = mean_path(scenario, state, rank=1)
        assert rtt1 > rtt0

    def test_bottleneck_capped_by_route_capacity(self, scenario):
        state = scenario.networks[0]
        _, bottleneck, _ = mean_path(scenario, state)
        route = state.ranked.preferred
        assert bottleneck <= ROUTE_BASE_MBPS * route.condition.congestion_capacity


class TestEvents:
    def test_continuous_impairment_shifts_everything(self, scenario):
        state = scenario.networks[1]
        base_rtt, base_bw, base_loss = mean_path(scenario, state)
        state.dest_events = [
            ContinuousImpairment(queue_ms=25.0, loss=0.05, capacity_factor=0.02)
        ]
        try:
            rtt, bw, loss = mean_path(scenario, state)
        finally:
            state.dest_events = []
        assert rtt > base_rtt + 15.0
        assert loss > base_loss + 0.03
        assert bw < base_bw

    def test_route_specific_event_hits_one_rank(self, scenario):
        state = next(s for s in scenario.networks if len(s.ranked.routes) >= 2)
        state.route_events = {
            1: [ContinuousImpairment(queue_ms=30.0, loss=0.05, capacity_factor=0.5)]
        }
        try:
            rtt0, _, loss0 = mean_path(scenario, state, rank=0)
            rtt1, _, loss1 = mean_path(scenario, state, rank=1)
        finally:
            state.route_events = {}
        assert loss1 > loss0 + 0.02
        assert rtt1 > rtt0 + 15.0


class TestOverrides:
    def test_base_rtt_override(self, scenario):
        state = scenario.networks[0]
        route = state.ranked.preferred
        path = scenario.path_state(
            state, route, 0, 0, base_rtt_override=140.0
        )
        assert path.base_rtt_ms >= 140.0

    def test_dominant_class_narrows_last_mile_spread(self, scenario):
        # With dominant-class sampling, most draws share a technology, so
        # RTT draws cluster: interquartile spread far below the full-mix
        # worst case (weak mobile tail at hundreds of ms).
        state = scenario.networks[0]
        route = state.ranked.preferred
        rtts = sorted(
            scenario.path_state(state, route, 0, 0).base_rtt_ms
            for _ in range(300)
        )
        iqr = rtts[224] - rtts[74]
        assert iqr < 80.0
