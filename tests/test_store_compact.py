"""Store compaction (``repro.store.compact``): exactness and crash safety.

The contract under test (DESIGN.md §13): compacting a store that a
long-running stream fragmented into many small partitions must (a) leave
the full ``(seq, sample)`` scan stream — and therefore every derived
analysis — byte-identical, (b) CRC re-verify the rewritten bytes *from
disk* before the manifest swap publishes them, (c) never leave the store
unreadable whatever point it dies at (generation data file + manifest
written last, atomically), and (d) keep the store appendable afterwards.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, activate_metrics
from repro.pipeline import build_dataset
from repro.store import (
    CorruptBlockError,
    TraceStoreReader,
    append_to_store,
    compact_store,
    verify_store,
    write_store,
)
from repro.store.compact import _next_generation_name

from tests.helpers import make_trace_samples

STUDY_WINDOWS = 8
APPENDS = 11
CHUNK = 50


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(
        (APPENDS + 1) * CHUNK, seed=59, windows=STUDY_WINDOWS
    )


@pytest.fixture()
def streamed_store(samples, tmp_path):
    """A store fragmented the way streaming ingest leaves it: one initial
    write plus many small appends, each sealing its own partitions."""
    path = tmp_path / "streamed.store"
    write_store(path, samples[:CHUNK], band_windows=1)
    for index in range(1, APPENDS + 1):
        append_to_store(
            path,
            samples[index * CHUNK : (index + 1) * CHUNK],
            band_windows=1,
        )
    return path


#: The data-fact counter namespaces (RunManifest.sample_accounting).
#: ``store.*`` read counters are execution facts — fewer partitions mean
#: fewer blocks verified and bytes read, which is the point of compacting.
_DATA_PREFIXES = ("pipeline.", "methodology.", "core.", "io.")


def _dataset_facts(store_path):
    dataset = build_dataset(store_path, study_windows=STUDY_WINDOWS)
    return (
        dataset.rows,
        [key for key, _ in dataset.store.items()],
        {
            name: value
            for name, value in dataset.metrics.counters.items()
            if name.startswith(_DATA_PREFIXES)
        },
        dataset.metrics.gauges,
    )


class TestCompaction:
    def test_partitions_collapse_to_one_per_band(self, streamed_store):
        before = len(TraceStoreReader(streamed_store).partitions)
        report = compact_store(streamed_store)
        after = TraceStoreReader(streamed_store)
        assert not report.skipped
        assert report.partitions_before == before
        assert report.partitions_after == len(after.partitions) < before
        # One partition per (PoP, band) key, like a single writer pass.
        keys = [(p["pop"], p["band"]) for p in after.partitions]
        assert len(keys) == len(set(keys))

    def test_scan_stream_is_byte_identical(self, streamed_store):
        before = list(TraceStoreReader(streamed_store).scan_pairs())
        compact_store(streamed_store)
        assert list(TraceStoreReader(streamed_store).scan_pairs()) == before

    def test_analysis_is_byte_identical(self, streamed_store):
        before = _dataset_facts(streamed_store)
        compact_store(streamed_store)
        assert _dataset_facts(streamed_store) == before

    def test_store_verifies_clean_after_compaction(self, streamed_store):
        compact_store(streamed_store)
        report = verify_store(streamed_store)
        assert report.ok

    def test_new_generation_file_replaces_old(self, streamed_store):
        assert (streamed_store / "data.bin").exists()
        report = compact_store(streamed_store)
        assert report.data_file == "data-g1.bin"
        assert (streamed_store / "data-g1.bin").exists()
        assert not (streamed_store / "data.bin").exists()
        manifest = json.loads((streamed_store / "manifest.json").read_text())
        assert manifest["data_file"] == "data-g1.bin"

    def test_append_still_works_after_compaction(
        self, streamed_store, samples
    ):
        compact_store(streamed_store)
        extra = make_trace_samples(40, seed=61, windows=STUDY_WINDOWS)
        append_to_store(streamed_store, extra, band_windows=1)
        scanned = [
            sample
            for _, sample in TraceStoreReader(streamed_store).scan_pairs()
        ]
        assert scanned == samples + extra
        # The append lands in the live generation file, not a new one.
        manifest = json.loads((streamed_store / "manifest.json").read_text())
        assert manifest["data_file"] == "data-g1.bin"

    def test_already_compact_store_is_skipped(self, streamed_store):
        compact_store(streamed_store)
        manifest_bytes = (streamed_store / "manifest.json").read_bytes()
        report = compact_store(streamed_store)
        assert report.skipped
        assert report.partitions_before == report.partitions_after
        # Skipping rewrites nothing: the manifest is untouched.
        assert (streamed_store / "manifest.json").read_bytes() == manifest_bytes

    def test_rebanding_widens_partitions(self, streamed_store):
        first = compact_store(streamed_store)
        rebanded = compact_store(streamed_store, band_windows=8)
        assert not rebanded.skipped
        assert rebanded.partitions_after < first.partitions_after
        assert rebanded.data_file == "data-g2.bin"
        scanned = TraceStoreReader(streamed_store)
        assert scanned.manifest["band_windows"] == 8
        assert verify_store(streamed_store).ok

    def test_band_windows_validated(self, streamed_store):
        with pytest.raises(ValueError, match="band_windows"):
            compact_store(streamed_store, band_windows=0)

    def test_generation_names_advance(self):
        assert _next_generation_name("data.bin") == "data-g1.bin"
        assert _next_generation_name("data-g1.bin") == "data-g2.bin"
        assert _next_generation_name("data-g9.bin") == "data-g10.bin"

    def test_metrics_counters(self, streamed_store):
        registry = MetricsRegistry()
        report = compact_store(streamed_store, metrics=registry)
        assert registry.counter("store.compact.runs") == 1
        assert (
            registry.counter("store.compact.partitions_in")
            == report.partitions_before
        )
        assert (
            registry.counter("store.compact.partitions_out")
            == report.partitions_after
        )
        assert registry.counter("store.compact.rows") == report.rows
        compact_store(streamed_store, metrics=registry)
        assert registry.counter("store.compact.skipped") == 1


class TestCrashSafety:
    def test_torn_write_caught_before_manifest_swap(
        self, streamed_store, monkeypatch
    ):
        # Corrupt the new generation's bytes as they hit disk: the
        # re-verify pass must refuse to publish them, and the store must
        # still read from the old generation as if nothing happened.
        import repro.store.compact as compact_module

        real_write = compact_module.atomic_write_bytes
        before = list(TraceStoreReader(streamed_store).scan_pairs())

        def torn_write(path, payload):
            if path.name.startswith("data-g"):
                payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
            return real_write(path, payload)

        monkeypatch.setattr(compact_module, "atomic_write_bytes", torn_write)
        with pytest.raises(CorruptBlockError, match="re-verify"):
            compact_store(streamed_store)
        monkeypatch.undo()

        manifest = json.loads((streamed_store / "manifest.json").read_text())
        assert manifest.get("data_file", "data.bin") == "data.bin"
        assert list(TraceStoreReader(streamed_store).scan_pairs()) == before
        assert verify_store(streamed_store).ok
        # The next compaction succeeds and sweeps the orphan generation.
        report = compact_store(streamed_store)
        assert not report.skipped
        assert not (streamed_store / "data.bin").exists()
        data_files = {p.name for p in streamed_store.glob("data*.bin")}
        assert data_files == {report.data_file}

    def test_compaction_rereads_with_crc_checks(self, streamed_store):
        # A corrupt source block must fail the compaction read pass, not
        # silently propagate into the rewritten store.
        manifest = json.loads((streamed_store / "manifest.json").read_text())
        partition = manifest["partitions"][0]
        data_path = streamed_store / "data.bin"
        payload = bytearray(data_path.read_bytes())
        payload[partition["offset"] + partition["blocks"][0]["offset"]] ^= 0xFF
        data_path.write_bytes(bytes(payload))
        with pytest.raises(CorruptBlockError):
            compact_store(streamed_store)


class TestCompactStoreCLI:
    def test_compact_then_skip(self, streamed_store, capsys):
        from repro.cli import main

        assert main(["compact-store", str(streamed_store)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert "rows re-verified" in out
        assert main(["compact-store", str(streamed_store)]) == 0
        assert "already compact" in capsys.readouterr().out

    def test_cli_reband(self, streamed_store, capsys):
        from repro.cli import main

        code = main(
            ["compact-store", str(streamed_store), "--band-windows", "8"]
        )
        assert code == 0
        reader = TraceStoreReader(streamed_store)
        assert reader.manifest["band_windows"] == 8

    def test_cli_metrics_manifest(self, streamed_store, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "m.json"
        code = main(
            [
                "compact-store",
                str(streamed_store),
                "--metrics-out", str(manifest_path),
            ]
        )
        assert code == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["counters"]["store.compact.runs"] == 1
        assert payload["command"] == "compact-store"
