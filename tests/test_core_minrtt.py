"""Tests for windowed MinRTT and smoothed-RTT estimators (§3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minrtt import MinRttEstimator, SmoothedRttEstimator


class TestMinRtt:
    def test_tracks_minimum(self):
        est = MinRttEstimator(window_seconds=100.0)
        est.update(0.0, 0.050)
        est.update(1.0, 0.030)
        est.update(2.0, 0.070)
        assert est.current(2.0) == 0.030

    def test_window_expiry(self):
        est = MinRttEstimator(window_seconds=10.0)
        est.update(0.0, 0.020)
        est.update(5.0, 0.050)
        assert est.current(5.0) == 0.020
        assert est.current(11.0) == 0.050  # 20 ms sample expired
        assert est.current(16.0) is None   # everything expired

    def test_at_termination_falls_back_to_lifetime_min(self):
        est = MinRttEstimator(window_seconds=10.0)
        est.update(0.0, 0.020)
        # Session goes idle for far longer than the window, then closes.
        assert est.current(100.0) is None
        assert est.at_termination(100.0) == 0.020

    def test_at_termination_prefers_windowed_value(self):
        est = MinRttEstimator(window_seconds=10.0)
        est.update(0.0, 0.020)
        est.update(95.0, 0.060)
        # At close, the 20 ms sample is stale; the kernel reports the
        # windowed min (60 ms), not the lifetime min.
        assert est.at_termination(100.0) == 0.060

    def test_rejects_nonpositive_rtt(self):
        est = MinRttEstimator()
        with pytest.raises(ValueError):
            est.update(0.0, 0.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            MinRttEstimator(window_seconds=0.0)

    def test_sample_count(self):
        est = MinRttEstimator()
        for i in range(5):
            est.update(float(i), 0.05)
        assert est.sample_count == 5

    def test_empty_estimator(self):
        est = MinRttEstimator()
        assert est.current(0.0) is None
        assert est.at_termination(0.0) is None


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=0.001, max_value=1.0),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_windowed_min_matches_bruteforce(samples):
    samples = sorted(samples, key=lambda pair: pair[0])
    window = 50.0
    est = MinRttEstimator(window_seconds=window)
    for now, rtt in samples:
        est.update(now, rtt)
    final_time = samples[-1][0]
    expected = min(
        (rtt for now, rtt in samples if now >= final_time - window), default=None
    )
    assert est.current(final_time) == expected


class TestSmoothedRtt:
    def test_first_sample_initializes(self):
        est = SmoothedRttEstimator()
        est.update(0.100)
        assert est.srtt == 0.100
        assert est.rttvar == 0.050

    def test_ewma_converges(self):
        est = SmoothedRttEstimator()
        for _ in range(200):
            est.update(0.080)
        assert est.srtt == pytest.approx(0.080, abs=1e-6)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_rto_floor(self):
        est = SmoothedRttEstimator()
        for _ in range(100):
            est.update(0.001)
        assert est.rto == pytest.approx(SmoothedRttEstimator.MIN_RTO)

    def test_initial_rto_is_one_second(self):
        assert SmoothedRttEstimator().rto == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SmoothedRttEstimator().update(0.0)
