"""Tests for Figures 8–10 and Tables 1–2 drivers on controlled stores."""

import math

import pytest

from repro.core.aggregation import AggregationStore
from repro.core.classification import TemporalClass
from repro.core.records import Relationship, UserGroupKey
from repro.pipeline.dataset import StudyDataset
from repro.pipeline.routing_analysis import (
    WeightedDifferenceCdf,
    fig8_degradation,
    fig9_opportunity,
    fig10_relationship_comparison,
    table1_temporal_classes,
    table2_opportunity_relationships,
)

from tests.helpers import DEFAULT_GROUP, fill_window


def controlled_dataset(store, study_windows=96):
    dataset = StudyDataset(study_windows=study_windows)
    dataset.store = store
    return dataset


class TestWeightedDifferenceCdf:
    def test_accumulates_valid_only(self):
        from repro.core.comparison import WindowVerdict

        acc = WeightedDifferenceCdf()
        acc.add(WindowVerdict(0, 5.0, 4.0, 6.0, True, 100))
        acc.add(WindowVerdict(1, math.nan, -math.inf, math.inf, False, 300))
        assert acc.valid_traffic_fraction == pytest.approx(0.25)
        assert acc.traffic_fraction_at_least(5.0) == 1.0
        assert acc.traffic_fraction_at_least(6.0) == 0.0

    def test_ci_gated_fraction(self):
        from repro.core.comparison import WindowVerdict

        acc = WeightedDifferenceCdf()
        acc.add(WindowVerdict(0, 6.0, 5.5, 6.5, True, 100))   # exceeds 5 at CI
        acc.add(WindowVerdict(1, 6.0, 4.5, 7.5, True, 100))   # does not
        assert acc.traffic_fraction_at_least(5.0, use_ci_low=True) == pytest.approx(0.5)

    def test_empty(self):
        acc = WeightedDifferenceCdf()
        assert acc.traffic_fraction_at_least(1.0) == 0.0
        assert acc.valid_traffic_fraction == 0.0


class TestFig8Driver:
    def test_detects_injected_spike(self):
        store = AggregationStore()
        for window in range(10):
            rtt = 60.0 if window == 7 else 40.0
            fill_window(store, window=window, rtt_ms=rtt, hdratio=0.9)
        result = fig8_degradation(controlled_dataset(store))
        assert result.minrtt.traffic_fraction_at_least(15.0, use_ci_low=True) > 0.0
        assert result.minrtt.valid_traffic_fraction > 0.9

    def test_stable_store_no_degradation(self):
        store = AggregationStore()
        for window in range(10):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9)
        result = fig8_degradation(controlled_dataset(store))
        assert result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True) == 0.0


class TestFig9Driver:
    def test_detects_better_alternate(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(store, window=window, rtt_ms=50.0, hdratio=0.9, rank=0)
            fill_window(store, window=window, rtt_ms=38.0, hdratio=0.9, rank=1)
        result = fig9_opportunity(controlled_dataset(store))
        assert result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True) == 1.0
        assert result.minrtt_within_of_optimal(3.0) == 0.0

    def test_no_alternates_no_opportunity(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(store, window=window, rtt_ms=50.0, hdratio=0.9, rank=0)
        result = fig9_opportunity(controlled_dataset(store))
        assert result.minrtt.differences == []


class TestFig10Driver:
    def test_peer_vs_transit_pairing(self):
        store = AggregationStore()
        for window in range(3):
            fill_window(
                store, window=window, rtt_ms=40.0, hdratio=0.9, rank=0,
                relationship=Relationship.PRIVATE,
            )
            fill_window(
                store, window=window, rtt_ms=48.0, hdratio=0.9, rank=1,
                relationship=Relationship.TRANSIT,
            )
        result = fig10_relationship_comparison(controlled_dataset(store))
        pair = result.by_pair["peering-vs-transit"]
        assert len(pair.differences) == 3
        # preferred − alternate: negative (peer is faster).
        assert result.median_difference("peering-vs-transit") < -5.0

    def test_no_matching_alternate_type(self):
        store = AggregationStore()
        fill_window(store, window=0, rtt_ms=40.0, hdratio=0.9, rank=0,
                    relationship=Relationship.PRIVATE)
        fill_window(store, window=0, rtt_ms=42.0, hdratio=0.9, rank=1,
                    relationship=Relationship.PUBLIC)
        result = fig10_relationship_comparison(controlled_dataset(store))
        assert result.by_pair["peering-vs-transit"].differences == []
        assert len(result.by_pair["private-vs-public"].differences) == 1


class TestTable1Driver:
    def _store_with_diurnal_group(self, days=10):
        from repro.core.classification import WINDOWS_PER_DAY

        store = AggregationStore()
        for window in range(days * WINDOWS_PER_DAY):
            slot = window % WINDOWS_PER_DAY
            degraded = 80 <= slot < 88  # same evening block daily
            fill_window(
                store,
                window=window,
                rtt_ms=60.0 if degraded else 40.0,
                hdratio=0.9,
                count=35,
            )
        return store, days * WINDOWS_PER_DAY

    def test_diurnal_group_classified(self):
        store, windows = self._store_with_diurnal_group()
        dataset = controlled_dataset(store, study_windows=windows)
        result = table1_temporal_classes(dataset)
        blue, orange = result.fractions(
            "degradation", "minrtt", 5.0, TemporalClass.DIURNAL
        )
        assert blue == pytest.approx(1.0)
        assert 0.0 < orange < blue

    def test_uneventful_at_high_threshold(self):
        store, windows = self._store_with_diurnal_group()
        dataset = controlled_dataset(store, study_windows=windows)
        result = table1_temporal_classes(dataset)
        blue, orange = result.fractions(
            "degradation", "minrtt", 50.0, TemporalClass.UNEVENTFUL
        )
        assert blue == pytest.approx(1.0)
        assert orange == 0.0


class TestTable2Driver:
    def test_relationship_attribution(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(
                store, window=window, rtt_ms=52.0, hdratio=0.9, rank=0,
                relationship=Relationship.PRIVATE,
            )
            fill_window(
                store, window=window, rtt_ms=38.0, hdratio=0.9, rank=1,
                relationship=Relationship.TRANSIT,
            )
        dataset = controlled_dataset(store)
        result = table2_opportunity_relationships(dataset)
        assert result.relative("minrtt", "private->transit") == pytest.approx(1.0)
        assert result.absolute("minrtt", "private->transit") > 0.0

    def test_no_opportunity_empty_rows(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, rank=0)
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9, rank=1)
        dataset = controlled_dataset(store)
        result = table2_opportunity_relationships(dataset)
        assert sum(result.relative("minrtt", name) for name in result.rows["minrtt"]) == 0.0


class TestVerdictCache:
    def test_cache_returns_same_object(self):
        store = AggregationStore()
        for window in range(4):
            fill_window(store, window=window, rtt_ms=40.0, hdratio=0.9)
        dataset = controlled_dataset(store)
        first = dataset.verdicts("minrtt", "degradation")
        second = dataset.verdicts("minrtt", "degradation")
        assert first is second

    def test_unknown_kind_rejected(self):
        dataset = controlled_dataset(AggregationStore())
        with pytest.raises(ValueError):
            dataset.verdicts("minrtt", "nonsense")
