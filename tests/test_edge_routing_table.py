"""Tests for the LPM-backed routing table (policy tiebreak 1 end to end)."""

import pytest

from repro.core.records import Relationship
from repro.edge.bgp import BgpRoute, PathCondition
from repro.edge.routing import RoutingTable


def route(prefix, relationship, as_path=(64500,), prepended=False):
    length = int(prefix.rsplit("/", 1)[1])
    return BgpRoute(
        prefix=prefix,
        prefix_length=length,
        as_path=tuple(as_path),
        relationship=relationship,
        prepended=prepended,
        condition=PathCondition(),
    )


class TestRoutingTable:
    def test_resolve_single_prefix(self):
        table = RoutingTable()
        pni = route("203.0.112.0/20", Relationship.PRIVATE)
        transit = route("203.0.112.0/20", Relationship.TRANSIT, (1299, 64500))
        table.announce_all([transit, pni])
        ranked = table.resolve("203.0.112.55")
        assert ranked is not None
        assert ranked.preferred is pni
        assert len(ranked.routes) == 2

    def test_more_specific_beats_covering_peer(self):
        """Tiebreak 1 precedes tiebreak 2: a transit-announced /20 beats a
        peer-announced covering /16 — the destination's ingress TE wins."""
        table = RoutingTable()
        peer_aggregate = route("203.0.0.0/16", Relationship.PRIVATE)
        transit_specific = route(
            "203.0.112.0/20", Relationship.TRANSIT, (1299, 64500)
        )
        table.announce_all([peer_aggregate, transit_specific])
        ranked = table.resolve("203.0.112.9")
        assert ranked.preferred is transit_specific
        # The aggregate remains available as the measured alternate.
        assert peer_aggregate in ranked.routes

    def test_address_outside_specific_uses_aggregate(self):
        table = RoutingTable()
        peer_aggregate = route("203.0.0.0/16", Relationship.PRIVATE)
        transit_specific = route(
            "203.0.112.0/20", Relationship.TRANSIT, (1299, 64500)
        )
        table.announce_all([peer_aggregate, transit_specific])
        ranked = table.resolve("203.0.5.1")  # not in the /20
        assert ranked.preferred is peer_aggregate
        assert transit_specific not in ranked.routes

    def test_unknown_destination(self):
        table = RoutingTable()
        table.announce(route("203.0.0.0/16", Relationship.PRIVATE))
        assert table.resolve("8.8.8.8") is None

    def test_default_route_fallback(self):
        table = RoutingTable()
        default = route("0.0.0.0/0", Relationship.TRANSIT, (1299,))
        table.announce(default)
        ranked = table.resolve("8.8.8.8")
        assert ranked.preferred is default

    def test_mismatched_length_rejected(self):
        table = RoutingTable()
        bad = BgpRoute(
            prefix="203.0.0.0/16",
            prefix_length=20,
            as_path=(64500,),
            relationship=Relationship.PRIVATE,
        )
        with pytest.raises(ValueError):
            table.announce(bad)

    def test_prefix_count(self):
        table = RoutingTable()
        table.announce(route("203.0.0.0/16", Relationship.PRIVATE))
        table.announce(route("203.0.0.0/16", Relationship.TRANSIT, (1299, 64500)))
        table.announce(route("203.0.112.0/20", Relationship.PUBLIC))
        assert table.prefix_count == 2  # two distinct prefixes
