"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Simulator

pytestmark = pytest.mark.netsim


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert seen == [1.0, 2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
        sim.run_until_idle()
        assert seen == [5.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run_until_idle()
        assert seen == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run_until_idle()
        assert seen == [1, 10]

    def test_event_budget_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(until=1e9, max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5
