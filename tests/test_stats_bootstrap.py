"""Tests for bootstrap CIs and their agreement with the fast parametric-free
intervals the paper's methodology uses."""

import random

import pytest

from repro.stats.bootstrap import bootstrap_median_ci, bootstrap_median_difference_ci
from repro.stats.median_ci import compare_medians, median_ci


class TestBootstrapMedian:
    def test_brackets_the_median(self):
        rng = random.Random(1)
        values = [rng.expovariate(0.05) for _ in range(300)]
        med, low, high = bootstrap_median_ci(values, rng=random.Random(2))
        assert low <= med <= high

    def test_interval_shrinks_with_samples(self):
        rng = random.Random(3)
        small = [rng.gauss(50, 5) for _ in range(40)]
        large = [rng.gauss(50, 5) for _ in range(2000)]
        _, lo_s, hi_s = bootstrap_median_ci(small, rng=random.Random(4))
        _, lo_l, hi_l = bootstrap_median_ci(large, rng=random.Random(5))
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0, 2.0])
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0] * 10, resamples=10)


class TestBootstrapDifference:
    def test_detects_shift(self):
        rng = random.Random(7)
        a = [rng.gauss(50, 3) for _ in range(200)]
        b = [rng.gauss(42, 3) for _ in range(200)]
        diff, low, high = bootstrap_median_difference_ci(
            a, b, rng=random.Random(8)
        )
        assert 6 < diff < 10
        assert low > 4.0

    def test_no_shift_interval_covers_zero(self):
        rng = random.Random(9)
        a = [rng.gauss(50, 3) for _ in range(200)]
        b = [rng.gauss(50, 3) for _ in range(200)]
        _, low, high = bootstrap_median_difference_ci(a, b, rng=random.Random(10))
        assert low <= 0.0 <= high


class TestAgreementWithFastPath:
    """The empirical justification for the production CI construction."""

    def test_median_ci_widths_agree(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(3.5, 0.6) for _ in range(500)]
        _, fast_lo, fast_hi = median_ci(values)
        _, boot_lo, boot_hi = bootstrap_median_ci(
            values, resamples=2000, rng=random.Random(12)
        )
        fast_width = fast_hi - fast_lo
        boot_width = boot_hi - boot_lo
        assert fast_width == pytest.approx(boot_width, rel=0.5)

    def test_difference_decisions_agree(self):
        rng = random.Random(13)
        for shift in (0.0, 2.0, 8.0):
            a = [rng.gauss(50 + shift, 4) for _ in range(300)]
            b = [rng.gauss(50, 4) for _ in range(300)]
            fast = compare_medians(a, b)
            _, boot_lo, _ = bootstrap_median_difference_ci(
                a, b, resamples=1500, rng=random.Random(int(shift))
            )
            # Same verdict at a 1 ms threshold, away from the boundary.
            if abs(shift - 1.0) > 1.0:
                assert fast.exceeds(1.0) == (boot_lo > 1.0), shift
