"""Integration tests for the end-to-end scenario generator."""

import dataclasses

import pytest

from repro.core.aggregation import AggregationStore
from repro.core.records import Relationship
from repro.workload.scenario import EdgeScenario, ScenarioConfig

TINY = ScenarioConfig(
    seed=7,
    days=1,
    base_sessions_per_window=3.0,
)


@pytest.fixture(scope="module")
def tiny_trace():
    scenario = EdgeScenario(TINY)
    return scenario, list(scenario.generate())


class TestUniverse:
    def test_networks_cover_all_metros(self, tiny_trace):
        scenario, _ = tiny_trace
        from repro.edge.topology import DEFAULT_METROS

        assert len(scenario.networks) == len(DEFAULT_METROS)

    def test_every_network_has_routes(self, tiny_trace):
        scenario, _ = tiny_trace
        for state in scenario.networks:
            assert len(state.ranked.routes) >= 1
            assert state.ranked.preferred.prefix == state.network.prefixes[0]

    def test_figure5_network_optional(self):
        config = dataclasses.replace(TINY, include_figure5_network=True)
        scenario = EdgeScenario(config)
        fig5 = [s for s in scenario.networks if s.network.secondary_metro]
        assert len(fig5) == 1
        assert fig5[0].network.prefixes == ["198.51.0.0/16"]

    def test_deterministic_universe(self):
        a = EdgeScenario(TINY)
        b = EdgeScenario(TINY)
        assert [s.network.asn for s in a.networks] == [
            s.network.asn for s in b.networks
        ]
        assert [s.pop.name for s in a.networks] == [s.pop.name for s in b.networks]


class TestTrace:
    def test_samples_are_complete(self, tiny_trace):
        _, samples = tiny_trace
        assert len(samples) > 500
        for sample in samples[:200]:
            assert sample.route is not None
            assert sample.pop
            assert sample.client_country
            assert sample.client_continent
            assert sample.min_rtt_seconds > 0
            assert sample.transactions

    def test_route_rank_mix(self, tiny_trace):
        _, samples = tiny_trace
        ranks = [s.route.preference_rank for s in samples]
        total = len(ranks)
        preferred_share = sum(1 for r in ranks if r == 0) / total
        # ~47% preferred; rest on alternates (when alternates exist).
        assert 0.40 < preferred_share < 0.65
        assert any(r > 0 for r in ranks)

    def test_relationship_mix(self, tiny_trace):
        _, samples = tiny_trace
        relationships = {s.route.relationship for s in samples}
        assert Relationship.TRANSIT in relationships
        assert (
            Relationship.PRIVATE in relationships
            or Relationship.PUBLIC in relationships
        )

    def test_sessions_fall_in_their_windows(self, tiny_trace):
        _, samples = tiny_trace
        from repro.core.constants import AGGREGATION_WINDOW_SECONDS

        horizon = TINY.total_windows * AGGREGATION_WINDOW_SECONDS
        for sample in samples:
            assert 0 <= sample.start_time < horizon

    def test_hosting_networks_marked(self, tiny_trace):
        scenario, samples = tiny_trace
        flagged_networks = [
            s for s in scenario.networks if s.network.is_hosting_provider
        ]
        flagged_samples = [s for s in samples if s.client_ip_is_hosting]
        assert bool(flagged_networks) == bool(flagged_samples)

    def test_trace_feeds_aggregation_store(self, tiny_trace):
        _, samples = tiny_trace
        store = AggregationStore()
        for sample in samples[:1000]:
            store.add(sample)
        assert len(store) > 0
        assert store.windows()

    def test_continent_latency_ordering(self):
        # With enough sessions, Africa's median MinRTT must exceed Europe's
        # (Figure 6(b) ordering) — the central spatial claim.
        config = dataclasses.replace(
            TINY, base_sessions_per_window=12.0, seed=11
        )
        samples = list(EdgeScenario(config).generate())
        from repro.stats.weighted import percentile

        def median_rtt(code):
            values = [
                s.min_rtt_ms for s in samples if s.client_continent == code
            ]
            return percentile(values, 50.0)

        assert median_rtt("AF") > median_rtt("EU") + 10.0
        assert median_rtt("AS") > median_rtt("EU") + 5.0

    def test_diurnal_traffic_volume(self, tiny_trace):
        scenario, _ = tiny_trace
        state = scenario.networks[0]
        volumes = [
            scenario.sessions_in_window(state, w) for w in range(96)
        ]
        # Activity varies over the day: peak windows carry clearly more
        # than trough windows on average.
        assert max(volumes) > min(volumes)
