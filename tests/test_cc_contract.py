"""Congestion-control conformance suite: every controller honors one contract.

The registry (:func:`~repro.netsim.congestion.register_congestion_control`)
makes *which* congestion control a connection runs orthogonal to the TCP
machinery around it — but only if every controller upholds the invariants
:class:`~repro.netsim.tcp.TcpConnection` leans on:

- the window never collapses below 2 MSS on loss (the sender must always
  be able to clock out a segment pair);
- ``ssthresh`` never *increases* across consecutive loss events (recovery
  exit sets ``cwnd = max(ssthresh, 2 MSS)`` — a controller that left
  ssthresh at its 2**30 sentinel would explode the window there);
- ``on_timeout`` collapses the window (RTO means the pipe is gone);
- a fixed seed reproduces a transfer byte-for-byte (the differential
  harnesses and golden numbers depend on it).

Adding a controller via ``register_congestion_control`` means inheriting
this whole bar — the suite parameterizes over the live registry, exactly
like ``tests/test_executor_contract.py`` does for shard executors.
"""

from __future__ import annotations

import pytest

from repro.netsim.congestion import (
    CongestionControl,
    cc_for,
    register_congestion_control,
    registered_congestion_controls,
    _CC_FACTORIES,
)
from repro.netsim.scenarios import run_transfer

pytestmark = pytest.mark.netsim

MSS = 1500
CONTROLLERS = registered_congestion_controls()


@pytest.mark.parametrize("name", CONTROLLERS)
class TestControllerContract:
    def test_cwnd_floor_under_collapsing_flight(self, name):
        cc = cc_for(name, MSS, 10 * MSS)
        # Loss events with ever-shrinking flight must never take the window
        # below two segments.
        for flight in (10 * MSS, 4 * MSS, 2 * MSS, MSS, 100, 0):
            cc.on_loss(flight)
            assert cc.cwnd_bytes >= 2 * MSS

    def test_ssthresh_monotone_across_consecutive_losses(self, name):
        cc = cc_for(name, MSS, 20 * MSS)
        previous = None
        for flight in (20 * MSS, 12 * MSS, 6 * MSS, 3 * MSS):
            cc.on_loss(flight)
            assert cc.ssthresh_bytes >= 2 * MSS
            if previous is not None:
                assert cc.ssthresh_bytes <= previous
            previous = cc.ssthresh_bytes

    def test_loss_leaves_ssthresh_usable_for_recovery_exit(self, name):
        # TcpConnection's recovery exit does cwnd = max(ssthresh, 2 MSS);
        # after any loss, ssthresh must be a real window, not the 1<<30
        # "slow start forever" sentinel.
        cc = cc_for(name, MSS, 10 * MSS)
        cc.on_loss(10 * MSS)
        assert cc.ssthresh_bytes < (1 << 30)

    def test_timeout_collapses_window(self, name):
        cc = cc_for(name, MSS, 40 * MSS)
        before = cc.cwnd_bytes
        after = cc.on_timeout(bytes_in_flight=40 * MSS)
        assert after == cc.cwnd_bytes
        assert after < before
        assert after <= 2 * MSS

    def test_ack_growth_only_moves_forward_in_slow_start(self, name):
        cc = cc_for(name, MSS, 10 * MSS)
        before = cc.cwnd_bytes
        cc.on_ack(MSS, now=0.05, rtt_sample=0.05)
        assert cc.cwnd_bytes >= before

    def test_deterministic_under_fixed_seed(self, name):
        kwargs = dict(
            response_sizes=[120 * MSS, 40 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=40.0,
            loss_probability=0.02,
            jitter_ms=5.0,
            congestion_control=name,
            seed=11,
            max_duration=300.0,
        )
        first = run_transfer(**kwargs)
        second = run_transfer(**kwargs)
        assert first.completion_time == second.completion_time
        assert first.retransmits == second.retransmits
        assert first.timeouts == second.timeouts
        assert [
            (r.first_byte_time, r.ack_time, r.response_bytes)
            for r in first.records
        ] == [
            (r.first_byte_time, r.ack_time, r.response_bytes)
            for r in second.records
        ]

    def test_completes_transfer_under_burst_loss(self, name):
        result = run_transfer(
            [150 * MSS],
            bottleneck_mbps=8.0,
            rtt_ms=60.0,
            burst_loss_probability=0.01,
            congestion_control=name,
            seed=3,
            max_duration=300.0,
        )
        assert result.total_bytes == 150 * MSS


class TestRegistry:
    def test_lookup_is_by_exact_name(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            cc_for("RENO", MSS, 10 * MSS)

    def test_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            cc_for("nope", MSS, 10 * MSS)
        for name in CONTROLLERS:
            assert name in str(excinfo.value)

    def test_name_must_be_lowercase_identifier(self):
        with pytest.raises(ValueError):
            register_congestion_control("Bad-Name", lambda m, c: None)

    def test_register_and_replace(self):
        class Fixed(CongestionControl):
            def on_ack(self, acked, now, rtt, snd_una=None, snd_nxt=None):
                pass

            def on_loss(self, flight):
                return self.cwnd_bytes

            def on_timeout(self, flight):
                return self.cwnd_bytes

        register_congestion_control("fixedwin", Fixed)
        try:
            assert "fixedwin" in registered_congestion_controls()
            cc = cc_for("fixedwin", MSS, 7 * MSS)
            assert isinstance(cc, Fixed)
            assert cc.cwnd_bytes == 7 * MSS
        finally:
            _CC_FACTORIES.pop("fixedwin", None)
        assert "fixedwin" not in registered_congestion_controls()

    def test_abstract_base_raises(self):
        cc = CongestionControl(MSS, 10 * MSS)
        with pytest.raises(NotImplementedError):
            cc.on_ack(MSS, now=0.0, rtt_sample=None)
        with pytest.raises(NotImplementedError):
            cc.on_loss(MSS)
        with pytest.raises(NotImplementedError):
            cc.on_timeout(MSS)
