"""Tests for IPv4 prefix arithmetic and the LPM trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.lpm import Ipv4Prefix, PrefixTrie, parse_ipv4


class TestParse:
    def test_parse_ipv4(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF
        assert parse_ipv4("10.1.2.3") == (10 << 24) | (1 << 16) | (2 << 8) | 3

    @pytest.mark.parametrize("bad", ["10.1.2", "10.1.2.3.4", "a.b.c.d", "10.1.2.256", "10.-1.2.3"])
    def test_rejects_bad_addresses(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_prefix_parse_and_str(self):
        prefix = Ipv4Prefix.parse("192.168.16.0/20")
        assert str(prefix) == "192.168.16.0/20"
        assert prefix.size == 4096

    def test_prefix_canonicalizes_host_bits(self):
        prefix = Ipv4Prefix.parse("10.1.2.3/8")
        assert str(prefix) == "10.0.0.0/8"

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Ipv4Prefix.parse("10.0.0.0/33")
        with pytest.raises(ValueError):
            Ipv4Prefix.parse("10.0.0.0")


class TestPrefixOps:
    def test_contains(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/8")
        assert prefix.contains(parse_ipv4("10.255.0.1"))
        assert not prefix.contains(parse_ipv4("11.0.0.1"))

    def test_contains_prefix(self):
        aggregate = Ipv4Prefix.parse("10.0.0.0/8")
        specific = Ipv4Prefix.parse("10.4.0.0/16")
        assert aggregate.contains_prefix(specific)
        assert not specific.contains_prefix(aggregate)

    def test_subnets(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/14")
        subnets = list(prefix.subnets(16))
        assert len(subnets) == 4
        assert str(subnets[0]) == "10.0.0.0/16"
        assert str(subnets[-1]) == "10.3.0.0/16"
        assert all(prefix.contains_prefix(s) for s in subnets)

    def test_subnets_invalid_length(self):
        with pytest.raises(ValueError):
            list(Ipv4Prefix.parse("10.0.0.0/16").subnets(8))


class TestTrie:
    def test_longest_match_wins(self):
        trie = PrefixTrie()
        trie.insert(Ipv4Prefix.parse("10.0.0.0/8"), "transit-aggregate")
        trie.insert(Ipv4Prefix.parse("10.1.0.0/16"), "peer-specific")
        match, value = trie.lookup(parse_ipv4("10.1.2.3"))
        assert value == "peer-specific"
        assert match.length == 16
        _, value = trie.lookup(parse_ipv4("10.200.0.1"))
        assert value == "transit-aggregate"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert(Ipv4Prefix.parse("10.0.0.0/8"), "x")
        assert trie.lookup(parse_ipv4("11.0.0.1")) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Ipv4Prefix.parse("0.0.0.0/0"), "default")
        trie.insert(Ipv4Prefix.parse("10.0.0.0/8"), "specific")
        assert trie.lookup(parse_ipv4("8.8.8.8"))[1] == "default"
        assert trie.lookup(parse_ipv4("10.0.0.1"))[1] == "specific"

    def test_replace_value(self):
        trie = PrefixTrie()
        prefix = Ipv4Prefix.parse("10.0.0.0/8")
        trie.insert(prefix, "old")
        trie.insert(prefix, "new")
        assert len(trie) == 1
        assert trie.lookup_exact(prefix) == "new"

    def test_exact_lookup_misses_covering(self):
        trie = PrefixTrie()
        trie.insert(Ipv4Prefix.parse("10.0.0.0/8"), "x")
        assert trie.lookup_exact(Ipv4Prefix.parse("10.1.0.0/16")) is None

    def test_items_enumerates_everything(self):
        trie = PrefixTrie()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "0.0.0.0/0"]
        for index, text in enumerate(prefixes):
            trie.insert(Ipv4Prefix.parse(text), index)
        assert {str(p) for p, _ in trie.items()} == set(prefixes)
        assert len(trie) == 4

    def test_policy_tiebreak_one(self):
        """§6.1 tiebreak 1: a more-specific peer route beats a covering
        transit aggregate even though peers normally win anyway — and a
        more-specific TRANSIT route beats a covering PEER aggregate."""
        trie = PrefixTrie()
        trie.insert(Ipv4Prefix.parse("203.0.0.0/16"), ("peer", "aggregate"))
        trie.insert(Ipv4Prefix.parse("203.0.16.0/20"), ("transit", "specific"))
        _, value = trie.lookup(parse_ipv4("203.0.17.1"))
        assert value == ("transit", "specific")


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.integers(min_value=0, max_value=32),
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_trie_matches_bruteforce(address, raw_prefixes):
    prefixes = [Ipv4Prefix(network, length) for network, length in raw_prefixes]
    trie = PrefixTrie()
    for index, prefix in enumerate(prefixes):
        trie.insert(prefix, index)

    matching = [p for p in prefixes if p.contains(address)]
    result = trie.lookup(address)
    if not matching:
        assert result is None
    else:
        best_length = max(p.length for p in matching)
        assert result is not None
        match, value = result
        assert match.length == best_length
        assert prefixes[value].length == best_length
        assert prefixes[value].contains(address)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.integers(min_value=0, max_value=32),
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_covering_matches_bruteforce(address, raw_prefixes):
    prefixes = {Ipv4Prefix(network, length) for network, length in raw_prefixes}
    trie = PrefixTrie()
    for prefix in prefixes:
        trie.insert(prefix, str(prefix))
    expected = {p for p in prefixes if p.contains(address)}
    covering = trie.covering(address)
    assert {p for p, _ in covering} == expected
    lengths = [p.length for p, _ in covering]
    assert lengths == sorted(lengths)  # shortest first
