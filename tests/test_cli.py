"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_flags(self):
        args = build_parser().parse_args(["figure4", "--delayed-ack"])
        assert args.command == "figure4"
        assert args.delayed_ack

    def test_snapshot_defaults(self):
        args = build_parser().parse_args(["snapshot"])
        assert args.days == 1
        assert args.networks_per_metro == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_cc_flag(self):
        args = build_parser().parse_args(["figure4", "--cc", "bbr"])
        assert args.congestion_control == "bbr"
        args = build_parser().parse_args(["sweep", "--cc", "cubic"])
        assert args.congestion_control == "cubic"

    def test_cc_defaults_to_reno(self):
        for command in ("figure4", "sweep"):
            args = build_parser().parse_args([command])
            assert args.congestion_control == "reno"


class TestCommands:
    def test_figure4_runs(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "MinRTT: 60.0 ms" in out
        assert "session HDratio: 1.0" in out

    def test_figure4_delayed_ack_runs(self, capsys):
        assert main(["figure4", "--delayed-ack"]) == 0
        assert "session HDratio" in capsys.readouterr().out

    def test_sweep_runs_coarse(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "overestimates: 0" in out

    def test_figure4_with_cc_runs(self, capsys):
        assert main(["figure4", "--cc", "bbr"]) == 0
        out = capsys.readouterr().out
        assert "congestion control: bbr" in out
        assert "session HDratio" in out

    def test_sweep_rejects_unknown_cc(self, capsys):
        with pytest.raises(ValueError, match="unknown congestion control"):
            main(["sweep", "--cc", "vegas"])

    def test_snapshot_runs_small(self, capsys):
        code = main(
            ["snapshot", "--rate", "2", "--days", "1", "--networks-per-metro", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "global MinRTT p50" in out

    def test_routing_runs_small(self, capsys):
        code = main(["routing", "--rate", "12", "--days", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within 3 ms of optimal" in out


class TestNewSubcommands:
    def test_trace_and_analyze_parsers(self):
        args = build_parser().parse_args(["trace", "out.jsonl", "--rate", "5"])
        assert args.command == "trace"
        assert args.output == "out.jsonl"
        assert args.rate == 5.0
        args = build_parser().parse_args(["analyze", "out.jsonl", "--windows", "48"])
        assert args.windows == 48

    def test_calibrate_parser(self):
        args = build_parser().parse_args(["calibrate", "--rate", "3"])
        assert args.command == "calibrate"
        assert args.rate == 3.0

    def test_figure4_trace_flag(self, capsys):
        assert main(["figure4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "server" in out and "client" in out  # sequence diagram rails
        assert "data 0.." in out

    def test_trace_analyze_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl.gz")
        assert main(["trace", path, "--rate", "1", "--days", "1"]) == 0
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "global MinRTT p50" in out


class TestShardsValidation:
    """Satellite: --shards without --workers > 1 must error, not no-op."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["snapshot", "--shards", "4"],
            ["routing", "--shards", "2"],
            ["analyze", "t.jsonl", "--shards", "8"],
            ["snapshot", "--workers", "1", "--shards", "4"],
        ],
    )
    def test_shards_without_workers_errors(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--shards" in err and "--workers" in err

    def test_shards_with_workers_accepted(self, capsys):
        code = main(
            [
                "snapshot", "--rate", "1", "--networks-per-metro", "1",
                "--workers", "2", "--shards", "4", "--executor", "serial",
            ]
        )
        assert code == 0
        assert "global MinRTT p50" in capsys.readouterr().out


SMOKE_ARGS = {
    "figure4": ["figure4"],
    "sweep": ["sweep"],
    "snapshot": ["snapshot", "--rate", "1", "--networks-per-metro", "1"],
    "routing": ["routing", "--rate", "8", "--days", "1"],
}


class TestObservabilityOptions:
    """Satellite: --metrics-out/--profile smoke tests on all four
    subcommands — manifest file exists, is valid JSON, and reports stable
    stage names."""

    @pytest.mark.parametrize("command", sorted(SMOKE_ARGS))
    def test_metrics_out_writes_valid_manifest(self, command, tmp_path, capsys):
        out = tmp_path / f"{command}.json"
        assert main(SMOKE_ARGS[command] + ["--metrics-out", str(out)]) == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["format_version"] == 1
        assert payload["command"] == command
        assert payload["exit_code"] == 0
        assert payload["stages"][0]["stage"] == f"cli.{command}"
        assert payload["counters"], "a run must count something"
        capsys.readouterr()

    @pytest.mark.parametrize("command", sorted(SMOKE_ARGS))
    def test_profile_prints_stage_table(self, command, tmp_path, capsys):
        assert main(SMOKE_ARGS[command] + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile" in out
        assert f"cli.{command}" in out

    def test_snapshot_manifest_stage_names_are_stable(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(SMOKE_ARGS["snapshot"] + ["--metrics-out", str(out)]) == 0
        stages = [s["stage"] for s in json.loads(out.read_text())["stages"]]
        assert stages[0] == "cli.snapshot"
        assert "cli.snapshot.pipeline.dataset_from_source" in stages
        assert any(stage.endswith("pipeline.ingest") for stage in stages)
        assert "cli.snapshot.pipeline.fig6" in stages
        capsys.readouterr()

    def test_trace_manifest_counts_rows_written(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        assert main(
            ["trace", str(trace), "--rate", "1", "--metrics-out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        written = payload["counters"]["io.rows_written"]
        assert written == sum(1 for _ in trace.open())
        capsys.readouterr()

    def test_analyze_zero_session_trace_renders_not_available(
        self, tmp_path, capsys
    ):
        """Satellite: zero-session aggregations render n/a, not a crash."""
        from repro.pipeline.io import write_samples

        empty = tmp_path / "empty.jsonl"
        write_samples(empty, [])
        assert main(["analyze", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out


class TestStoreCli:
    """Tentpole: `repro convert` + `--format jsonl|store` surface area."""

    def test_convert_parser(self):
        args = build_parser().parse_args(["convert", "a.jsonl", "b.store"])
        assert args.command == "convert"
        assert args.src == "a.jsonl"
        assert args.dst == "b.store"
        assert args.band_windows is None
        assert not args.no_compress
        args = build_parser().parse_args(
            ["convert", "a.jsonl", "b.store", "--band-windows", "2", "--no-compress"]
        )
        assert args.band_windows == 2
        assert args.no_compress

    def test_format_option_parsers(self):
        args = build_parser().parse_args(["trace", "t.store", "--format", "store"])
        assert args.trace_format == "store"
        args = build_parser().parse_args(
            ["analyze", "t.jsonl", "--format", "jsonl"]
        )
        assert args.trace_format == "jsonl"
        args = build_parser().parse_args(
            ["routing", "--trace", "t.store", "--format", "store"]
        )
        assert args.trace == "t.store"
        assert args.trace_format == "store"

    def test_format_mismatch_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "t.jsonl", "--format", "store"])
        assert excinfo.value.code == 2
        assert "--format store" in capsys.readouterr().err

    def test_format_without_trace_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["routing", "--format", "store"])
        assert excinfo.value.code == 2
        assert "--trace" in capsys.readouterr().err

    def test_trace_writes_store_directly(self, tmp_path, capsys):
        from repro.store import is_store_path

        path = tmp_path / "direct.store"
        assert main(["trace", str(path), "--rate", "1", "--days", "1"]) == 0
        assert is_store_path(path)
        assert "(store)" in capsys.readouterr().out

    def test_convert_then_analyze_matches_jsonl(self, tmp_path, capsys):
        """CLI acceptance: analyze output (modulo the echoed path) is
        identical for the JSONL trace and its store conversion, serially
        and with ``--workers 4``."""
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        assert main(["trace", str(jsonl), "--rate", "2", "--days", "1"]) == 0
        assert main(["convert", str(jsonl), str(store)]) == 0
        out = capsys.readouterr().out
        assert "converted" in out and "(jsonl) ->" in out and "(store)" in out

        def analyze(path, *extra):
            assert main(["analyze", str(path), *extra]) == 0
            return capsys.readouterr().out.splitlines()[1:]

        jsonl_report = analyze(jsonl)
        assert analyze(store) == jsonl_report
        assert analyze(store, "--workers", "4") == jsonl_report

    def test_convert_round_trips_back_to_jsonl(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        back = tmp_path / "back.jsonl"
        assert main(["trace", str(jsonl), "--rate", "1", "--days", "1"]) == 0
        assert main(["convert", str(jsonl), str(store)]) == 0
        assert main(["convert", str(store), str(back)]) == 0
        capsys.readouterr()
        assert back.read_bytes() == jsonl.read_bytes()

    def test_routing_from_store_trace(self, tmp_path, capsys):
        store = tmp_path / "t.store"
        assert main(["trace", str(store), "--rate", "8", "--days", "1"]) == 0
        assert main(["routing", "--trace", str(store)]) == 0
        assert "within 3 ms of optimal" in capsys.readouterr().out

    def test_convert_metrics_manifest_counts_store_writes(
        self, tmp_path, capsys
    ):
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        manifest = tmp_path / "m.json"
        assert main(["trace", str(jsonl), "--rate", "1", "--days", "1"]) == 0
        assert main(
            ["convert", str(jsonl), str(store), "--metrics-out", str(manifest)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(manifest.read_text())
        assert payload["command"] == "convert"
        assert payload["counters"]["store.rows.written"] > 0
        assert payload["counters"]["store.partitions.written"] > 0


class TestCounterEqualityAcceptance:
    """Acceptance: `repro snapshot --workers 4 --metrics-out m.json`
    produces a manifest whose counters are byte-identical to the
    `--workers 1` run."""

    def test_workers4_manifest_counters_equal_workers1(self, tmp_path, capsys):
        base = ["snapshot", "--rate", "1", "--networks-per-metro", "1"]
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(
            base + ["--workers", "1", "--metrics-out", str(serial_out)]
        ) == 0
        assert main(
            base + ["--workers", "4", "--metrics-out", str(parallel_out)]
        ) == 0
        capsys.readouterr()
        serial = json.loads(serial_out.read_text())
        parallel = json.loads(parallel_out.read_text())
        assert json.dumps(parallel["counters"], sort_keys=True) == json.dumps(
            serial["counters"], sort_keys=True
        )
        assert json.dumps(parallel["gauges"], sort_keys=True) == json.dumps(
            serial["gauges"], sort_keys=True
        )
        # The execution facts do differ: the shard plans disagree.
        assert serial["shard_plan"]["workers"] == 1
        assert parallel["shard_plan"]["workers"] == 4


class TestIngestCli:
    """`repro ingest`: streaming windows from a saved trace or stdin."""

    def test_ingest_parser(self):
        args = build_parser().parse_args(
            ["ingest", "t.jsonl", "--windows", "8", "--lateness", "900",
             "--out", "sealed.store"]
        )
        assert args.command == "ingest"
        assert args.trace == "t.jsonl"
        assert args.windows == 8
        assert args.lateness == 900.0
        assert args.out_store == "sealed.store"
        args = build_parser().parse_args(["ingest", "-"])
        assert args.trace == "-"
        assert args.lateness is None
        assert args.out_store is None

    def test_ingest_trace_with_store_and_manifest(self, tmp_path, capsys):
        from repro.pipeline.io import write_samples

        from tests.helpers import make_trace_samples

        jsonl = tmp_path / "t.jsonl"
        sealed = tmp_path / "sealed.store"
        manifest_path = tmp_path / "manifest.json"
        samples = sorted(
            make_trace_samples(400, seed=67, windows=8),
            key=lambda s: s.end_time,
        )
        write_samples(jsonl, samples)
        assert main(
            ["ingest", str(jsonl), "--windows", "8",
             "--out", str(sealed), "--metrics-out", str(manifest_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "sealed across" in out
        assert f"appended to {sealed}" in out
        manifest = json.loads(manifest_path.read_text())
        streaming = manifest["streaming"]
        assert streaming["windows_sealed"] > 0
        assert streaming["samples_sealed"] > 0
        assert manifest["counters"]["stream.windows.sealed"] == streaming[
            "windows_sealed"
        ]
        # The sealed store replays: a batch analyze over it succeeds.
        assert main(["analyze", str(sealed), "--windows", "8"]) == 0
        assert "sessions loaded" in capsys.readouterr().out

    def test_ingest_stdin(self, tmp_path, capsys, monkeypatch):
        import io as stdlib_io

        from repro.pipeline.io import sample_to_dict

        from tests.helpers import make_trace_samples

        samples = sorted(
            make_trace_samples(40, seed=61, windows=2),
            key=lambda s: s.end_time,
        )
        lines = "".join(
            json.dumps(sample_to_dict(sample)) + "\n" for sample in samples
        )
        monkeypatch.setattr("sys.stdin", stdlib_io.StringIO(lines))
        assert main(["ingest", "-", "--windows", "2"]) == 0
        out = capsys.readouterr().out
        assert "stdin" in out
        assert "40 samples offered" in out

    def test_ingest_sealed_store_matches_batch_counters(
        self, tmp_path, capsys
    ):
        """CLI acceptance for the replay invariant: the streaming manifest's
        data-fact counters equal a batch analyze of the sealed store."""
        from repro.pipeline.io import write_samples

        from tests.helpers import make_trace_samples

        jsonl = tmp_path / "t.jsonl"
        sealed = tmp_path / "sealed.store"
        stream_manifest = tmp_path / "stream.json"
        batch_manifest = tmp_path / "batch.json"
        samples = sorted(
            make_trace_samples(400, seed=71, windows=8),
            key=lambda s: s.end_time,
        )
        write_samples(jsonl, samples)
        assert main(
            ["ingest", str(jsonl), "--windows", "8", "--out", str(sealed),
             "--metrics-out", str(stream_manifest)]
        ) == 0
        assert main(
            ["analyze", str(sealed), "--windows", "8",
             "--metrics-out", str(batch_manifest)]
        ) == 0
        capsys.readouterr()
        stream = json.loads(stream_manifest.read_text())
        batch = json.loads(batch_manifest.read_text())
        prefixes = ("pipeline.", "methodology.", "core.")

        def data_facts(manifest):
            return {
                name: value
                for name, value in manifest["counters"].items()
                if name.startswith(prefixes)
            }

        assert data_facts(stream) == data_facts(batch)
        assert stream["gauges"] == batch["gauges"]
        assert batch["streaming"] == {}
