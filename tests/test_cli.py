"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_flags(self):
        args = build_parser().parse_args(["figure4", "--delayed-ack"])
        assert args.command == "figure4"
        assert args.delayed_ack

    def test_snapshot_defaults(self):
        args = build_parser().parse_args(["snapshot"])
        assert args.days == 1
        assert args.networks_per_metro == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestCommands:
    def test_figure4_runs(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "MinRTT: 60.0 ms" in out
        assert "session HDratio: 1.0" in out

    def test_figure4_delayed_ack_runs(self, capsys):
        assert main(["figure4", "--delayed-ack"]) == 0
        assert "session HDratio" in capsys.readouterr().out

    def test_sweep_runs_coarse(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "overestimates: 0" in out

    def test_snapshot_runs_small(self, capsys):
        code = main(
            ["snapshot", "--rate", "2", "--days", "1", "--networks-per-metro", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "global MinRTT p50" in out

    def test_routing_runs_small(self, capsys):
        code = main(["routing", "--rate", "12", "--days", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within 3 ms of optimal" in out


class TestNewSubcommands:
    def test_trace_and_analyze_parsers(self):
        args = build_parser().parse_args(["trace", "out.jsonl", "--rate", "5"])
        assert args.command == "trace"
        assert args.output == "out.jsonl"
        assert args.rate == 5.0
        args = build_parser().parse_args(["analyze", "out.jsonl", "--windows", "48"])
        assert args.windows == 48

    def test_calibrate_parser(self):
        args = build_parser().parse_args(["calibrate", "--rate", "3"])
        assert args.command == "calibrate"
        assert args.rate == 3.0

    def test_figure4_trace_flag(self, capsys):
        assert main(["figure4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "server" in out and "client" in out  # sequence diagram rails
        assert "data 0.." in out

    def test_trace_analyze_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl.gz")
        assert main(["trace", path, "--rate", "1", "--days", "1"]) == 0
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "global MinRTT p50" in out
