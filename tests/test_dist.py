"""The multi-node dispatch subsystem (``repro.dist``, DESIGN.md §13).

Four layers, each tested against its own contract:

1. **Wire protocol** — length-prefixed frames with magic and type
   validation; truncation and malformation always surface as
   :class:`ProtocolError`, never as a hang or a mis-framed read.
2. **Serialization** — tasks/results pickle round-trip with type-checked
   decode; failures are JSON and can *never* fail to decode.
3. **Worker daemon** — PING/PONG health checks, task execution through
   the same ``_run_shard`` the local pools use, failure replies, budgeted
   lifetime, and the injected-death path (connection severed, no reply).
4. **Dispatch executor** — the ISSUE's acceptance bar: dispatch over two
   daemons is byte-identical to serial on the golden trace for both
   engines; a worker killed mid-run degrades into reassignment (or the
   quarantine ledger when no worker survives) instead of crashing.
"""

from __future__ import annotations

import json
import pathlib
import pickle
import socket
import struct
import subprocess
import sys

import pytest

from repro import faultinject
from repro.dist import (
    DispatchError,
    ProtocolError,
    RemoteShardFailure,
    WorkerDaemon,
)
from repro.dist import protocol
from repro.dist.client import parse_addr, request_shutdown
from repro.dist.serialization import (
    decode_failure,
    decode_result,
    decode_task,
    encode_failure,
    encode_result,
    encode_task,
)
from repro.faultinject import FaultPlan
from repro.obs import MetricsRegistry, RunManifest, activate_metrics
from repro.pipeline import (
    ParallelOptions,
    ShardError,
    StudyDataset,
    build_dataset,
)
from repro.pipeline.io import write_samples
from repro.pipeline.parallel import ShardResult, _run_shard, _ShardTask

from tests.helpers import make_trace_samples
from tests.test_pipeline_parallel import assert_datasets_equal

pytestmark = pytest.mark.dist

STUDY_WINDOWS = 8
DATA = pathlib.Path(__file__).parent / "data"
GOLDEN_TRACE = DATA / "golden_trace.jsonl.gz"


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faultinject.reset()
    yield
    faultinject.reset()


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(600, seed=31, windows=STUDY_WINDOWS)


@pytest.fixture(scope="module")
def serial_dataset(samples):
    return StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))


@pytest.fixture()
def two_daemons():
    with WorkerDaemon() as first, WorkerDaemon() as second:
        yield (first.address, second.address)


def _dispatch_options(addrs, **kwargs) -> ParallelOptions:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("retry_backoff", 0.0)
    return ParallelOptions(
        executor="dispatch", worker_addrs=tuple(addrs), **kwargs
    )


def _make_task(samples, ordinal=0) -> _ShardTask:
    return _ShardTask(
        dataset_kwargs=dict(study_windows=STUDY_WINDOWS),
        indexed_samples=list(enumerate(samples)),
        ordinal=ordinal,
        expected_rows=len(samples),
    )


# --------------------------------------------------------------------- #
# 1. Wire protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    @pytest.fixture()
    def pair(self):
        left, right = socket.socketpair()
        yield left, right
        left.close()
        right.close()

    def test_frame_round_trip(self, pair):
        left, right = pair
        sent = protocol.send_frame(left, protocol.MSG_TASK, b"payload")
        assert sent == protocol.HEADER_BYTES + len(b"payload")
        assert protocol.recv_frame(right) == (protocol.MSG_TASK, b"payload")

    def test_empty_payload(self, pair):
        left, right = pair
        protocol.send_frame(left, protocol.MSG_PING)
        assert protocol.recv_frame(right) == (protocol.MSG_PING, b"")

    def test_bad_magic_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">4sBI", b"XXXX", protocol.MSG_PING, 0))
        with pytest.raises(ProtocolError, match="magic"):
            protocol.recv_frame(right)

    def test_unknown_type_rejected_on_receive(self, pair):
        left, right = pair
        left.sendall(struct.pack(">4sBI", protocol.MAGIC, 99, 0))
        with pytest.raises(ProtocolError, match="unknown message type 99"):
            protocol.recv_frame(right)

    def test_unknown_type_refused_on_send(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="refusing to send"):
            protocol.send_frame(left, 99, b"")

    def test_oversized_length_rejected_without_allocating(self, pair):
        left, right = pair
        left.sendall(
            struct.pack(
                ">4sBI",
                protocol.MAGIC,
                protocol.MSG_TASK,
                protocol.MAX_FRAME_BYTES + 1,
            )
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.recv_frame(right)

    def test_clean_eof_between_frames(self, pair):
        left, right = pair
        left.close()
        assert protocol.recv_frame(right, allow_eof=True) is None
        # Without allow_eof, a close is a protocol error.
        other_left, other_right = socket.socketpair()
        other_left.close()
        with pytest.raises(ProtocolError):
            protocol.recv_frame(other_right)
        other_right.close()

    def test_eof_mid_frame_is_never_clean(self, pair):
        left, right = pair
        header = struct.pack(">4sBI", protocol.MAGIC, protocol.MSG_TASK, 100)
        left.sendall(header + b"only-part")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.recv_frame(right, allow_eof=True)

    def test_protocol_error_is_a_connection_error(self):
        # The client treats a malformed peer exactly like a dead one; a
        # single `except (OSError, ProtocolError)` must catch both.
        assert issubclass(ProtocolError, ConnectionError)


# --------------------------------------------------------------------- #
# 2. Serialization
# --------------------------------------------------------------------- #
class TestSerialization:
    def test_task_round_trip(self, samples):
        task = _make_task(samples[:20], ordinal=3)
        decoded = decode_task(encode_task(task))
        assert decoded.ordinal == 3
        assert decoded.expected_rows == 20
        assert decoded.indexed_samples == task.indexed_samples

    def test_task_decode_type_checked(self):
        with pytest.raises(TypeError, match="not a shard task"):
            decode_task(pickle.dumps(["not", "a", "task"]))

    def test_result_round_trip(self, samples):
        result = _run_shard(_make_task(samples[:50], ordinal=1))
        decoded = decode_result(encode_result(result))
        assert isinstance(decoded, ShardResult)
        assert decoded.ordinal == 1
        assert decoded.rows == result.rows
        assert decoded.filter_stats == result.filter_stats

    def test_result_decode_type_checked(self):
        with pytest.raises(TypeError, match="not a shard result"):
            decode_result(pickle.dumps({"ordinal": 0}))

    def test_failure_round_trip_preserves_type_and_message(self):
        failure = decode_failure(encode_failure(ValueError("bad route")))
        assert isinstance(failure, RemoteShardFailure)
        assert failure.type_name == "ValueError"
        assert failure.message == "bad route"
        assert str(failure) == "ValueError: bad route"

    def test_mangled_failure_payload_still_decodes(self):
        # The whole point of JSON failures: a failure reply can never
        # itself fail to decode, whatever bytes arrive.
        failure = decode_failure(b"\xff\xfenot json at all")
        assert isinstance(failure, RemoteShardFailure)
        assert failure.type_name == "UnknownRemoteError"

    def test_remote_failure_pickles(self):
        original = RemoteShardFailure("TypeError", "arity mismatch")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.type_name == "TypeError"
        assert clone.message == "arity mismatch"
        assert str(clone) == str(original)


# --------------------------------------------------------------------- #
# 3. Worker daemon
# --------------------------------------------------------------------- #
class TestWorkerDaemon:
    def test_ping_pong(self):
        with WorkerDaemon() as daemon:
            with socket.create_connection(parse_addr(daemon.address)) as sock:
                protocol.send_frame(sock, protocol.MSG_PING)
                assert protocol.recv_frame(sock) == (protocol.MSG_PONG, b"")

    def test_executes_task_like_local_run(self, samples):
        task = _make_task(samples[:100])
        expected = _run_shard(task)
        with WorkerDaemon() as daemon:
            with socket.create_connection(parse_addr(daemon.address)) as sock:
                protocol.send_frame(sock, protocol.MSG_TASK, encode_task(task))
                msg_type, payload = protocol.recv_frame(sock)
        assert msg_type == protocol.MSG_RESULT
        result = decode_result(payload)
        assert result.rows == expected.rows
        assert result.aggregations == expected.aggregations
        assert result.metrics.counters == expected.metrics.counters

    def test_shard_failure_becomes_failure_reply(self, samples):
        # A failing shard is the client's retry problem: the daemon
        # replies MSG_FAILURE and stays alive for the next task.
        task = _make_task(samples[:50], ordinal=2)
        plan = FaultPlan(kill_shard={"ordinal": 2, "times": 1})
        with WorkerDaemon() as daemon:
            with faultinject.inject(plan):
                with socket.create_connection(
                    parse_addr(daemon.address)
                ) as sock:
                    protocol.send_frame(
                        sock, protocol.MSG_TASK, encode_task(task)
                    )
                    msg_type, payload = protocol.recv_frame(sock)
                    assert msg_type == protocol.MSG_FAILURE
                    failure = decode_failure(payload)
                    assert failure.type_name == "RuntimeError"
                    assert "injected fault" in failure.message
                    # Same connection, same task: the fault budget is
                    # spent, so the retry succeeds on this daemon.
                    protocol.send_frame(
                        sock, protocol.MSG_TASK, encode_task(task)
                    )
                    msg_type, _ = protocol.recv_frame(sock)
                    assert msg_type == protocol.MSG_RESULT

    def test_request_shutdown(self):
        daemon = WorkerDaemon().start()
        try:
            assert request_shutdown(daemon.address) is True
        finally:
            daemon.shutdown()
        assert request_shutdown(daemon.address) is False  # already gone

    def test_max_tasks_bounds_lifetime(self, samples):
        task = _make_task(samples[:20])
        with WorkerDaemon(max_tasks=1) as daemon:
            with socket.create_connection(parse_addr(daemon.address)) as sock:
                protocol.send_frame(sock, protocol.MSG_TASK, encode_task(task))
                msg_type, _ = protocol.recv_frame(sock)
                assert msg_type == protocol.MSG_RESULT
            assert daemon.tasks_served == 1

    def test_max_tasks_validation(self):
        with pytest.raises(ValueError, match="max_tasks"):
            WorkerDaemon(max_tasks=0)

    def test_double_start_rejected(self):
        with WorkerDaemon() as daemon:
            with pytest.raises(RuntimeError, match="already started"):
                daemon.start()

    def test_port_requires_start(self):
        with pytest.raises(RuntimeError, match="not started"):
            WorkerDaemon().port


# --------------------------------------------------------------------- #
# 4a. Dispatch equivalence (the acceptance bar)
# --------------------------------------------------------------------- #
class TestDispatchEquivalence:
    def test_dispatch_matches_serial_exactly(
        self, samples, serial_dataset, two_daemons
    ):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_dispatch_options(two_daemons),
        )
        assert_datasets_equal(dataset, serial_dataset)
        assert dataset.degraded is None

    def test_data_counters_and_gauges_match_serial(self, samples, two_daemons):
        serial = build_dataset(iter(samples), study_windows=STUDY_WINDOWS)
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=_dispatch_options(two_daemons),
        )
        assert dataset.metrics.counters == serial.metrics.counters
        assert dataset.metrics.gauges == serial.metrics.gauges

    @pytest.mark.parametrize("engine", ["row", "batch"])
    def test_golden_trace_byte_identical_vs_serial(self, two_daemons, engine):
        snapshot = json.loads((DATA / "golden_report.json").read_text())
        serial = build_dataset(
            GOLDEN_TRACE, study_windows=snapshot["study_windows"], engine=engine
        )
        dispatched = build_dataset(
            GOLDEN_TRACE,
            study_windows=snapshot["study_windows"],
            options=_dispatch_options(two_daemons),
            engine=engine,
        )
        assert dispatched.rows == serial.rows
        assert [k for k, _ in dispatched.store.items()] == [
            k for k, _ in serial.store.items()
        ]
        assert dispatched.metrics.counters == serial.metrics.counters
        assert dispatched.metrics.gauges == serial.metrics.gauges

    def test_manifest_dist_section(self, samples, two_daemons):
        registry = MetricsRegistry()
        with activate_metrics(registry):
            build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(two_daemons),
            )
        manifest = RunManifest.collect(command="analyze", registry=registry)
        assert manifest.dist["workers_connected"] == 2
        assert manifest.dist["tasks_dispatched"] == 4
        assert manifest.dist["tasks_completed"] == 4
        assert manifest.dist["tasks_reassigned"] == 0
        assert manifest.dist["bytes_sent"] > 0
        assert manifest.dist["bytes_received"] > 0
        # dist.* counters are execution facts, never sample accounting.
        assert not [
            name
            for name in manifest.sample_accounting()
            if name.startswith("dist.")
        ]

    def test_unreachable_worker_skipped_not_fatal(
        self, samples, serial_dataset, two_daemons
    ):
        registry = MetricsRegistry()
        addrs = (two_daemons[0], "127.0.0.1:1")  # port 1: nothing listens
        with activate_metrics(registry):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(addrs),
            )
        assert_datasets_equal(dataset, serial_dataset)
        assert registry.counter("dist.workers.unreachable") == 1
        assert registry.counter("dist.workers.connected") == 1

    def test_no_reachable_workers_raises(self, samples):
        with pytest.raises(DispatchError, match="no dispatch workers"):
            build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(("127.0.0.1:1", "127.0.0.1:2")),
            )

    def test_options_validation(self):
        with pytest.raises(ValueError, match="requires worker_addrs"):
            ParallelOptions(executor="dispatch")
        with pytest.raises(ValueError, match="only meaningful"):
            ParallelOptions(executor="thread", worker_addrs=("h:1",))
        options = _dispatch_options(("a:1", "b:2", "c:3"), shards=None, workers=1)
        assert options.effective_shards == 3  # one shard per daemon minimum

    @pytest.mark.parametrize(
        "bad", ["nohost", "host:", ":123", "host:abc", "host:0", "host:70000"]
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_addr(bad)

    def test_parse_addr_accepts_host_port(self):
        assert parse_addr("127.0.0.1:8421") == ("127.0.0.1", 8421)


# --------------------------------------------------------------------- #
# 4b. Worker death mid-run (the graceful-degradation acceptance bar)
# --------------------------------------------------------------------- #
class TestDispatchFaults:
    def test_killed_worker_reassigns_to_survivor(
        self, samples, serial_dataset, two_daemons
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_worker={"ordinal": 1, "times": 1})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(two_daemons),
            )
        # The run is clean, not degraded: the survivor absorbed the shard.
        assert dataset.degraded is None
        assert_datasets_equal(dataset, serial_dataset)
        assert registry.counter("fault.injected.worker_kills") == 1
        assert registry.counter("dist.workers.lost") == 1
        assert registry.counter("dist.tasks.reassigned") == 1
        assert registry.counter("fault.shard_retries") == 1

    def test_dropped_connection_reassigns(
        self, samples, serial_dataset, two_daemons
    ):
        registry = MetricsRegistry()
        first_port = two_daemons[0].rpartition(":")[2]
        plan = FaultPlan(
            drop_connection={"addr_substr": f":{first_port}", "times": 1}
        )
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(two_daemons),
            )
        assert dataset.degraded is None
        assert_datasets_equal(dataset, serial_dataset)
        assert registry.counter("fault.injected.connection_drops") == 1
        assert registry.counter("dist.tasks.reassigned") == 1

    def test_sole_worker_death_quarantines_instead_of_crashing(self, samples):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_worker={"ordinal": 0, "times": 1})
        with WorkerDaemon() as daemon:
            with activate_metrics(registry), faultinject.inject(plan):
                dataset = build_dataset(
                    iter(samples),
                    study_windows=STUDY_WINDOWS,
                    options=_dispatch_options((daemon.address,)),
                )
        # Every shard lands in the ledger with a DispatchError naming the
        # situation; the run itself completes.
        ledger = dataset.degraded
        assert ledger is not None
        assert ledger.shards_lost == 4
        assert all(
            "DispatchError" in entry["error"] for entry in ledger.shards
        )
        assert registry.counter("dist.tasks.stranded") == 4
        assert registry.counter("fault.shards_quarantined") == 4
        assert dataset.session_count == 0

    def test_sole_worker_death_under_strict_raises(self, samples):
        plan = FaultPlan(kill_worker={"ordinal": 0, "times": 1})
        with WorkerDaemon() as daemon:
            with faultinject.inject(plan):
                with pytest.raises(ShardError) as excinfo:
                    build_dataset(
                        iter(samples),
                        study_windows=STUDY_WINDOWS,
                        options=_dispatch_options(
                            (daemon.address,), strict=True
                        ),
                    )
        assert isinstance(excinfo.value.cause, DispatchError)

    def test_remote_transient_failure_retried_to_clean_result(
        self, samples, serial_dataset, two_daemons
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": 2})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(two_daemons),
            )
        assert dataset.degraded is None
        assert_datasets_equal(dataset, serial_dataset)
        assert registry.counter("dist.remote_failures") == 2
        assert registry.counter("fault.shard_retries") == 2
        # The workers stayed up throughout: failures were replies.
        assert registry.counter("dist.workers.lost") == 0

    def test_remote_permanent_failure_quarantines_with_remote_type(
        self, samples, two_daemons
    ):
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        with faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options(two_daemons),
            )
        ledger = dataset.degraded
        assert ledger is not None and ledger.shards_lost == 1
        entry = ledger.shards[0]
        assert entry["ordinal"] == 1
        assert entry["attempts"] == 3  # 1 try + 2 retries (default)
        # The remote failure keeps the original worker-side type name.
        assert "RemoteShardFailure" in entry["error"]
        assert "RuntimeError" in entry["error"]
        assert "injected fault" in entry["error"]


# --------------------------------------------------------------------- #
# 5. CLI integration
# --------------------------------------------------------------------- #
class TestDistCLI:
    def test_analyze_dispatch_end_to_end(
        self, samples, tmp_path, capsys, two_daemons
    ):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        write_samples(trace, samples)
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "analyze",
                str(trace),
                "--workers", "2",
                "--executor", "dispatch",
                "--workers-addr", ",".join(two_daemons),
                "--metrics-out", str(manifest_path),
            ]
        )
        assert code == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["shard_plan"]["executor"] == "dispatch"
        assert payload["shard_plan"]["worker_addrs"] == list(two_daemons)
        assert payload["dist"]["workers_connected"] == 2
        assert payload["dist"]["tasks_completed"] == payload["dist"][
            "tasks_dispatched"
        ]

    def test_dispatch_requires_workers_addr(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["analyze", str(tmp_path / "t.jsonl"),
                  "--executor", "dispatch"])

    def test_workers_addr_requires_dispatch(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["analyze", str(tmp_path / "t.jsonl"),
                  "--workers-addr", "127.0.0.1:9"])

    def test_worker_rejects_non_numeric_port(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="non-numeric"):
            main(["worker", "--listen", "127.0.0.1:abc"])

    def test_worker_subprocess_serves_dispatch_run(
        self, samples, serial_dataset
    ):
        # The real deployment shape: `repro worker` in its own process,
        # the dispatch client in this one.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--listen", "127.0.0.1:0"],
            cwd=str(pathlib.Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            addr = banner.strip().rpartition(" ")[2]
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options((addr,), shards=2),
            )
            assert_datasets_equal(dataset, serial_dataset)
            assert request_shutdown(addr) is True
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "served 2 task(s)" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_relative_trace_path_survives_worker_cwd(
        self, samples, serial_dataset, tmp_path, monkeypatch
    ):
        # Regression: file-backed shard tasks used to carry the trace
        # path as given. A relative path resolves against the *worker's*
        # working directory — here a daemon subprocess rooted somewhere
        # else entirely — so every shard failed with FileNotFoundError
        # and the run silently degraded to zero rows. plan_chunks now
        # pins the resolved path client-side.
        write_samples(tmp_path / "trace.jsonl", samples)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--listen", "127.0.0.1:0"],
            cwd=str(pathlib.Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            addr = banner.strip().rpartition(" ")[2]
            monkeypatch.chdir(tmp_path)
            dataset = build_dataset(
                "trace.jsonl",
                study_windows=STUDY_WINDOWS,
                options=_dispatch_options((addr,), shards=2),
            )
            assert dataset.degraded is None
            assert_datasets_equal(dataset, serial_dataset)
            request_shutdown(addr)
            proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
