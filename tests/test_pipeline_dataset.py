"""Tests for dataset building and filtering."""

import pytest

from repro.core.records import HttpVersion, SessionSample, TransactionRecord
from repro.pipeline.dataset import StudyDataset
from repro.pipeline.filters import FilterStats, filter_hosting_providers

from tests.helpers import make_route, make_sample


def hosting_sample(end_time=10.0):
    sample = make_sample(end_time, 40.0)
    sample.client_ip_is_hosting = True
    return sample


class TestFilter:
    def test_drops_hosting(self):
        stats = FilterStats()
        samples = [make_sample(1.0, 40.0), hosting_sample(), make_sample(2.0, 40.0)]
        kept = list(filter_hosting_providers(samples, stats))
        assert len(kept) == 2
        assert stats.dropped_sessions == 1
        assert stats.kept_sessions == 2

    def test_traffic_fraction(self):
        stats = FilterStats()
        keep = make_sample(1.0, 40.0, bytes_sent=980_000)
        drop = hosting_sample()
        drop.bytes_sent = 20_000
        list(filter_hosting_providers([keep, drop], stats))
        assert stats.dropped_traffic_fraction == pytest.approx(0.02)

    def test_empty_stream(self):
        stats = FilterStats()
        assert list(filter_hosting_providers([], stats)) == []
        assert stats.dropped_traffic_fraction == 0.0


class TestStudyDataset:
    def _sample_with_txns(self, end_time=10.0):
        sample = make_sample(end_time, 60.0)
        sample.transactions = [
            TransactionRecord(
                first_byte_time=0.0,
                ack_time=0.12,
                response_bytes=150_000,
                last_packet_bytes=1500,
                cwnd_bytes_at_first_byte=15_000,
            )
        ]
        return sample

    def test_ingest_counts(self):
        ds = StudyDataset(study_windows=96)
        ds.ingest([make_sample(1.0, 40.0), self._sample_with_txns(2.0)])
        assert ds.session_count == 2
        assert len(ds.store) == 1  # same group/window/rank

    def test_hosting_filtered_out(self):
        ds = StudyDataset(study_windows=96)
        ds.ingest([hosting_sample(), make_sample(1.0, 40.0)])
        assert ds.session_count == 1
        assert ds.filter_stats.dropped_sessions == 1

    def test_hdratio_computed_once_and_stored(self):
        ds = StudyDataset(study_windows=96)
        ds.ingest([self._sample_with_txns()])
        row = ds.rows[0]
        assert row.hdratio == 1.0
        agg = ds.store.all_aggregations()[0]
        assert agg.hdratios == [1.0]

    def test_sessions_without_transactions_have_no_hdratio(self):
        ds = StudyDataset(study_windows=96)
        ds.ingest([make_sample(1.0, 40.0)])
        assert ds.rows[0].hdratio is None
        assert ds.hd_rows() == []

    def test_naive_hdratio_optional(self):
        ds = StudyDataset(study_windows=96, compute_naive=True)
        ds.ingest([self._sample_with_txns()])
        assert ds.rows[0].naive_hdratio is not None

        ds_off = StudyDataset(study_windows=96)
        ds_off.ingest([self._sample_with_txns()])
        assert ds_off.rows[0].naive_hdratio is None

    def test_response_sizes_toggle(self):
        with_sizes = StudyDataset(study_windows=96)
        with_sizes.ingest([self._sample_with_txns()])
        assert with_sizes.rows[0].response_sizes == (150_000,)

        without = StudyDataset(study_windows=96, keep_response_sizes=False)
        without.ingest([self._sample_with_txns()])
        assert without.rows[0].response_sizes == ()

    def test_rows_for_continent(self):
        ds = StudyDataset(study_windows=96)
        eu = make_sample(1.0, 40.0)
        eu.client_continent = "EU"
        af = make_sample(2.0, 80.0)
        af.client_continent = "AF"
        ds.ingest([eu, af])
        assert len(ds.rows_for_continent("EU")) == 1
        assert len(ds.rows_for_continent("AF")) == 1

    def test_invalid_study_windows(self):
        with pytest.raises(ValueError):
            StudyDataset(study_windows=0)
