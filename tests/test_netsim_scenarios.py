"""Tests for canned scenarios, instrumentation, and the validation sweep."""

import pytest

from repro.core.goodput import estimate_delivery_rate, max_testable_goodput
from repro.core.hdratio import session_goodput
from repro.netsim.scenarios import run_figure4_scenario, run_transfer
from repro.netsim.validation import (
    SweepConfig,
    effective_min_rtt,
    run_validation_sweep,
)

pytestmark = pytest.mark.netsim

MSS = 1500


class TestFigure4:
    """End-to-end reproduction of the paper's Figure 4 walkthrough."""

    def test_observed_goodputs_match_paper(self):
        result = run_figure4_scenario()
        assert result.observed_goodputs_mbps == pytest.approx(
            [0.4, 2.4, 2.8], rel=0.02
        )

    def test_testable_goodputs_match_paper(self):
        result = run_figure4_scenario()
        assert result.testable_goodputs_mbps == pytest.approx(
            [0.4, 2.8, 2.8], rel=0.01
        )

    def test_min_rtt_is_60ms(self):
        result = run_figure4_scenario()
        assert result.min_rtt_ms == pytest.approx(60.0, rel=0.02)

    def test_hdratio_of_the_session(self):
        # Transactions 2 and 3 can test for HD (2.8 > 2.5 Mbps) and both
        # achieve it under ideal conditions; transaction 1 cannot test.
        result = run_figure4_scenario()
        summary = session_goodput(
            result.result.records, result.result.min_rtt_seconds
        )
        assert summary.tested == 2
        assert summary.achieved == 2
        assert summary.hdratio == 1.0

    def test_wnic_chain_in_simulator(self):
        result = run_figure4_scenario()
        records = result.result.records
        assert records[0].cwnd_bytes_at_first_byte == 10 * MSS
        assert records[1].cwnd_bytes_at_first_byte == 10 * MSS
        # By transaction 3, slow start has grown the window past 20 MSS.
        assert records[2].cwnd_bytes_at_first_byte >= 20 * MSS


class TestInstrumentation:
    def test_delayed_ack_correction_excludes_last_packet(self):
        result = run_transfer([10 * MSS], rtt_ms=60.0, delayed_ack=True)
        record = result.records[0]
        assert record.response_bytes == 10 * MSS
        assert record.measured_bytes == 9 * MSS
        # Measured time must not include the delayed-ACK 40 ms penalty.
        assert record.transfer_time < 0.100

    def test_partial_final_packet_size(self):
        result = run_transfer([10 * MSS + 700], rtt_ms=60.0)
        assert result.records[0].last_packet_bytes == 700

    def test_single_packet_response_has_no_measured_bytes(self):
        result = run_transfer([800], rtt_ms=60.0)
        record = result.records[0]
        assert record.measured_bytes == 0

    def test_sequential_transactions_disjoint_records(self):
        result = run_transfer([5 * MSS, 5 * MSS, 5 * MSS], rtt_ms=40.0)
        assert len(result.records) == 3
        times = [r.first_byte_time for r in result.records]
        assert times == sorted(times)
        # Each later transaction starts only after the previous final ACK.
        for (f1, a1, _), (f2, _, _) in zip(result.spans, result.spans[1:]):
            assert f2 >= a1 - 1e-9

    def test_total_bytes(self):
        result = run_transfer([5 * MSS, 3 * MSS], rtt_ms=40.0)
        assert result.total_bytes == 8 * MSS

    def test_empty_responses_rejected(self):
        with pytest.raises(ValueError):
            run_transfer([])


class TestGoodputAgainstSimulator:
    """The estimator consuming simulator output (mini §3.2.3 checks)."""

    @pytest.mark.parametrize("bw", [1.0, 2.5, 5.0])
    def test_estimate_never_exceeds_bottleneck(self, bw):
        result = run_transfer(
            [300 * MSS], bottleneck_mbps=bw, rtt_ms=60.0, delayed_ack=False
        )
        record = result.records[0]
        estimated = estimate_delivery_rate(
            record.measured_bytes,
            record.transfer_time,
            record.cwnd_bytes_at_first_byte,
            result.min_rtt_seconds,
        )
        assert estimated * 8 / 1e6 <= bw * (1 + 1e-6)

    def test_estimate_close_to_bottleneck_for_long_transfer(self):
        result = run_transfer(
            [400 * MSS], bottleneck_mbps=2.0, rtt_ms=60.0, delayed_ack=False
        )
        record = result.records[0]
        estimated = estimate_delivery_rate(
            record.measured_bytes,
            record.transfer_time,
            record.cwnd_bytes_at_first_byte,
            result.min_rtt_seconds,
        )
        assert estimated * 8 / 1e6 == pytest.approx(2.0, rel=0.10)

    def test_loss_reduces_estimated_goodput(self):
        clean = run_transfer(
            [200 * MSS], bottleneck_mbps=5.0, rtt_ms=60.0, delayed_ack=False
        )
        lossy = run_transfer(
            [200 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=60.0,
            delayed_ack=False,
            loss_probability=0.05,
            seed=23,
        )

        def estimate(result):
            record = result.records[0]
            return estimate_delivery_rate(
                record.measured_bytes,
                record.transfer_time,
                record.cwnd_bytes_at_first_byte,
                result.min_rtt_seconds,
            )

        assert estimate(lossy) < estimate(clean)

    def test_hd_session_through_hd_capable_path(self):
        result = run_transfer(
            [100 * MSS, 100 * MSS],
            bottleneck_mbps=10.0,
            rtt_ms=40.0,
            delayed_ack=True,
        )
        summary = session_goodput(result.records, result.min_rtt_seconds)
        assert summary.hdratio == 1.0

    def test_non_hd_path_fails_hd(self):
        result = run_transfer(
            [100 * MSS, 100 * MSS],
            bottleneck_mbps=1.0,  # below the 2.5 Mbps target
            rtt_ms=40.0,
        )
        summary = session_goodput(result.records, result.min_rtt_seconds)
        assert summary.tested >= 1
        assert summary.hdratio == 0.0


class TestAckPathImpairments:
    """Regression tests: the ACK return path used to be built loss- and
    jitter-free regardless of the scenario's impairments, so reverse-path
    damage was silently unmodellable."""

    def test_defaults_leave_ack_path_clean(self):
        # Explicit zeros must be byte-identical to the historical behavior.
        baseline = run_transfer([100 * MSS], rtt_ms=60.0, seed=5)
        explicit = run_transfer(
            [100 * MSS],
            rtt_ms=60.0,
            seed=5,
            ack_loss_probability=0.0,
            ack_jitter_ms=0.0,
        )
        assert explicit.completion_time == baseline.completion_time
        assert explicit.retransmits == baseline.retransmits

    def test_ack_loss_slows_the_transfer(self):
        clean = run_transfer(
            [200 * MSS], bottleneck_mbps=5.0, rtt_ms=60.0, seed=9
        )
        lossy_acks = run_transfer(
            [200 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=60.0,
            seed=9,
            ack_loss_probability=0.2,
        )
        assert lossy_acks.total_bytes == clean.total_bytes
        assert lossy_acks.completion_time > clean.completion_time

    def test_ack_jitter_inflates_min_rtt(self):
        # RTT is sampled at the sender, so reverse-path jitter must show up
        # in MinRTT — exactly the asymmetry §3.2.5 worries about.
        clean = run_transfer([100 * MSS], rtt_ms=60.0, seed=4)
        jittery = run_transfer(
            [100 * MSS], rtt_ms=60.0, seed=4, ack_jitter_ms=30.0
        )
        assert jittery.min_rtt_seconds >= clean.min_rtt_seconds

    def test_ack_loss_probability_validated(self):
        with pytest.raises(ValueError):
            run_transfer([MSS], ack_loss_probability=1.5)


class TestQuicIshTransfers:
    """0-RTT handshakes and independent streams (the QUIC-ish variant)."""

    def test_zero_rtt_saves_a_round_trip(self):
        gated = run_transfer(
            [50 * MSS], rtt_ms=80.0, handshake_bytes=500
        )
        zero_rtt = run_transfer(
            [50 * MSS],
            rtt_ms=80.0,
            handshake_bytes=500,
            zero_rtt_handshake=True,
        )
        assert zero_rtt.total_bytes == gated.total_bytes
        # The first response no longer waits for the handshake ACK.
        assert zero_rtt.completion_time < gated.completion_time
        assert (
            zero_rtt.records[0].first_byte_time
            < gated.records[0].first_byte_time
        )

    def test_independent_streams_overlap(self):
        serial = run_transfer(
            [40 * MSS, 40 * MSS, 40 * MSS], bottleneck_mbps=5.0, rtt_ms=60.0
        )
        multiplexed = run_transfer(
            [40 * MSS, 40 * MSS, 40 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=60.0,
            independent_streams=True,
        )
        assert multiplexed.total_bytes == serial.total_bytes
        # Serial transactions wait for the previous final ACK; independent
        # streams share the connection from the start and finish sooner.
        assert multiplexed.completion_time < serial.completion_time
        first_bytes = [r.first_byte_time for r in multiplexed.records]
        assert max(first_bytes) - min(first_bytes) < 0.5


class TestEffectiveMinRtt:
    """Regression tests: the sweep used ``measured or configured``, so a
    legitimately measured 0.0 s MinRTT fell back to the configured path RTT."""

    def test_measured_zero_is_respected(self):
        assert effective_min_rtt(0.0, 20.0) == 0.0

    def test_missing_measurement_falls_back_to_configured(self):
        assert effective_min_rtt(None, 20.0) == pytest.approx(0.020)

    def test_measured_value_wins_over_configured(self):
        assert effective_min_rtt(0.055, 20.0) == pytest.approx(0.055)


class TestValidationSweep:
    def test_small_sweep_properties(self):
        config = SweepConfig(
            bottleneck_mbps=(1.0, 2.5),
            rtt_ms=(40.0, 100.0),
            initial_cwnd_packets=(10, 25),
            transfer_packets=(50, 200),
        )
        result = run_validation_sweep(config)
        assert len(result.points) == config.count == 16
        testing = result.testing_points
        assert testing  # some configurations must be able to test
        assert not result.overestimates
        # Errors should be small for these comfortable configurations.
        assert result.relative_error_percentile(99) < 0.10

    def test_untestable_configs_flagged(self):
        # 1-packet transfers can never test a 5 Mbps bottleneck.
        config = SweepConfig(
            bottleneck_mbps=(5.0,),
            rtt_ms=(100.0,),
            initial_cwnd_packets=(10,),
            transfer_packets=(1,),
        )
        result = run_validation_sweep(config)
        assert not result.points[0].can_test_bottleneck
        assert result.points[0].relative_error is None

    @pytest.mark.parametrize("cc", ["cubic", "bbr"])
    def test_sweep_runs_per_congestion_control(self, cc):
        config = SweepConfig(
            bottleneck_mbps=(1.0, 2.5),
            rtt_ms=(40.0,),
            initial_cwnd_packets=(10,),
            transfer_packets=(100, 200),
        )
        result = run_validation_sweep(config, congestion_control=cc)
        assert result.congestion_control == cc
        assert len(result.points) == config.count
        assert result.testing_points
        # The estimator must stay conservative regardless of the CC regime.
        assert not result.overestimates

    def test_unknown_congestion_control_rejected(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            run_validation_sweep(congestion_control="vegas")
