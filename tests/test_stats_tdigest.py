"""Tests for the merging t-digest."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import TDigest


class TestBasics:
    def test_empty_digest_rejects_queries(self):
        digest = TDigest()
        with pytest.raises(ValueError):
            digest.quantile(0.5)
        with pytest.raises(ValueError):
            digest.cdf(1.0)

    def test_single_value(self):
        digest = TDigest()
        digest.add(42.0)
        assert digest.quantile(0.0) == 42.0
        assert digest.quantile(0.5) == 42.0
        assert digest.quantile(1.0) == 42.0

    def test_rejects_nan_and_nonpositive_weight(self):
        digest = TDigest()
        with pytest.raises(ValueError):
            digest.add(float("nan"))
        with pytest.raises(ValueError):
            digest.add(1.0, weight=0.0)

    def test_rejects_tiny_compression(self):
        with pytest.raises(ValueError):
            TDigest(compression=5)

    def test_len_counts_weight(self):
        digest = TDigest()
        digest.add_many(range(100))
        assert len(digest) == 100
        assert digest.total_weight == 100

    def test_extremes_are_exact(self):
        digest = TDigest.of([5.0, 1.0, 9.0, 3.0])
        assert digest.quantile(0.0) == 1.0
        assert digest.quantile(1.0) == 9.0


class TestAccuracy:
    def test_median_of_uniform(self):
        rng = random.Random(1)
        values = [rng.random() for _ in range(20000)]
        digest = TDigest.of(values)
        assert abs(digest.median() - 0.5) < 0.01

    def test_tail_quantiles_of_uniform(self):
        rng = random.Random(2)
        values = [rng.random() for _ in range(20000)]
        digest = TDigest.of(values)
        assert abs(digest.quantile(0.99) - 0.99) < 0.005
        assert abs(digest.quantile(0.01) - 0.01) < 0.005

    def test_lognormal_median(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(3.0, 1.0) for _ in range(20000)]
        digest = TDigest.of(values)
        exact = sorted(values)[10000]
        assert abs(digest.median() - exact) / exact < 0.03

    def test_cdf_roundtrip(self):
        rng = random.Random(4)
        values = [rng.gauss(0, 1) for _ in range(10000)]
        digest = TDigest.of(values)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            x = digest.quantile(q)
            assert abs(digest.cdf(x) - q) < 0.02

    def test_centroid_count_is_bounded(self):
        digest = TDigest(compression=100)
        digest.add_many(range(50000))
        assert digest.centroid_count < 300

    def test_weighted_add(self):
        digest = TDigest()
        digest.add(0.0, weight=900)
        digest.add(100.0, weight=100)
        # 90% of the weight sits at 0. With only two (far-apart) centroids
        # the linear interpolation between centroid midpoints is crude, but
        # the skew must be clearly visible and the extremes exact.
        assert digest.cdf(50.0) > 0.6
        assert digest.cdf(-1.0) == 0.0
        assert digest.cdf(100.0) == 1.0
        assert digest.quantile(0.5) < 50.0


class TestMerge:
    def test_merge_preserves_weight_and_extremes(self):
        a = TDigest.of([1.0, 2.0, 3.0])
        b = TDigest.of([10.0, 20.0])
        a.merge(b)
        assert a.total_weight == 5
        assert a.quantile(0.0) == 1.0
        assert a.quantile(1.0) == 20.0

    def test_merge_matches_pooled_median(self):
        rng = random.Random(5)
        left = [rng.gauss(10, 2) for _ in range(5000)]
        right = [rng.gauss(20, 2) for _ in range(5000)]
        merged = TDigest.of(left).merge(TDigest.of(right))
        pooled = sorted(left + right)[5000]
        assert abs(merged.median() - pooled) < 0.3


def _state(digest: TDigest):
    digest._compress()
    return (
        tuple(digest._means),
        tuple(digest._weights),
        digest._total_weight,
        digest._min,
        digest._max,
    )


class TestMergeLaws:
    """Order-independence of merged digest state.

    ``merge`` must be commutative on the *exact centroid state*: both
    orders see the identical multiset of weighted points (centroids plus
    raw buffers from both sides) and cluster it deterministically.
    Associativity is exact for total weight and extremes, and holds at the
    t-digest approximation level for quantiles (each pairwise merge
    re-clusters, so grouping changes centroid boundaries slightly).
    """

    values = st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=300
    )

    @settings(max_examples=40, deadline=None)
    @given(left=values, right=values)
    def test_merge_is_commutative_on_exact_state(self, left, right):
        ab = TDigest.of(left).merge(TDigest.of(right))
        ba = TDigest.of(right).merge(TDigest.of(left))
        assert _state(ab) == _state(ba)

    @settings(max_examples=40, deadline=None)
    @given(left=values, right=values)
    def test_merge_does_not_mutate_other(self, left, right):
        target = TDigest.of(left)
        other = TDigest.of(right)
        before = (
            list(other._means),
            list(other._weights),
            list(other._buffer),
            other._total_weight,
        )
        target.merge(other)
        assert (
            list(other._means),
            list(other._weights),
            list(other._buffer),
            other._total_weight,
        ) == before

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=300),
        b=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=300),
        c=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=300),
    )
    def test_merge_is_associative(self, a, b, c):
        left = TDigest.of(a).merge(TDigest.of(b)).merge(TDigest.of(c))
        right = TDigest.of(a).merge(TDigest.of(b).merge(TDigest.of(c)))
        # Exact invariants under any grouping.
        assert left.total_weight == right.total_weight
        assert left.quantile(0.0) == right.quantile(0.0)
        assert left.quantile(1.0) == right.quantile(1.0)
        # Quantile state agrees to t-digest accuracy (relative to spread).
        spread = max(left.quantile(1.0) - left.quantile(0.0), 1e-9)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert abs(left.quantile(q) - right.quantile(q)) <= 0.05 * spread

    def test_merge_with_empty_is_identity(self):
        digest = TDigest.of([1.0, 2.0, 3.0])
        before = _state(digest)
        digest.merge(TDigest())
        assert _state(digest) == before
        empty = TDigest()
        empty.merge(TDigest.of([1.0, 2.0, 3.0]))
        assert empty.median() == 2.0
        both_empty = TDigest().merge(TDigest())
        assert both_empty.total_weight == 0

    def test_ties_with_unequal_weights_stay_commutative(self):
        a = TDigest()
        a.add(5.0, 1.0)
        a.add(5.0, 7.0)
        b = TDigest()
        b.add(5.0, 3.0)
        b.add(4.0, 2.0)
        assert _state(TDigest.of([]).merge(a).merge(b)) == _state(
            TDigest.of([]).merge(b).merge(a)
        )


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=500))
def test_quantiles_within_data_range(values):
    digest = TDigest.of(values)
    lo, hi = min(values), max(values)
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        estimate = digest.quantile(q)
        assert lo - 1e-9 <= estimate <= hi + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=2, max_size=300))
def test_quantile_function_is_monotone(values):
    digest = TDigest.of(values)
    qs = [i / 20 for i in range(21)]
    estimates = [digest.quantile(q) for q in qs]
    assert estimates == sorted(estimates)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=30, max_size=300),
    st.floats(min_value=0, max_value=100),
)
def test_cdf_within_unit_interval_and_monotone(values, probe):
    digest = TDigest.of(values)
    assert 0.0 <= digest.cdf(probe) <= 1.0
    assert digest.cdf(min(values) - 1) == 0.0
    assert digest.cdf(max(values) + 1) == 1.0
