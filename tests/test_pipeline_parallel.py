"""Equivalence tests: the sharded parallel pipeline vs the serial pass.

The contract under test (see ``repro/pipeline/parallel.py``): for any shard
count and any executor, ``build_dataset`` produces a ``StudyDataset`` whose
state — rows in stream order, aggregation-store insertion order, raw
per-aggregation value lists, filter counters — is **exactly** equal to the
serial pass, and therefore every derived statistic (per-group medians,
McKean–Schrader CIs, window tables, figure results) is exactly equal too.
"""

import math
import pickle

import pytest

from repro.core.records import UserGroupKey
from repro.pipeline import (
    ParallelOptions,
    ShardError,
    StudyDataset,
    build_dataset,
    fig6_global_performance,
    fig8_degradation,
    fig9_opportunity,
)
from repro.pipeline.io import write_samples
from repro.pipeline.parallel import (
    LOCAL_EXECUTORS,
    RemoteCause,
    shard_of,
    shard_samples,
)

from tests.helpers import make_trace_samples

STUDY_WINDOWS = 8


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(600, seed=11, windows=STUDY_WINDOWS)


@pytest.fixture(scope="module")
def serial_dataset(samples):
    return StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))


@pytest.fixture(scope="module")
def trace_paths(samples, tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    plain = root / "trace.jsonl"
    gz = root / "trace.jsonl.gz"
    write_samples(plain, samples)
    write_samples(gz, samples)
    return {"plain": plain, "gz": gz}


def assert_datasets_equal(parallel: StudyDataset, serial: StudyDataset) -> None:
    """Exact-state equality, then derived-result equality."""
    # Session rows: same rows, same stream order.
    assert parallel.rows == serial.rows
    assert parallel.filter_stats == serial.filter_stats
    # Aggregation store: same keys in the same insertion order, with
    # identical raw value lists (-> identical medians and CIs).
    parallel_items = parallel.store.items()
    serial_items = serial.store.items()
    assert [key for key, _ in parallel_items] == [key for key, _ in serial_items]
    for (_, ours), (_, theirs) in zip(parallel_items, serial_items):
        assert ours.min_rtts_ms == theirs.min_rtts_ms
        assert ours.hdratios == theirs.hdratios
        assert ours.traffic_bytes == theirs.traffic_bytes
        assert ours.session_count == theirs.session_count
        assert ours.route == theirs.route
    # Window tables.
    assert parallel.store.windows() == serial.store.windows()
    for group in serial.store.groups():
        assert parallel.store.group_windows(group) == serial.store.group_windows(group)
    # Figure-level results (medians, CI-gated weighted CDFs).
    fig6_p = fig6_global_performance(parallel)
    fig6_s = fig6_global_performance(serial)
    assert fig6_p.minrtt_all.xs == fig6_s.minrtt_all.xs
    assert fig6_p.hdratio_all.xs == fig6_s.hdratio_all.xs
    assert fig6_p.median_minrtt == fig6_s.median_minrtt
    for fig in (fig8_degradation, fig9_opportunity):
        result_p, result_s = fig(parallel), fig(serial)
        for metric in ("minrtt", "hdratio"):
            cdf_p, cdf_s = getattr(result_p, metric), getattr(result_s, metric)
            assert cdf_p.differences == cdf_s.differences
            assert cdf_p.ci_lows == cdf_s.ci_lows
            assert cdf_p.ci_highs == cdf_s.ci_highs
            assert cdf_p.weights == cdf_s.weights
            assert cdf_p.valid_traffic == cdf_s.valid_traffic
            assert cdf_p.total_traffic == cdf_s.total_traffic


# --------------------------------------------------------------------- #
# In-memory (group-sharded) equivalence
# --------------------------------------------------------------------- #
class TestInMemoryEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_serial_executor(self, samples, serial_dataset, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=shards, executor="serial"),
        )
        assert_datasets_equal(dataset, serial_dataset)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_thread_executor(self, samples, serial_dataset, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=4, shards=shards, executor="thread"),
        )
        assert_datasets_equal(dataset, serial_dataset)

    def test_process_executor(self, samples, serial_dataset):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=4, executor="process"),
        )
        assert_datasets_equal(dataset, serial_dataset)

    @pytest.mark.slow
    @pytest.mark.parametrize("executor", LOCAL_EXECUTORS)
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_full_matrix(self, samples, serial_dataset, executor, shards):
        dataset = build_dataset(
            iter(samples),
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=4, shards=shards, executor=executor),
        )
        assert_datasets_equal(dataset, serial_dataset)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_traces(self, seed):
        randomized = make_trace_samples(400, seed=seed, windows=STUDY_WINDOWS)
        serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(randomized))
        for executor in LOCAL_EXECUTORS:
            for shards in (1, 2, 4, 8):
                dataset = build_dataset(
                    iter(randomized),
                    study_windows=STUDY_WINDOWS,
                    options=ParallelOptions(
                        workers=2, shards=shards, executor=executor
                    ),
                )
                assert_datasets_equal(dataset, serial)


# --------------------------------------------------------------------- #
# File-backed (chunk-sharded) equivalence
# --------------------------------------------------------------------- #
class TestFileEquivalence:
    @pytest.mark.parametrize("kind,shards", [("plain", 1), ("plain", 3), ("gz", 2)])
    def test_chunked_serial(self, trace_paths, serial_dataset, kind, shards):
        dataset = build_dataset(
            trace_paths[kind],
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=shards, executor="serial"),
        )
        assert_datasets_equal(dataset, serial_dataset)

    def test_chunked_process(self, trace_paths, serial_dataset):
        dataset = build_dataset(
            trace_paths["plain"],
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=2, shards=3, executor="process"),
        )
        assert_datasets_equal(dataset, serial_dataset)

    @pytest.mark.slow
    @pytest.mark.parametrize("kind", ["plain", "gz"])
    @pytest.mark.parametrize("executor", LOCAL_EXECUTORS)
    @pytest.mark.parametrize("shards", [1, 2, 5, 8])
    def test_full_matrix(self, trace_paths, serial_dataset, kind, executor, shards):
        dataset = build_dataset(
            trace_paths[kind],
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=4, shards=shards, executor=executor),
        )
        assert_datasets_equal(dataset, serial_dataset)


# --------------------------------------------------------------------- #
# Mechanics
# --------------------------------------------------------------------- #
class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        group = UserGroupKey(pop="ams1", prefix="203.0.112.0/20", country="NL")
        first = shard_of(group, 7)
        assert 0 <= first < 7
        assert all(shard_of(group, 7) == first for _ in range(5))

    def test_shard_of_rejects_bad_count(self):
        group = UserGroupKey(pop="a", prefix="p", country="c")
        with pytest.raises(ValueError):
            shard_of(group, 0)

    def test_shard_samples_partitions_and_preserves_order(self, samples):
        shards = shard_samples(iter(samples), 4)
        assert sum(len(shard) for shard in shards) == len(samples)
        seen = sorted(index for shard in shards for index, _ in shard)
        assert seen == list(range(len(samples)))
        for shard in shards:
            indices = [index for index, _ in shard]
            assert indices == sorted(indices)
        # Same group -> same shard.
        by_group = {}
        for shard_id, shard in enumerate(shards):
            for _, sample in shard:
                key = (sample.pop, sample.route.prefix, sample.client_country)
                assert by_group.setdefault(key, shard_id) == shard_id

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ParallelOptions(workers=0)
        with pytest.raises(ValueError):
            ParallelOptions(workers=1, shards=0)
        with pytest.raises(ValueError):
            ParallelOptions(workers=1, executor="gpu")
        assert ParallelOptions(workers=3).effective_shards == 3
        assert ParallelOptions(workers=3, shards=5).effective_shards == 5

    def test_empty_source(self):
        dataset = build_dataset(
            iter([]),
            study_windows=4,
            options=ParallelOptions(workers=2, shards=4, executor="serial"),
        )
        assert dataset.session_count == 0
        assert len(dataset.store) == 0

    def test_missing_route_fails_fast_under_strict(self, samples):
        # Under strict mode a broken sample still fails the build, wrapped
        # in a ShardError naming the shard (the default policy quarantines
        # the shard instead; see tests/test_fault_tolerance.py).
        broken = [samples[0]]
        broken[0] = type(broken[0])(
            **{
                **broken[0].__dict__,
                "route": None,
                "transactions": [],
                "client_ip_is_hosting": False,
            }
        )
        with pytest.raises(ShardError, match="route") as excinfo:
            build_dataset(
                iter(broken),
                study_windows=STUDY_WINDOWS,
                options=ParallelOptions(
                    workers=2, shards=2, executor="serial", strict=True
                ),
            )
        assert excinfo.value.shard_id == 0
        assert isinstance(excinfo.value.cause, ValueError)

    def test_dataset_kwargs_forwarded(self, samples):
        dataset = build_dataset(
            iter(samples[:50]),
            study_windows=STUDY_WINDOWS,
            keep_response_sizes=False,
            compute_naive=True,
            window_seconds=3600.0,
            options=ParallelOptions(workers=2, shards=2, executor="serial"),
        )
        serial = StudyDataset(
            study_windows=STUDY_WINDOWS,
            keep_response_sizes=False,
            compute_naive=True,
            window_seconds=3600.0,
        ).ingest(iter(samples[:50]))
        assert dataset.rows == serial.rows
        assert [k for k, _ in dataset.store.items()] == [
            k for k, _ in serial.store.items()
        ]
        assert dataset.window_seconds == 3600.0


# --------------------------------------------------------------------- #
# ShardError transport: the error must survive any pickle boundary
# --------------------------------------------------------------------- #
class _ArityBomb(Exception):
    """Pickles fine, explodes on load: default exception reduction calls
    ``cls(formatted_message)``, the wrong arity for this constructor —
    the classic third-party-exception transport failure."""

    def __init__(self, code, detail):
        super().__init__(f"{code}: {detail}")
        self.code = code


class TestShardErrorTransport:
    def test_picklable_cause_rides_along_unchanged(self):
        error = ShardError(3, ValueError("bad route"), attempts=2)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard_id == 3
        assert clone.attempts == 2
        assert isinstance(clone.cause, ValueError)
        assert str(clone.cause) == "bad route"
        assert "shard 3 failed after 2 attempt(s)" in str(clone)

    def test_load_poisoning_cause_is_stringified(self):
        # The regression: ShardError wrapping an exception that pickles
        # but cannot un-pickle used to poison the whole error in transit
        # (a process-pool future would raise on result pickup). The cause
        # must travel as a stringified RemoteCause instead.
        error = ShardError(1, _ArityBomb("E42", "detail text"), attempts=3)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard_id == 1
        assert clone.attempts == 3
        assert isinstance(clone.cause, RemoteCause)
        assert clone.cause.type_name == "_ArityBomb"
        assert "E42: detail text" in clone.cause.message
        # The original type stays visible in the rendered error text.
        assert "_ArityBomb" in str(clone)

    def test_dump_failing_cause_is_stringified(self):
        class Local(Exception):  # unpicklable: not importable by qualname
            pass

        error = ShardError(0, Local("nested"), attempts=1)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone.cause, RemoteCause)
        assert clone.cause.type_name == "Local"
        assert clone.cause.message == "nested"

    def test_remote_cause_round_trips_exactly(self):
        cause = RemoteCause("TimeoutError", "socket timed out")
        clone = pickle.loads(pickle.dumps(cause))
        assert clone.type_name == "TimeoutError"
        assert clone.message == "socket timed out"
        assert str(clone) == "TimeoutError: socket timed out"

    def test_double_pickle_is_stable(self):
        # Ledger entries can cross more than one boundary (worker ->
        # client -> manifest collector); a second trip must not re-wrap.
        error = ShardError(2, _ArityBomb("E1", "x"), attempts=1)
        once = pickle.loads(pickle.dumps(error))
        twice = pickle.loads(pickle.dumps(once))
        assert isinstance(twice.cause, RemoteCause)
        assert twice.cause.type_name == once.cause.type_name
        assert twice.cause.message == once.cause.message
