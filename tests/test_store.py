"""Tests for the columnar trace store (encodings, writer, reader, pruning)."""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.pipeline.io import read_samples, write_samples
from repro.store import (
    DEFAULT_BAND_WINDOWS,
    STORE_FORMAT_VERSION,
    ScanFilter,
    StoreChunk,
    TraceStoreReader,
    TraceStoreWriter,
    append_to_store,
    is_store_path,
    read_store_chunk,
    write_store,
)
from repro.store.encoding import (
    compress_block,
    decode_bitmap,
    decode_delta_varints,
    decode_f64,
    decode_i64,
    decode_string_dict,
    decode_varints,
    decompress_block,
    encode_bitmap,
    encode_delta_varints,
    encode_f64,
    encode_i64,
    encode_string_dict,
    encode_varints,
)
from repro.store.schema import COLUMNS, decode_rows, encode_rows
from repro.store.writer import MANIFEST_NAME

from tests.helpers import make_trace_samples


# --------------------------------------------------------------------- #
# Column codecs
# --------------------------------------------------------------------- #
class TestEncodings:
    def test_f64_round_trip(self):
        values = [0.0, -1.5, 3.14159, 1e300, -1e-300, 42.0]
        assert list(decode_f64(encode_f64(values))) == values

    def test_i64_round_trip(self):
        values = [0, 1, -1, 2**62, -(2**62), 1234567]
        assert list(decode_i64(encode_i64(values))) == values

    def test_varint_round_trip(self):
        values = [0, 1, 127, 128, 300, 2**40, 16383, 16384]
        assert decode_varints(encode_varints(values)) == values

    def test_varint_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_varints([-1])

    def test_varint_rejects_truncated(self):
        payload = encode_varints([2**40])
        with pytest.raises(ValueError):
            decode_varints(payload[:-1])

    def test_delta_varint_round_trip(self):
        values = [5, 3, 3, 100, -7, 0, 2**64, -(2**64)]
        assert decode_delta_varints(encode_delta_varints(values)) == values

    def test_bitmap_round_trip(self):
        for values in ([], [True], [False], [True, False] * 9 + [True]):
            assert decode_bitmap(encode_bitmap(values)) == values

    def test_string_dict_round_trip(self):
        values = ["ams1", "sjc1", "ams1", "", "gru1", "ams1", "héllo"]
        assert decode_string_dict(encode_string_dict(values)) == values

    def test_compress_block_raw_for_small_payloads(self):
        data, codec = compress_block(b"tiny", True)
        assert codec == "raw" and data == b"tiny"

    def test_compress_block_zlib_when_it_shrinks(self):
        payload = b"abcd" * 100
        data, codec = compress_block(payload, True)
        assert codec == "zlib" and len(data) < len(payload)
        assert decompress_block(data, codec) == payload

    def test_compress_disabled(self):
        payload = b"abcd" * 100
        data, codec = compress_block(payload, False)
        assert codec == "raw" and data == payload

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            decompress_block(b"", "lz77")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**70)))
    def test_varint_property(self, values):
        assert decode_varints(encode_varints(values)) == values

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**70), max_value=2**70)))
    def test_delta_varint_property(self, values):
        assert decode_delta_varints(encode_delta_varints(values)) == values

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(max_size=6)))
    def test_string_dict_property(self, values):
        assert decode_string_dict(encode_string_dict(values)) == values

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans()))
    def test_bitmap_property(self, values):
        assert decode_bitmap(encode_bitmap(values)) == values


class TestSchema:
    def test_rows_round_trip_losslessly(self):
        rows = list(enumerate(make_trace_samples(120, seed=3)))
        for compress in (True, False):
            payload, blocks = encode_rows(rows, compress=compress)
            assert decode_rows(payload, blocks) == rows

    def test_every_column_has_a_block(self):
        rows = list(enumerate(make_trace_samples(10, seed=4)))
        _, blocks = encode_rows(rows)
        assert [b["column"] for b in blocks] == [name for name, _ in COLUMNS]

    def test_empty_rows(self):
        payload, blocks = encode_rows([])
        assert decode_rows(payload, blocks) == []


# --------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------- #
class TestWriter:
    def test_write_creates_manifest_and_data(self, tmp_path):
        samples = make_trace_samples(200, seed=5)
        store = tmp_path / "t.store"
        assert write_store(store, samples) == 200
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        assert manifest["row_count"] == 200
        assert manifest["format"] == "repro-store"
        assert (store / manifest["data_file"]).stat().st_size == manifest[
            "data_bytes"
        ]
        # Partitions tile data.bin exactly, in offset order.
        offset = 0
        for partition in manifest["partitions"]:
            assert partition["offset"] == offset
            offset += partition["length"]
        assert offset == manifest["data_bytes"]
        assert sum(p["rows"] for p in manifest["partitions"]) == 200

    def test_partitions_keyed_by_pop_and_band(self, tmp_path):
        samples = make_trace_samples(300, seed=6)
        store = tmp_path / "t.store"
        write_store(store, samples)
        reader = TraceStoreReader(store)
        writer = TraceStoreWriter(tmp_path / "unused.store")
        for partition in reader.partitions:
            for _, sample in reader.decode_partition(partition):
                assert sample.pop == partition["pop"]
                assert writer.band_of(sample) == partition["band"]

    def test_partition_stats_are_exact(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(150, seed=7))
        reader = TraceStoreReader(store)
        for partition in reader.partitions:
            rows = reader.decode_partition(partition)
            stats = partition["stats"]
            assert stats["min_seq"] == min(seq for seq, _ in rows)
            assert stats["max_seq"] == max(seq for seq, _ in rows)
            assert stats["min_end_time"] == min(s.end_time for _, s in rows)
            assert stats["max_end_time"] == max(s.end_time for _, s in rows)
            assert stats["countries"] == sorted(
                {s.client_country for _, s in rows}
            )

    def test_layout_is_deterministic(self, tmp_path):
        samples = make_trace_samples(100, seed=8)
        a, b = tmp_path / "a.store", tmp_path / "b.store"
        write_store(a, samples)
        write_store(b, samples)
        assert (a / "data.bin").read_bytes() == (b / "data.bin").read_bytes()
        assert (a / MANIFEST_NAME).read_bytes() == (
            b / MANIFEST_NAME
        ).read_bytes()

    def test_writer_counters(self, tmp_path):
        metrics = MetricsRegistry()
        write_store(
            tmp_path / "t.store", make_trace_samples(80, seed=9), metrics=metrics
        )
        counters = metrics.counters
        assert counters["store.rows.written"] == 80
        assert counters["io.rows_written"] == 80
        assert counters["store.partitions.written"] > 1
        assert counters["store.bytes.written"] > 0

    def test_closed_writer_rejects_use(self, tmp_path):
        writer = TraceStoreWriter(tmp_path / "t.store")
        writer.add_all(make_trace_samples(5, seed=10))
        writer.close()
        with pytest.raises(ValueError):
            writer.add(make_trace_samples(1, seed=11)[0])
        with pytest.raises(ValueError):
            writer.close()

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            TraceStoreWriter(tmp_path / "t.store", band_windows=0)
        with pytest.raises(ValueError):
            TraceStoreWriter(tmp_path / "t.store", window_seconds=0.0)

    def test_is_store_path(self, tmp_path):
        store = tmp_path / "t.store"
        assert is_store_path(store)  # .store suffix, even before it exists
        assert not is_store_path(tmp_path / "t.jsonl")
        write_store(tmp_path / "noext", make_trace_samples(3, seed=12))
        assert is_store_path(tmp_path / "noext")  # manifest detection


class TestAppend:
    def test_append_creates_missing_store(self, tmp_path):
        samples = make_trace_samples(60, seed=40)
        store = tmp_path / "t.store"
        assert append_to_store(store, samples) == 60
        assert list(TraceStoreReader(store).scan()) == samples

    def test_append_to_empty_sample_stream_creates_valid_store(self, tmp_path):
        store = tmp_path / "t.store"
        assert append_to_store(store, []) == 0
        assert list(TraceStoreReader(store).scan()) == []

    def test_appends_concatenate_in_scan_order(self, tmp_path):
        samples = make_trace_samples(150, seed=41)
        store = tmp_path / "t.store"
        append_to_store(store, samples[:50])
        append_to_store(store, samples[50:90])
        append_to_store(store, samples[90:])
        assert list(TraceStoreReader(store).scan()) == samples

    def test_append_matches_one_shot_write(self, tmp_path):
        samples = make_trace_samples(120, seed=42)
        oneshot = tmp_path / "oneshot.store"
        appended = tmp_path / "appended.store"
        write_store(oneshot, samples)
        for start in range(0, 120, 30):
            append_to_store(appended, samples[start : start + 30])
        assert list(TraceStoreReader(appended).scan()) == list(
            TraceStoreReader(oneshot).scan()
        )

    def test_partitions_tile_data_after_append(self, tmp_path):
        samples = make_trace_samples(100, seed=43)
        store = tmp_path / "t.store"
        append_to_store(store, samples[:70])
        append_to_store(store, samples[70:])
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        assert manifest["row_count"] == 100
        offset = 0
        for partition in manifest["partitions"]:
            assert partition["offset"] == offset
            offset += partition["length"]
        assert offset == manifest["data_bytes"]
        assert (store / manifest["data_file"]).stat().st_size == manifest[
            "data_bytes"
        ]

    def test_empty_append_to_existing_store_is_noop(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(20, seed=44))
        before = (store / MANIFEST_NAME).read_bytes()
        assert append_to_store(store, []) == 0
        assert (store / MANIFEST_NAME).read_bytes() == before

    def test_crashed_append_tail_is_invisible_and_reclaimed(self, tmp_path):
        samples = make_trace_samples(80, seed=45)
        store = tmp_path / "t.store"
        append_to_store(store, samples[:40])
        # Simulate a crash mid-append: payload bytes hit data.bin but the
        # manifest was never replaced.
        with open(store / "data.bin", "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 64)
        assert list(TraceStoreReader(store).scan()) == samples[:40]
        append_to_store(store, samples[40:])
        assert list(TraceStoreReader(store).scan()) == samples
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        assert (store / "data.bin").stat().st_size == manifest["data_bytes"]

    def test_append_upgrades_v1_store(self, tmp_path):
        samples = make_trace_samples(60, seed=46)
        store = tmp_path / "t.store"
        write_store(store, samples[:30])
        manifest_path = store / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        for partition in manifest["partitions"]:
            for block in partition["blocks"]:
                block.pop("crc32", None)
        manifest_path.write_text(json.dumps(manifest))
        append_to_store(store, samples[30:])
        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == STORE_FORMAT_VERSION
        # Old blocks carry no checksum, new ones do; both still scan.
        assert list(TraceStoreReader(store).scan()) == samples

    def test_append_rejects_mismatched_layout(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(10, seed=47))
        with pytest.raises(ValueError, match="band_windows"):
            append_to_store(
                store, make_trace_samples(5, seed=48), band_windows=2
            )
        with pytest.raises(ValueError, match="window_seconds"):
            append_to_store(
                store, make_trace_samples(5, seed=48), window_seconds=60.0
            )

    def test_append_rejects_foreign_manifest(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(10, seed=49))
        manifest_path = store / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "other"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            append_to_store(store, make_trace_samples(5, seed=50))

    def test_append_counters(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(30, seed=51))
        metrics = MetricsRegistry()
        append_to_store(store, make_trace_samples(25, seed=52), metrics=metrics)
        assert metrics.counter("store.rows.written") == 25
        assert metrics.counter("io.rows_written") == 25
        assert metrics.counter("store.partitions.written") > 0
        assert metrics.counter("store.bytes.written") > 0


class TestAtomicity:
    def test_interrupted_manifest_write_leaves_store_unreadable(
        self, tmp_path, monkeypatch
    ):
        """A crash between data.bin and manifest.json must not leave a
        store that reads back as a short-but-valid trace."""
        import repro.store.writer as writer_mod

        real = writer_mod._atomic_write

        def fail_on_manifest(path, data):
            if path.name == MANIFEST_NAME:
                raise OSError("disk full")
            real(path, data)

        monkeypatch.setattr(writer_mod, "_atomic_write", fail_on_manifest)
        store = tmp_path / "t.store"
        with pytest.raises(OSError):
            write_store(store, make_trace_samples(20, seed=13))
        assert (store / "data.bin").exists()
        with pytest.raises(ValueError, match="missing manifest"):
            TraceStoreReader(store)

    def test_interrupted_rewrite_keeps_previous_store(
        self, tmp_path, monkeypatch
    ):
        import repro.store.writer as writer_mod

        store = tmp_path / "t.store"
        samples = make_trace_samples(30, seed=14)
        write_store(store, samples)
        before = (store / MANIFEST_NAME).read_bytes()

        monkeypatch.setattr(
            writer_mod,
            "_atomic_write",
            lambda path, data: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            write_store(store, make_trace_samples(5, seed=15))
        assert (store / MANIFEST_NAME).read_bytes() == before
        assert list(TraceStoreReader(store).scan()) == samples

    def test_no_temp_files_survive(self, tmp_path):
        store = tmp_path / "t.store"
        write_store(store, make_trace_samples(10, seed=16))
        assert not list(store.glob("*.tmp.*"))


# --------------------------------------------------------------------- #
# Reader: order, validation, pruning
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def trace_samples():
    return make_trace_samples(600, seed=21)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, trace_samples):
    path = tmp_path_factory.mktemp("store") / "trace.store"
    write_store(path, trace_samples)
    return path


class TestReader:
    def test_full_scan_restores_exact_stream_order(
        self, store_path, trace_samples
    ):
        assert list(TraceStoreReader(store_path).scan()) == trace_samples

    def test_scan_matches_read_samples_dispatch(
        self, store_path, trace_samples
    ):
        assert list(read_samples(store_path)) == trace_samples

    def test_missing_manifest_rejected(self, tmp_path):
        empty = tmp_path / "empty.store"
        empty.mkdir()
        with pytest.raises(ValueError, match="missing manifest"):
            TraceStoreReader(empty)

    @pytest.mark.parametrize(
        "field, bad",
        [("format", "other"), ("version", 99), ("schema_version", 99)],
    )
    def test_version_mismatch_rejected(self, tmp_path, store_path, field, bad):
        import shutil

        copy = tmp_path / "copy.store"
        shutil.copytree(store_path, copy)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest[field] = bad
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            TraceStoreReader(copy)

    def test_scan_counters(self, store_path):
        metrics = MetricsRegistry()
        reader = TraceStoreReader(store_path)
        rows = list(reader.scan(metrics=metrics))
        counters = metrics.counters
        assert counters["store.partitions.scanned"] == len(reader.partitions)
        assert counters["store.rows.decoded"] == len(rows)
        assert counters["io.rows_read"] == len(rows)
        assert counters["store.bytes.read"] == reader.manifest["data_bytes"]
        assert "store.partitions.pruned" not in counters


class TestPruning:
    @pytest.mark.parametrize(
        "scan_filter",
        [
            ScanFilter(pops="ams1"),
            ScanFilter(pops={"sjc1", "gru1"}),
            ScanFilter(countries="BR"),
            ScanFilter(min_end_time=2000.0, max_end_time=4000.0),
            ScanFilter(pops="ams1", countries="NL", min_end_time=1500.0),
            ScanFilter(pops="nowhere"),
        ],
    )
    def test_filtered_scan_equals_brute_force(
        self, store_path, trace_samples, scan_filter
    ):
        got = list(TraceStoreReader(store_path).scan(scan_filter))
        expected = [s for s in trace_samples if scan_filter.admits_sample(s)]
        assert got == expected

    def test_pruning_skips_bytes_without_decoding(self, store_path):
        metrics = MetricsRegistry()
        reader = TraceStoreReader(store_path)
        list(reader.scan(ScanFilter(pops="ams1"), metrics=metrics))
        counters = metrics.counters
        assert counters["store.partitions.pruned"] > 0
        assert counters["store.bytes.skipped"] > 0
        # Strictly fewer bytes decoded than a full scan would read.
        assert counters["store.bytes.read"] < reader.manifest["data_bytes"]
        # Every partition is either scanned or pruned, and their bytes
        # tile the data file exactly.
        assert counters["store.partitions.scanned"] + counters[
            "store.partitions.pruned"
        ] == len(reader.partitions)
        assert (
            counters["store.bytes.read"] + counters["store.bytes.skipped"]
            == reader.manifest["data_bytes"]
        )

    def test_time_pruning_is_inclusive_at_bounds(self, store_path):
        reader = TraceStoreReader(store_path)
        partition = reader.partitions[0]
        stats = partition["stats"]
        at_max = ScanFilter(min_end_time=stats["max_end_time"])
        at_min = ScanFilter(max_end_time=stats["min_end_time"])
        assert at_max.admits_partition(partition)
        assert at_min.admits_partition(partition)
        past_max = ScanFilter(min_end_time=stats["max_end_time"] + 1e-9)
        assert not past_max.admits_partition(partition)

    def test_scan_filter_normalizes_string_to_set(self):
        assert ScanFilter(pops="ams1").pops == frozenset({"ams1"})
        assert ScanFilter(countries=["NL", "DE"]).countries == frozenset(
            {"NL", "DE"}
        )


class TestChunkPlanning:
    def test_chunks_cover_store_disjointly(self, store_path):
        reader = TraceStoreReader(store_path)
        chunks = reader.plan_chunks(3)
        assert 1 <= len(chunks) <= 3
        seen = [pid for chunk in chunks for pid in chunk.partition_ids]
        assert sorted(seen) == sorted(p["id"] for p in reader.partitions)
        assert len(seen) == len(set(seen))

    def test_chunk_ordinal_is_min_seq(self, store_path):
        reader = TraceStoreReader(store_path)
        for chunk in reader.plan_chunks(4):
            pairs = list(read_store_chunk(chunk))
            assert chunk.ordinal == min(seq for seq, _ in pairs)

    def test_more_chunks_than_partitions(self, store_path):
        reader = TraceStoreReader(store_path)
        chunks = reader.plan_chunks(1000)
        assert len(chunks) == len(reader.partitions)

    def test_zero_chunks_rejected(self, store_path):
        with pytest.raises(ValueError):
            TraceStoreReader(store_path).plan_chunks(0)

    def test_chunked_counters_sum_to_serial(self, store_path):
        serial = MetricsRegistry()
        list(TraceStoreReader(store_path).scan(metrics=serial))
        merged = MetricsRegistry()
        for chunk in TraceStoreReader(store_path).plan_chunks(4):
            part = MetricsRegistry()
            list(read_store_chunk(chunk, metrics=part))
            merged.merge(part)
        assert merged.counters == serial.counters

    def test_chunks_reassemble_exact_stream(self, store_path, trace_samples):
        pairs = []
        for chunk in TraceStoreReader(store_path).plan_chunks(5):
            pairs.extend(read_store_chunk(chunk))
        pairs.sort(key=lambda pair: pair[0])
        assert [s for _, s in pairs] == trace_samples

    def test_store_chunk_is_picklable(self, store_path):
        import pickle

        chunk = TraceStoreReader(store_path).plan_chunks(2)[0]
        assert pickle.loads(pickle.dumps(chunk)) == chunk


class TestStoreJsonlEquivalence:
    def test_jsonl_and_store_round_trip_identically(
        self, tmp_path, trace_samples
    ):
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        write_samples(jsonl, trace_samples)
        write_store(store, trace_samples)
        assert list(read_samples(jsonl)) == list(read_samples(store))

    def test_store_is_smaller_than_jsonl(self, tmp_path, trace_samples):
        jsonl = tmp_path / "t.jsonl"
        store = tmp_path / "t.store"
        write_samples(jsonl, trace_samples)
        write_store(store, trace_samples)
        store_bytes = sum(f.stat().st_size for f in store.iterdir())
        assert store_bytes < jsonl.stat().st_size / 2
