"""Shared builders for analysis-layer tests.

These construct minimal :class:`SessionSample` streams with controlled
MinRTT/HDratio values so the aggregation/comparison/classification layers can
be tested without running the workload generator.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.core.aggregation import AggregationStore
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    UserGroupKey,
)

DEFAULT_GROUP = UserGroupKey(pop="ams1", prefix="203.0.112.0/20", country="NL")

_session_counter = [0]


def make_route(
    prefix: str = DEFAULT_GROUP.prefix,
    rank: int = 0,
    relationship: Relationship = Relationship.PRIVATE,
    as_path=(64500,),
    prepended: bool = False,
) -> RouteInfo:
    return RouteInfo(
        prefix=prefix,
        as_path=tuple(as_path),
        relationship=relationship,
        preference_rank=rank,
        prepended=prepended,
    )


def make_sample(
    end_time: float,
    min_rtt_ms: float,
    route: Optional[RouteInfo] = None,
    pop: str = DEFAULT_GROUP.pop,
    country: str = DEFAULT_GROUP.country,
    bytes_sent: int = 100_000,
    duration: float = 30.0,
) -> SessionSample:
    _session_counter[0] += 1
    return SessionSample(
        session_id=_session_counter[0],
        start_time=max(end_time - duration, 0.0),
        end_time=end_time,
        http_version=HttpVersion.HTTP_2,
        min_rtt_seconds=min_rtt_ms / 1000.0,
        bytes_sent=bytes_sent,
        busy_time_seconds=duration * 0.1,
        transactions=[],
        route=route or make_route(),
        pop=pop,
        client_country=country,
    )


def fill_window(
    store: AggregationStore,
    window: int,
    rtt_ms: float,
    hdratio: float,
    count: int = 40,
    rank: int = 0,
    jitter_ms: float = 1.0,
    seed: int = 0,
    group: UserGroupKey = DEFAULT_GROUP,
    relationship: Relationship = Relationship.PRIVATE,
    bytes_per_session: int = 100_000,
) -> None:
    """Add ``count`` sessions with ~rtt_ms / ~hdratio to one window."""
    rng = random.Random((window, rank, seed).__hash__())
    base_time = window * AGGREGATION_WINDOW_SECONDS
    route = make_route(prefix=group.prefix, rank=rank, relationship=relationship)
    for i in range(count):
        end = base_time + (i + 0.5) * (AGGREGATION_WINDOW_SECONDS / (count + 1))
        sample = make_sample(
            end_time=end,
            min_rtt_ms=max(rng.gauss(rtt_ms, jitter_ms), 0.1),
            route=route,
            pop=group.pop,
            country=group.country,
            bytes_sent=bytes_per_session,
        )
        hd = min(max(rng.gauss(hdratio, 0.01), 0.0), 1.0)
        store.add(sample, hdratio=hd)
