"""Shared builders for analysis-layer tests.

These construct minimal :class:`SessionSample` streams with controlled
MinRTT/HDratio values so the aggregation/comparison/classification layers can
be tested without running the workload generator.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, List, Optional

from repro.core.aggregation import AggregationStore
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
    UserGroupKey,
)

DEFAULT_GROUP = UserGroupKey(pop="ams1", prefix="203.0.112.0/20", country="NL")

_session_counter = [0]


def make_route(
    prefix: str = DEFAULT_GROUP.prefix,
    rank: int = 0,
    relationship: Relationship = Relationship.PRIVATE,
    as_path=(64500,),
    prepended: bool = False,
) -> RouteInfo:
    return RouteInfo(
        prefix=prefix,
        as_path=tuple(as_path),
        relationship=relationship,
        preference_rank=rank,
        prepended=prepended,
    )


def make_sample(
    end_time: float,
    min_rtt_ms: float,
    route: Optional[RouteInfo] = None,
    pop: str = DEFAULT_GROUP.pop,
    country: str = DEFAULT_GROUP.country,
    bytes_sent: int = 100_000,
    duration: float = 30.0,
) -> SessionSample:
    _session_counter[0] += 1
    return SessionSample(
        session_id=_session_counter[0],
        start_time=max(end_time - duration, 0.0),
        end_time=end_time,
        http_version=HttpVersion.HTTP_2,
        min_rtt_seconds=min_rtt_ms / 1000.0,
        bytes_sent=bytes_sent,
        busy_time_seconds=duration * 0.1,
        transactions=[],
        route=route or make_route(),
        pop=pop,
        client_country=country,
    )


def make_trace_samples(
    count: int,
    seed: int = 0,
    hosting_fraction: float = 0.05,
    dense_fraction: float = 0.5,
    windows: int = 8,
) -> List[SessionSample]:
    """A deterministic, diverse sample stream for pipeline-level tests.

    Half the stream (``dense_fraction``) lands in one user group so at
    least one group clears the 30-sample aggregation floor and produces
    valid comparisons; the rest scatters across PoPs, prefixes, countries,
    route ranks, hosting-flagged networks, and transaction mixes so every
    ingestion branch is exercised.
    """
    rng = random.Random(seed)
    pops = ("ams1", "sjc1", "gru1")
    countries = {"ams1": ("NL", "DE"), "sjc1": ("US", "MX"), "gru1": ("BR", "AR")}
    continents = {"NL": "EU", "DE": "EU", "US": "NA", "MX": "NA", "BR": "SA", "AR": "SA"}
    samples: List[SessionSample] = []
    for i in range(count):
        dense = rng.random() < dense_fraction
        if dense:
            pop, country = "ams1", "NL"
            # A third of the dense group's sessions ride the best alternate,
            # mirroring the §6 parallel-measurement split, so opportunity
            # comparisons have a populated rank-1 side.
            prefix, rank = "203.0.112.0/20", rng.choice((0, 0, 1))
        else:
            pop = rng.choice(pops)
            country = rng.choice(countries[pop])
            prefix = f"198.51.{rng.randrange(4)}.0/24"
            rank = rng.choice((0, 0, 1, 2))
        window = rng.randrange(windows)
        end_time = window * AGGREGATION_WINDOW_SECONDS + rng.uniform(1.0, 890.0)
        duration = rng.uniform(0.5, 120.0)
        # Per-group RTT stability (the paper's premise): a stable base per
        # (pop, prefix, rank) with small jitter, so dense groups produce
        # tight median CIs and CI-gated comparisons come out valid.
        rtt_base_ms = (
            20.0 + (zlib.crc32(f"{pop}|{prefix}".encode()) % 120) + 8.0 * rank
        )
        min_rtt_ms = max(rng.gauss(rtt_base_ms, 2.5), 1.0)
        _session_counter[0] += 1
        transactions = []
        for _ in range(rng.choice((0, 1, 1, 2, 3))):
            first_byte = end_time - duration + rng.uniform(0.0, duration / 2)
            response = rng.randrange(2_000, 600_000)
            transactions.append(
                TransactionRecord(
                    first_byte_time=first_byte,
                    ack_time=first_byte + rng.uniform(0.01, 2.0),
                    response_bytes=response,
                    last_packet_bytes=min(1500, response),
                    cwnd_bytes_at_first_byte=rng.randrange(4_000, 150_000),
                    bytes_in_flight_at_start=rng.choice((0, 0, 3_000)),
                    last_byte_write_time=first_byte + rng.uniform(0.0, 0.5),
                )
            )
        transactions.sort(key=lambda txn: txn.first_byte_time)
        samples.append(
            SessionSample(
                session_id=_session_counter[0],
                start_time=end_time - duration,
                end_time=end_time,
                http_version=rng.choice((HttpVersion.HTTP_1_1, HttpVersion.HTTP_2)),
                min_rtt_seconds=min_rtt_ms / 1000.0,
                bytes_sent=sum(t.response_bytes for t in transactions) or 10_000,
                busy_time_seconds=duration * rng.uniform(0.05, 0.9),
                transactions=transactions,
                route=RouteInfo(
                    prefix=prefix,
                    as_path=(64500, 64501 + rank),
                    relationship=rng.choice(tuple(Relationship)),
                    preference_rank=rank,
                    prepended=rng.random() < 0.1,
                ),
                pop=pop,
                client_country=country,
                client_continent=continents[country],
                client_ip_is_hosting=rng.random() < hosting_fraction,
                geo_tag=rng.choice(("", "amsterdam", "honolulu")),
                media_response_sizes=tuple(
                    t.response_bytes for t in transactions if t.response_bytes >= 12_000
                ),
            )
        )
    return samples


def fill_window(
    store: AggregationStore,
    window: int,
    rtt_ms: float,
    hdratio: float,
    count: int = 40,
    rank: int = 0,
    jitter_ms: float = 1.0,
    seed: int = 0,
    group: UserGroupKey = DEFAULT_GROUP,
    relationship: Relationship = Relationship.PRIVATE,
    bytes_per_session: int = 100_000,
) -> None:
    """Add ``count`` sessions with ~rtt_ms / ~hdratio to one window."""
    rng = random.Random((window, rank, seed).__hash__())
    base_time = window * AGGREGATION_WINDOW_SECONDS
    route = make_route(prefix=group.prefix, rank=rank, relationship=relationship)
    for i in range(count):
        end = base_time + (i + 0.5) * (AGGREGATION_WINDOW_SECONDS / (count + 1))
        sample = make_sample(
            end_time=end,
            min_rtt_ms=max(rng.gauss(rtt_ms, jitter_ms), 0.1),
            route=route,
            pop=group.pop,
            country=group.country,
            bytes_sent=bytes_per_session,
        )
        hd = min(max(rng.gauss(hdratio, 0.01), 0.0), 1.0)
        store.add(sample, hdratio=hd)
