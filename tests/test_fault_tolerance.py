"""Fault-injection matrix for the pipeline's failure model (DESIGN.md §9).

Three properties, proven with :mod:`repro.faultinject`:

1. **Detection with attribution** — corrupted store bytes surface as typed
   errors naming the exact partition, column, and byte range (never a bare
   ``struct.error``), and ``verify_store`` finds them without raising.
2. **Graceful degradation** — a shard that keeps failing is retried, then
   quarantined; the run completes and the dataset/manifest carry an exact
   degraded ledger. ``strict=True`` fails fast with a :class:`ShardError`
   naming the shard.
3. **No-fault transparency** — with no plan active, serial and sharded
   runs are byte-identical to each other and to the pre-fault-tolerance
   pipeline (the hooks are no-ops).
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import faultinject
from repro.faultinject import FaultPlan
from repro.obs import MetricsRegistry, RunManifest, activate_metrics
from repro.pipeline import (
    DegradedLedger,
    ParallelOptions,
    ShardError,
    StudyDataset,
    build_dataset,
)
from repro.pipeline.io import write_samples
from repro.store import (
    CorruptBlockError,
    CorruptManifestError,
    StoreError,
    TraceStoreReader,
    TruncatedPartitionError,
    verify_store,
    write_store,
)
from tests.helpers import make_trace_samples

pytestmark = pytest.mark.faults

STUDY_WINDOWS = 8


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faultinject.reset()
    yield
    faultinject.reset()


@pytest.fixture(scope="module")
def samples():
    return make_trace_samples(400, seed=23, windows=STUDY_WINDOWS)


@pytest.fixture()
def store_path(samples, tmp_path):
    path = tmp_path / "trace.store"
    write_store(path, samples, band_windows=2)
    return path


def _flip_block_byte(store_path, partition_index=0, block_index=0, mask=0xFF):
    """Corrupt one on-disk byte; returns (partition, block) manifest dicts."""
    manifest = json.loads((store_path / "manifest.json").read_text())
    partition = manifest["partitions"][partition_index]
    block = partition["blocks"][block_index]
    data_path = store_path / "data.bin"
    data = bytearray(data_path.read_bytes())
    data[partition["offset"] + block["offset"]] ^= mask
    data_path.write_bytes(bytes(data))
    return partition, block


# --------------------------------------------------------------------- #
# 1. Corruption detection with exact attribution
# --------------------------------------------------------------------- #
class TestCorruptionDetection:
    def test_flipped_byte_names_partition_column_offset(self, store_path):
        partition, block = _flip_block_byte(store_path)
        reader = TraceStoreReader(store_path)
        with pytest.raises(CorruptBlockError) as excinfo:
            list(reader.scan())
        error = excinfo.value
        assert error.partition_id == partition["id"]
        assert error.column == block["column"]
        assert error.offset == partition["offset"] + block["offset"]
        assert "crc32 mismatch" in str(error)

    def test_harness_flip_byte_matches_disk_flip(self, store_path):
        # The injection harness must be indistinguishable from real disk
        # corruption: same typed error, same attribution.
        reader = TraceStoreReader(store_path)
        partition = reader.partitions[0]
        column = partition["blocks"][0]["column"]
        plan = FaultPlan(
            flip_byte={
                "partition": partition["id"],
                "column": column,
                "offset": 0,
            }
        )
        with faultinject.inject(plan):
            with pytest.raises(CorruptBlockError) as excinfo:
                list(reader.scan())
        assert excinfo.value.partition_id == partition["id"]
        assert excinfo.value.column == column
        # Nothing lingers after the context exits.
        assert len(list(reader.scan())) == reader.row_count

    def test_truncated_data_file(self, store_path):
        data_path = store_path / "data.bin"
        data_path.write_bytes(data_path.read_bytes()[:-20])
        reader = TraceStoreReader(store_path)
        with pytest.raises(TruncatedPartitionError) as excinfo:
            list(reader.scan())
        assert excinfo.value.actual < excinfo.value.expected
        assert excinfo.value.partition_id is not None

    def test_corrupt_manifest(self, store_path):
        manifest_path = store_path / "manifest.json"
        manifest_path.write_bytes(manifest_path.read_bytes()[:-40])
        with pytest.raises(CorruptManifestError):
            TraceStoreReader(store_path)

    def test_missing_data_file(self, store_path):
        (store_path / "data.bin").unlink()
        reader = TraceStoreReader(store_path)
        with pytest.raises(StoreError, match="data file.*missing"):
            list(reader.scan())

    def test_typed_errors_are_valueerrors(self, store_path):
        # Compatibility: pre-existing callers catch ValueError.
        _flip_block_byte(store_path)
        with pytest.raises(ValueError):
            list(TraceStoreReader(store_path).scan())

    def test_v1_store_without_checksums_still_reads(self, store_path, samples):
        manifest_path = store_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        for partition in manifest["partitions"]:
            for block in partition["blocks"]:
                block.pop("crc32", None)
        manifest_path.write_text(json.dumps(manifest))
        registry = MetricsRegistry()
        read = list(TraceStoreReader(store_path).scan(metrics=registry))
        assert read == samples
        assert registry.counter("store.blocks.unverified") > 0
        assert registry.counter("store.blocks.verified") == 0

    def test_v2_scan_counts_verified_blocks(self, store_path):
        registry = MetricsRegistry()
        list(TraceStoreReader(store_path).scan(metrics=registry))
        assert registry.counter("store.blocks.verified") > 0
        assert registry.counter("store.blocks.unverified") == 0


class TestVerifyStore:
    def test_clean_store(self, store_path):
        report = verify_store(store_path)
        assert report.ok
        assert report.partitions_total == len(
            TraceStoreReader(store_path).partitions
        )
        assert report.partitions_corrupt == 0

    def test_corrupt_store_reports_without_raising(self, store_path):
        partition, block = _flip_block_byte(store_path)
        report = verify_store(store_path)
        assert not report.ok
        assert report.partitions_corrupt == 1
        finding = report.findings[0]
        assert finding.partition_id == partition["id"]
        assert finding.column == block["column"]
        assert str(finding.offset) in finding.describe()

    def test_missing_manifest_is_a_finding(self, tmp_path):
        report = verify_store(tmp_path / "nope.store")
        assert not report.ok
        assert "manifest" in report.findings[0].error

    def test_truncated_file_reports_size_and_partition(self, store_path):
        data_path = store_path / "data.bin"
        data_path.write_bytes(data_path.read_bytes()[:-20])
        report = verify_store(store_path)
        assert not report.ok
        assert any("bytes" in f.error for f in report.findings)

    def test_cli_exit_codes(self, store_path, capsys):
        from repro.cli import main

        assert main(["verify-store", str(store_path)]) == 0
        assert "OK" in capsys.readouterr().out
        _flip_block_byte(store_path)
        assert main(["verify-store", str(store_path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT:" in out


# --------------------------------------------------------------------- #
# 2. Retry, quarantine, degraded ledger
# --------------------------------------------------------------------- #
def _options(executor="serial", **kwargs) -> ParallelOptions:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("retry_backoff", 0.0)
    return ParallelOptions(executor=executor, **kwargs)


class TestRetryAndQuarantine:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_transient_failure_retries_to_identical_result(
        self, samples, executor
    ):
        serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": 2})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options(executor),
            )
        assert dataset.degraded is None
        assert dataset.rows == serial.rows
        assert registry.counter("fault.shard_retries") == 2
        assert registry.counter("fault.injected.shard_kills") == 2
        assert registry.counter("fault.shards_quarantined") == 0

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_permanent_failure_quarantines_with_exact_counts(
        self, samples, executor
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options(executor),
            )
        ledger = dataset.degraded
        assert isinstance(ledger, DegradedLedger)
        assert ledger.shards_lost == 1
        entry = ledger.shards[0]
        assert entry["ordinal"] == 1
        assert entry["attempts"] == 3  # 1 try + 2 retries (default)
        assert "injected fault" in entry["error"]
        # In-memory sharding knows the exact loss: the shard's sample list.
        from repro.pipeline.parallel import shard_samples

        expected_lost = len(shard_samples(iter(samples), 4)[1])
        assert ledger.samples_lost == expected_lost == entry["samples_lost"]
        assert registry.counter("fault.shards_quarantined") == 1
        assert registry.counter("fault.samples_lost") == expected_lost
        # The surviving shards' samples are all present.
        assert dataset.session_count > 0

    def test_strict_raises_shard_error(self, samples):
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        with faultinject.inject(plan):
            with pytest.raises(ShardError) as excinfo:
                build_dataset(
                    iter(samples),
                    study_windows=STUDY_WINDOWS,
                    options=_options("serial", strict=True),
                )
        assert excinfo.value.shard_id == 1
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_zero_retries_quarantines_immediately(self, samples):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 0, "times": None})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options("serial", max_retries=0),
            )
        assert dataset.degraded.shards[0]["attempts"] == 1
        assert registry.counter("fault.shard_retries") == 0

    def test_os_error_kind(self, samples):
        plan = FaultPlan(
            kill_shard={"ordinal": 0, "times": None, "error": "os"}
        )
        with faultinject.inject(plan):
            with pytest.raises(ShardError) as excinfo:
                build_dataset(
                    iter(samples),
                    study_windows=STUDY_WINDOWS,
                    options=_options("serial", strict=True, max_retries=0),
                )
        assert isinstance(excinfo.value.cause, OSError)

    def test_store_chunk_quarantine_counts_partitions(self, store_path):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 0, "times": None})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                store_path,
                study_windows=STUDY_WINDOWS,
                options=_options("serial"),
            )
        chunk = TraceStoreReader(store_path).plan_chunks(4)[0]
        entry = dataset.degraded.shards[0]
        assert entry["partitions_skipped"] == len(chunk.partition_ids)
        assert entry["samples_lost"] == chunk.rows
        assert registry.counter("fault.partitions_skipped") == len(
            chunk.partition_ids
        )

    def test_corrupt_block_quarantined_not_fatal(self, store_path):
        partition, _ = _flip_block_byte(store_path)
        dataset = build_dataset(
            store_path,
            study_windows=STUDY_WINDOWS,
            options=_options("serial"),
        )
        assert dataset.degraded is not None
        assert "CorruptBlockError" in dataset.degraded.shards[0]["error"]
        with pytest.raises(ShardError):
            build_dataset(
                store_path,
                study_windows=STUDY_WINDOWS,
                options=_options("serial", strict=True),
            )

    def test_process_pool_kill_via_env(self, samples, tmp_path, monkeypatch):
        # ProcessPoolExecutor workers pick the plan up from REPRO_FAULTS.
        # A permanent kill exercises cross-process typed-error transport
        # (the exception pickles back to the parent) plus quarantine.
        trace = tmp_path / "trace.jsonl"
        write_samples(trace, samples)
        plan = FaultPlan(kill_shard={"ordinal": 0, "times": None})
        monkeypatch.setenv(faultinject.ENV_VAR, plan.to_json())
        faultinject.reset()
        dataset = build_dataset(
            trace,
            study_windows=STUDY_WINDOWS,
            options=_options("process", workers=2, shards=2),
        )
        assert dataset.degraded is not None
        assert dataset.degraded.shards[0]["ordinal"] == 0

    def test_retry_log_names_shard(self, samples, caplog):
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": 1})
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.parallel"):
            with faultinject.inject(plan):
                build_dataset(
                    iter(samples),
                    study_windows=STUDY_WINDOWS,
                    options=_options("serial"),
                )
        assert any(
            "shard 1" in record.message and "retrying" in record.message
            for record in caplog.records
        )

    def test_io_error_is_transient_and_retried(self, samples, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_samples(trace, samples)
        registry = MetricsRegistry()
        plan = FaultPlan(io_error={"times": 1, "path_substr": "trace.jsonl"})
        with activate_metrics(registry), faultinject.inject(plan):
            dataset = build_dataset(
                trace,
                study_windows=STUDY_WINDOWS,
                options=_options("serial", shards=2),
            )
        assert dataset.degraded is None
        assert registry.counter("fault.injected.io_errors") == 1
        assert registry.counter("fault.shard_retries") == 1

    def test_ledger_shape(self):
        ledger = DegradedLedger()
        assert not ledger
        assert ledger.to_dict()["shards_lost"] == 0
        assert "0 shard(s)" in ledger.summary()


# --------------------------------------------------------------------- #
# 2b. The batch engine inherits the whole failure model
# --------------------------------------------------------------------- #
class TestBatchEngineFaults:
    """The column fast path must fail exactly like the row path: same
    typed errors with the same attribution, same retry/quarantine
    accounting, same degraded ledger — engine choice is invisible to the
    failure model."""

    def test_column_read_names_partition_column_offset(self, store_path):
        partition, block = _flip_block_byte(store_path)
        reader = TraceStoreReader(store_path)
        with pytest.raises(CorruptBlockError) as excinfo:
            list(reader.read_column_batches())
        error = excinfo.value
        assert error.partition_id == partition["id"]
        assert error.column == block["column"]
        assert error.offset == partition["offset"] + block["offset"]
        assert "crc32 mismatch" in str(error)

    def test_corrupt_block_quarantine_matches_row_engine(self, store_path):
        partition, _ = _flip_block_byte(store_path)
        ledgers = {}
        for engine in ("row", "batch"):
            dataset = build_dataset(
                store_path,
                study_windows=STUDY_WINDOWS,
                options=_options("serial"),
                engine=engine,
            )
            assert dataset.degraded is not None
            assert "CorruptBlockError" in dataset.degraded.shards[0]["error"]
            assert (
                f"partition {partition['id']}"
                in dataset.degraded.shards[0]["error"]
            )
            ledgers[engine] = dataset.degraded.to_dict()

        def accounting(ledger):
            return (
                ledger["shards_lost"],
                ledger["samples_lost"],
                ledger["partitions_skipped"],
                [
                    (e["ordinal"], e["samples_lost"], e["partitions_skipped"])
                    for e in ledger["shards"]
                ],
            )

        assert accounting(ledgers["batch"]) == accounting(ledgers["row"])

    def test_corrupt_block_strict_fails_fast(self, store_path):
        _flip_block_byte(store_path)
        with pytest.raises(ShardError) as excinfo:
            build_dataset(
                store_path,
                study_windows=STUDY_WINDOWS,
                options=_options("serial", strict=True),
                engine="batch",
            )
        assert isinstance(excinfo.value.cause, CorruptBlockError)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_kill_shard_accounting_matches_row_engine(
        self, samples, executor
    ):
        counters = {}
        for engine in ("row", "batch"):
            faultinject.reset()
            registry = MetricsRegistry()
            plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
            with activate_metrics(registry), faultinject.inject(plan):
                dataset = build_dataset(
                    iter(samples),
                    study_windows=STUDY_WINDOWS,
                    options=_options(executor),
                    engine=engine,
                )
            assert dataset.degraded.shards_lost == 1
            counters[engine] = (
                dataset.degraded.to_dict(),
                {
                    name: value
                    for name, value in registry.to_dict()["counters"].items()
                    if name.startswith("fault.")
                },
                dataset.rows,
            )
        assert counters["batch"] == counters["row"]

    def test_transient_failure_retries_to_row_identical_result(self, samples):
        serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": 2})
        with faultinject.inject(plan):
            dataset = build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options("serial"),
                engine="batch",
            )
        assert dataset.degraded is None
        assert dataset.rows == serial.rows


# --------------------------------------------------------------------- #
# 3. No-fault transparency + manifest integration
# --------------------------------------------------------------------- #
class TestNoFaultTransparency:
    def test_parallel_identical_without_faults(self, samples, store_path):
        serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))
        for options in (
            None,
            _options("serial"),
            _options("thread", workers=4, shards=4),
        ):
            dataset = build_dataset(
                store_path, study_windows=STUDY_WINDOWS, options=options
            )
            assert dataset.rows == serial.rows
            assert dataset.degraded is None

    def test_no_fault_counters_on_clean_runs(self, samples):
        registry = MetricsRegistry()
        with activate_metrics(registry):
            build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options("serial"),
            )
        assert not [
            name
            for name in registry.to_dict()["counters"]
            if name.startswith("fault.")
        ]

    def test_manifest_degraded_section(self, samples):
        registry = MetricsRegistry()
        plan = FaultPlan(kill_shard={"ordinal": 1, "times": None})
        with activate_metrics(registry), faultinject.inject(plan):
            build_dataset(
                iter(samples),
                study_windows=STUDY_WINDOWS,
                options=_options("serial"),
            )
        manifest = RunManifest.collect(command="analyze", registry=registry)
        assert manifest.degraded["shards_lost"] == 1
        assert manifest.degraded["samples_lost"] > 0
        # fault.* counters are execution facts, not sample accounting.
        assert not [
            name
            for name in manifest.sample_accounting()
            if name.startswith("fault.")
        ]
        # Round-trips through JSON.
        loaded = RunManifest.from_dict(manifest.to_dict())
        assert loaded.degraded == manifest.degraded

    def test_clean_manifest_degraded_is_empty(self):
        manifest = RunManifest.collect(
            command="analyze", registry=MetricsRegistry()
        )
        assert manifest.degraded == {}

    def test_cli_degraded_run_end_to_end(
        self, samples, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        store = tmp_path / "t.store"
        write_store(store, samples, band_windows=2)
        _flip_block_byte(store)
        manifest_path = tmp_path / "m.json"
        code = main(
            [
                "analyze",
                str(store),
                "--workers", "2",
                "--executor", "serial",
                "--retry-backoff", "0",
                "--metrics-out", str(manifest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WARNING: degraded run" in out
        payload = json.loads(manifest_path.read_text())
        assert payload["degraded"]["shards_lost"] == 1
        assert payload["shard_plan"]["strict"] is False

    def test_cli_strict_flag_fails_fast(self, samples, tmp_path):
        from repro.cli import main

        store = tmp_path / "t.store"
        write_store(store, samples, band_windows=2)
        _flip_block_byte(store)
        with pytest.raises(ShardError):
            main(
                [
                    "analyze",
                    str(store),
                    "--workers", "2",
                    "--executor", "serial",
                    "--retry-backoff", "0",
                    "--strict",
                ]
            )


# --------------------------------------------------------------------- #
# Satellite: durable atomic writes
# --------------------------------------------------------------------- #
class TestDurableWrites:
    def test_jsonl_write_fsyncs_file_and_dir(
        self, samples, tmp_path, monkeypatch
    ):
        import repro.fsutil as fsutil

        synced = {"file": 0, "dir": 0}
        real_file, real_dir = fsutil.fsync_file, fsutil.fsync_dir
        monkeypatch.setattr(
            "repro.pipeline.io.fsync_file",
            lambda p: (synced.__setitem__("file", synced["file"] + 1),
                       real_file(p))[1],
        )
        monkeypatch.setattr(
            "repro.pipeline.io.fsync_dir",
            lambda p: (synced.__setitem__("dir", synced["dir"] + 1),
                       real_dir(p))[1],
        )
        path = tmp_path / "t.jsonl"
        write_samples(path, samples[:5])
        assert synced == {"file": 1, "dir": 1}
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_store_write_fsyncs_through_fsutil(self, samples, tmp_path, monkeypatch):
        import os

        fsyncs: list = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd))[1]
        )
        write_store(tmp_path / "t.store", samples[:5])
        # data.bin + manifest.json, each: temp-file fsync + dir fsync.
        assert len(fsyncs) >= 4


# --------------------------------------------------------------------- #
# 7. Served queries over a damaged store (DESIGN §12 failure semantics)
# --------------------------------------------------------------------- #
@pytest.mark.serve
class TestServeFaults:
    """A corrupt store under a served query: typed 503 with partition
    attribution, never a crash, never silent zeros — and /v1/health flips
    to degraded with the damage in its quarantine ledger."""

    def test_corrupt_block_returns_typed_503_with_attribution(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        partition, block = _flip_block_byte(store_path)
        status, payload = engine.handle("/v1/quantiles", {})
        assert status == 503
        assert payload["error"] == "CorruptBlockError"
        assert payload["partition"] == partition["id"]
        assert payload["column"] == block["column"]
        assert "crc32 mismatch" in payload["detail"]
        assert engine.metrics.counter("serve.responses.server_error") == 1
        # Silent zeros are the failure mode this forbids: the error body
        # must not look like an empty-but-valid aggregate.
        assert "sessions" not in payload
        assert "minrtt_ms" not in payload

    def test_corruption_flips_health_to_degraded(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        _, healthy = engine.handle("/v1/health", {})
        assert healthy["status"] == "ok"
        partition, _ = _flip_block_byte(store_path)
        engine.handle("/v1/quantiles", {})  # quarantines the 503
        _, degraded = engine.handle("/v1/health", {})
        assert degraded["status"] == "degraded"
        assert degraded["quarantine"]["count"] == 1
        assert degraded["quarantine"]["partitions"] == [partition["id"]]

    def test_health_verify_audits_damage_without_a_query(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        partition, _ = _flip_block_byte(store_path)
        status, payload = engine.handle("/v1/health", {"verify": ["1"]})
        assert status == 200  # health itself must answer, degraded or not
        assert payload["verify"]["ok"] is False
        assert payload["verify"]["partitions_corrupt"] == 1
        assert payload["status"] == "degraded"
        assert partition["id"] in payload["quarantine"]["partitions"]

    def test_injected_fault_indistinguishable_from_disk_damage(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        partition = TraceStoreReader(store_path).partitions[0]
        column = partition["blocks"][0]["column"]
        plan = FaultPlan(
            flip_byte={
                "partition": partition["id"],
                "column": column,
                "offset": 0,
            }
        )
        with faultinject.inject(plan):
            status, payload = engine.handle("/v1/quantiles", {})
        assert status == 503
        assert payload["error"] == "CorruptBlockError"
        assert payload["partition"] == partition["id"]
        # The fault context is gone; the same engine must recover without
        # a restart (the failed build was never cached).
        status, payload = engine.handle("/v1/quantiles", {})
        assert status == 200
        assert payload["sessions"] > 0

    def test_truncated_store_returns_typed_503(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        data_path = store_path / "data.bin"
        data_path.write_bytes(data_path.read_bytes()[:-20])
        status, payload = engine.handle("/v1/quantiles", {})
        assert status == 503
        assert payload["error"] == "TruncatedPartitionError"
        assert payload["partition"] is not None

    def test_lost_manifest_degrades_health_and_queries(self, store_path):
        from repro.serve import QueryEngine

        engine = QueryEngine(store_path)
        engine.handle("/v1/quantiles", {})
        (store_path / "manifest.json").unlink()
        status, payload = engine.handle("/v1/quantiles", {})
        assert status == 503
        assert payload["error"] == "StoreError"
        _, health = engine.handle("/v1/health", {})
        assert health["status"] == "degraded"
        assert health["generation"] is None
        assert "store_error" in health

    def test_http_layer_serves_the_503_body(self, store_path):
        import http.client
        import threading

        from repro.serve import make_server

        server = make_server(store_path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            partition, _ = _flip_block_byte(store_path)
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("GET", "/v1/degradation")
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            assert response.status == 503
            assert body["error"] == "CorruptBlockError"
            assert body["partition"] == partition["id"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
