"""Tests for the workload models: profiles, sessions, channel, events."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hdratio import compute_hdratio
from repro.core.records import HttpVersion
from repro.edge.geo import Continent
from repro.workload.channel import ChannelModel, PathState
from repro.workload.events import (
    ContinuousImpairment,
    DiurnalCongestion,
    EpisodicOutage,
    activity_level,
    combine_events,
    local_hour,
)
from repro.workload.profiles import (
    default_profiles,
    lte_class,
    mobile_profiles,
    rail_class,
)
from repro.workload.sessions import WorkloadModel


class TestProfiles:
    def test_all_continents_present(self):
        profiles = default_profiles()
        assert set(profiles) == set(Continent)

    def test_sampled_profiles_valid(self):
        rng = random.Random(1)
        for profile_mix in default_profiles().values():
            for _ in range(200):
                profile = profile_mix.sample(rng)
                assert profile.downlink_mbps > 0
                assert profile.last_mile_rtt_ms > 0
                assert 0 <= profile.loss_probability <= 0.3

    def test_africa_has_more_non_hd_links_than_europe(self):
        rng = random.Random(2)
        profiles = default_profiles()

        def non_hd_fraction(continent):
            draws = [profiles[continent].sample(rng) for _ in range(3000)]
            return sum(1 for d in draws if not d.hd_capable_link) / len(draws)

        assert non_hd_fraction(Continent.AFRICA) > non_hd_fraction(
            Continent.EUROPE
        ) + 0.15

    def test_asia_last_mile_slower_than_europe(self):
        rng = random.Random(3)
        profiles = default_profiles()

        def median_last_mile(continent):
            draws = sorted(
                profiles[continent].sample(rng).last_mile_rtt_ms
                for _ in range(3001)
            )
            return draws[1500]

        assert median_last_mile(Continent.ASIA) > median_last_mile(Continent.EUROPE)


class TestMobileProfiles:
    """LTE/high-mobility access classes with jitter and burst loss."""

    def test_mobile_profiles_registered(self):
        assert set(mobile_profiles()) == {"lte", "rail"}

    def test_mobile_classes_sample_jitter_and_burst_loss(self):
        rng = random.Random(7)
        for access_class in (lte_class(), rail_class()):
            for _ in range(100):
                profile = access_class.sample(rng)
                assert profile.jitter_ms > 0
                assert 0 < profile.burst_loss_probability < 0.1

    def test_default_classes_stay_jitter_free(self):
        # The new fields must not perturb existing continent profiles: no
        # jitter/burst draws, and the RNG stream is untouched.
        rng_a = random.Random(11)
        rng_b = random.Random(11)
        mix = default_profiles()[Continent.EUROPE]
        for _ in range(50):
            profile = mix.sample(rng_a)
            assert profile.jitter_ms == 0.0
            assert profile.burst_loss_probability == 0.0
        # Same draws as an identically seeded stream consumed three at a time.
        reference = mix.sample(rng_b)
        replay = default_profiles()[Continent.EUROPE].sample(random.Random(11))
        assert replay.downlink_mbps == reference.downlink_mbps

    def test_rail_harsher_than_lte(self):
        rng = random.Random(13)
        lte = [lte_class().sample(rng) for _ in range(2000)]
        rail = [rail_class().sample(rng) for _ in range(2000)]

        def median(values):
            ordered = sorted(values)
            return ordered[len(ordered) // 2]

        assert median(p.last_mile_rtt_ms for p in rail) > median(
            p.last_mile_rtt_ms for p in lte
        )
        assert median(p.burst_loss_probability for p in rail) > median(
            p.burst_loss_probability for p in lte
        )


class TestWorkloadModel:
    @pytest.fixture
    def specs(self):
        model = WorkloadModel(random.Random(11))
        return [model.sample_session() for _ in range(8000)]

    def test_duration_checkpoints(self, specs):
        durations = sorted(s.target_duration_seconds for s in specs)
        n = len(durations)
        import bisect

        under_1s = bisect.bisect(durations, 1.0) / n
        under_60s = bisect.bisect(durations, 60.0) / n
        over_180s = 1 - bisect.bisect(durations, 180.0) / n
        assert 0.05 < under_1s < 0.11       # paper: 7.4%
        assert 0.28 < under_60s < 0.48      # paper: 33%
        assert 0.14 < over_180s < 0.30      # paper: 20%

    def test_h1_shorter_than_h2(self, specs):
        h1 = [s for s in specs if s.http_version is HttpVersion.HTTP_1_1]
        h2 = [s for s in specs if s.http_version is HttpVersion.HTTP_2]

        def under_minute(group):
            return sum(
                1 for s in group if s.target_duration_seconds < 60
            ) / len(group)

        assert under_minute(h1) > under_minute(h2) + 0.08  # paper: 44% vs 26%

    def test_transaction_counts(self, specs):
        h1 = [s for s in specs if s.http_version is HttpVersion.HTTP_1_1]
        h2 = [s for s in specs if s.http_version is HttpVersion.HTTP_2]

        def under_5(group):
            return sum(1 for s in group if s.transaction_count < 5) / len(group)

        assert under_5(h1) == pytest.approx(0.87, abs=0.06)
        assert under_5(h2) == pytest.approx(0.75, abs=0.06)
        assert under_5(h1) > under_5(h2)

    def test_heavy_sessions_carry_most_bytes(self, specs):
        total = sum(s.total_response_bytes for s in specs)
        heavy = sum(
            s.total_response_bytes for s in specs if s.transaction_count >= 50
        )
        assert heavy / total > 0.4  # paper: more than half

    def test_most_sessions_small(self, specs):
        small = sum(1 for s in specs if s.total_response_bytes < 10_000)
        assert small / len(specs) > 0.40  # paper: 58%

    def test_response_size_median(self, specs):
        sizes = sorted(
            t.response_bytes for s in specs for t in s.transactions
        )
        assert sizes[len(sizes) // 2] < 6000  # paper: median < 6 KB

    def test_first_transaction_has_no_think_time(self, specs):
        assert all(s.transactions[0].think_time_seconds == 0.0 for s in specs)


class TestChannelModel:
    def _session(self, model, path, spec_seed=5):
        spec = WorkloadModel(random.Random(spec_seed)).sample_session()
        return model.simulate_session(spec, path, start_time=100.0)

    def test_good_path_high_hdratio(self):
        model = ChannelModel(random.Random(1))
        path = PathState(base_rtt_ms=30.0, bottleneck_mbps=50.0)
        results = []
        for seed in range(60):
            sample = self._session(model, path, spec_seed=seed)
            hd = compute_hdratio(sample)
            if hd is not None:
                results.append(hd)
        assert results
        assert sum(results) / len(results) > 0.9

    def test_slow_link_zero_hdratio(self):
        model = ChannelModel(random.Random(2))
        path = PathState(base_rtt_ms=30.0, bottleneck_mbps=1.0)
        results = []
        for seed in range(60):
            sample = self._session(model, path, spec_seed=seed)
            hd = compute_hdratio(sample)
            if hd is not None:
                results.append(hd)
        assert results
        assert sum(results) / len(results) < 0.1

    def test_loss_degrades_hdratio(self):
        clean_model = ChannelModel(random.Random(3))
        lossy_model = ChannelModel(random.Random(3))
        clean_path = PathState(base_rtt_ms=40.0, bottleneck_mbps=20.0)
        lossy_path = PathState(
            base_rtt_ms=40.0, bottleneck_mbps=20.0, loss_probability=0.05
        )

        def mean_hd(model, path):
            values = []
            for seed in range(80):
                hd = compute_hdratio(self._session(model, path, spec_seed=seed))
                if hd is not None:
                    values.append(hd)
            return sum(values) / len(values)

        assert mean_hd(lossy_model, lossy_path) < mean_hd(clean_model, clean_path) - 0.1

    def test_min_rtt_tracks_path(self):
        model = ChannelModel(random.Random(4))
        path = PathState(base_rtt_ms=75.0, bottleneck_mbps=20.0)
        sample = self._session(model, path)
        assert sample.min_rtt_ms == pytest.approx(75.0, rel=0.10)

    def test_queue_delay_inflates_min_rtt(self):
        model = ChannelModel(random.Random(5))
        path = PathState(base_rtt_ms=40.0, bottleneck_mbps=20.0, queue_delay_ms=30.0)
        sample = self._session(model, path)
        assert sample.min_rtt_ms > 65.0

    def test_sample_is_well_formed(self):
        model = ChannelModel(random.Random(6))
        path = PathState(base_rtt_ms=50.0, bottleneck_mbps=10.0, loss_probability=0.01)
        sample = self._session(model, path)
        assert sample.end_time > sample.start_time
        assert sample.busy_time_seconds <= sample.duration
        assert len(sample.transactions) >= 1
        for record in sample.transactions:
            assert record.ack_time >= record.first_byte_time
            assert record.cwnd_bytes_at_first_byte > 0

    def test_transactions_ordered(self):
        model = ChannelModel(random.Random(7))
        path = PathState(base_rtt_ms=50.0, bottleneck_mbps=10.0)
        sample = self._session(model, path, spec_seed=8)
        starts = [t.first_byte_time for t in sample.transactions]
        assert starts == sorted(starts)

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError):
            PathState(base_rtt_ms=0.0, bottleneck_mbps=10.0)
        with pytest.raises(ValueError):
            PathState(base_rtt_ms=10.0, bottleneck_mbps=0.0)
        with pytest.raises(ValueError):
            PathState(base_rtt_ms=10.0, bottleneck_mbps=1.0, loss_probability=1.0)


class TestEvents:
    def test_local_hour_wraps(self):
        assert 0.0 <= local_hour(0, 0.0) < 24.0
        assert local_hour(0, 180.0) == pytest.approx(12.0)

    def test_activity_peaks_in_evening(self):
        evening = activity_level(21.0)
        night = activity_level(4.0)
        assert evening > 0.95
        assert night < 0.25

    def test_diurnal_congestion_only_at_peak(self):
        event = DiurnalCongestion(longitude_deg=0.0)
        # Find windows at local 4am and 9pm (UTC day, longitude 0).
        from repro.core.classification import WINDOWS_PER_DAY

        night_window = int(4 / 24 * WINDOWS_PER_DAY)
        peak_window = int(21 / 24 * WINDOWS_PER_DAY)
        assert event.modifier_at(night_window).extra_queue_ms == 0.0
        assert event.modifier_at(peak_window).extra_queue_ms > 0.0

    def test_episodic_outage_window_bounds(self):
        event = EpisodicOutage(start_window=10, end_window=12)
        assert event.modifier_at(9).extra_loss == 0.0
        assert event.modifier_at(10).extra_loss > 0.0
        assert event.modifier_at(11).extra_loss > 0.0
        assert event.modifier_at(12).extra_loss == 0.0

    def test_episodic_requires_span(self):
        with pytest.raises(ValueError):
            EpisodicOutage(start_window=5, end_window=5)

    def test_continuous_always_on(self):
        event = ContinuousImpairment()
        for window in (0, 100, 500):
            assert event.modifier_at(window).capacity_factor < 1.0

    def test_combine_stacks_modifiers(self):
        events = [
            ContinuousImpairment(queue_ms=5.0, loss=0.01, capacity_factor=0.8),
            EpisodicOutage(start_window=0, end_window=10, queue_ms=10.0,
                           loss=0.02, capacity_factor=0.5),
        ]
        combined = combine_events(events, window=5)
        assert combined.extra_queue_ms == pytest.approx(15.0)
        assert combined.extra_loss == pytest.approx(0.03)
        assert combined.capacity_factor == pytest.approx(0.4)
