"""Validation tests for the record dataclasses."""

import pytest

from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
    UserGroupKey,
)


class TestRouteInfo:
    def test_as_path_length_and_preference(self):
        route = RouteInfo(
            prefix="10.0.0.0/20",
            as_path=(1299, 64500),
            relationship=Relationship.TRANSIT,
            preference_rank=1,
        )
        assert route.as_path_length == 2
        assert not route.is_preferred

    def test_preferred_rank_zero(self):
        route = RouteInfo(
            prefix="10.0.0.0/20",
            as_path=(64500,),
            relationship=Relationship.PRIVATE,
        )
        assert route.is_preferred

    def test_frozen(self):
        route = RouteInfo("10.0.0.0/20", (64500,), Relationship.PRIVATE)
        with pytest.raises(AttributeError):
            route.prefix = "changed"


class TestTransactionRecord:
    def _valid(self, **overrides):
        fields = dict(
            first_byte_time=1.0,
            ack_time=1.5,
            response_bytes=10_000,
            last_packet_bytes=1500,
            cwnd_bytes_at_first_byte=15_000,
        )
        fields.update(overrides)
        return TransactionRecord(**fields)

    def test_measured_values(self):
        record = self._valid()
        assert record.transfer_time == pytest.approx(0.5)
        assert record.measured_bytes == 8_500

    def test_rejects_time_reversal(self):
        with pytest.raises(ValueError):
            self._valid(ack_time=0.5)

    def test_rejects_write_before_first_byte(self):
        with pytest.raises(ValueError):
            self._valid(last_byte_write_time=0.5)

    def test_rejects_zero_cwnd(self):
        with pytest.raises(ValueError):
            self._valid(cwnd_bytes_at_first_byte=0)

    def test_allows_unknown_write_time(self):
        record = self._valid(last_byte_write_time=None)
        assert record.last_byte_write_time is None


class TestSessionSample:
    def _valid(self, **overrides):
        fields = dict(
            session_id=1,
            start_time=0.0,
            end_time=60.0,
            http_version=HttpVersion.HTTP_2,
            min_rtt_seconds=0.040,
            bytes_sent=1000,
            busy_time_seconds=6.0,
        )
        fields.update(overrides)
        return SessionSample(**fields)

    def test_derived_properties(self):
        sample = self._valid()
        assert sample.duration == 60.0
        assert sample.busy_fraction == pytest.approx(0.1)
        assert sample.min_rtt_ms == pytest.approx(40.0)
        assert sample.transaction_count == 0

    def test_busy_fraction_capped_at_one(self):
        sample = self._valid(busy_time_seconds=600.0)
        assert sample.busy_fraction == 1.0

    def test_zero_duration_busy_fraction(self):
        sample = self._valid(end_time=0.0, busy_time_seconds=0.0)
        assert sample.busy_fraction == 1.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            self._valid(end_time=-1.0)

    def test_rejects_nonpositive_minrtt(self):
        with pytest.raises(ValueError):
            self._valid(min_rtt_seconds=0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            self._valid(bytes_sent=-1)


class TestUserGroupKey:
    def test_hashable_and_stable_str(self):
        key = UserGroupKey(pop="ams1", prefix="10.0.0.0/20", country="NL")
        assert str(key) == "ams1|10.0.0.0/20|NL"
        assert key == UserGroupKey("ams1", "10.0.0.0/20", "NL")
        assert {key: 1}[UserGroupKey("ams1", "10.0.0.0/20", "NL")] == 1

    def test_distinct_countries_distinct_groups(self):
        a = UserGroupKey("ams1", "10.0.0.0/20", "NL")
        b = UserGroupKey("ams1", "10.0.0.0/20", "DE")
        assert a != b
