"""Tests for the pluggable congestion controllers (Reno, CUBIC, BBR-like)."""

import pytest

from repro.netsim.congestion import (
    BbrLikeControl,
    CubicControl,
    RenoControl,
    cc_for,
    registered_congestion_controls,
)
from repro.netsim.scenarios import run_transfer
from repro.netsim.tcp import TcpParams

pytestmark = pytest.mark.netsim

MSS = 1500


class TestReno:
    def test_slow_start_byte_counting(self):
        cc = RenoControl(MSS, 10 * MSS)
        cc.on_ack(3 * MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == 13 * MSS

    def test_congestion_avoidance_linear(self):
        cc = RenoControl(MSS, 10 * MSS)
        cc.ssthresh_bytes = 10 * MSS  # out of slow start
        # One full window of ACKs grows cwnd by ~1 MSS.
        for _ in range(10):
            cc.on_ack(MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == pytest.approx(11 * MSS, abs=MSS // 2)

    def test_loss_halves_flight(self):
        cc = RenoControl(MSS, 20 * MSS)
        cc.on_loss(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == 10 * MSS
        assert cc.ssthresh_bytes == 10 * MSS

    def test_timeout_collapses_to_one_segment(self):
        cc = RenoControl(MSS, 20 * MSS)
        cc.on_timeout(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == MSS

    def test_floor_of_two_segments(self):
        cc = RenoControl(MSS, 2 * MSS)
        cc.on_loss(bytes_in_flight=MSS)
        assert cc.cwnd_bytes >= 2 * MSS


def feed_round(cc, rtt, start, rate_bytes_per_sec=None, acks=None):
    """Deliver exactly one window (= one round) of ACKs with sequence info.

    Simulates what TcpConnection reports: ``snd_nxt`` pinned at the round
    start (a window ahead of ``snd_una``), then cumulative ACKs walking
    ``snd_una`` up to it, spread over the round's duration. With
    ``rate_bytes_per_sec`` the round takes as long as a bottleneck of that
    rate needs to drain the window (a saturated path: the delivery-rate
    samples plateau at the rate); without it, one RTT (unsaturated:
    delivery rate tracks the growing window). Returns the end time.
    """
    begin = cc._delivered
    end = begin + cc.cwnd_bytes
    window = end - begin
    count = acks if acks is not None else max(1, window // MSS)
    duration = (
        rtt
        if rate_bytes_per_sec is None
        else max(rtt, window / rate_bytes_per_sec)
    )
    una = begin
    for i in range(1, count + 1):
        next_una = begin + (window * i) // count if i < count else end
        cc.on_ack(
            next_una - una,
            now=start + duration * i / count,
            rtt_sample=rtt,
            snd_una=next_una,
            snd_nxt=end,
        )
        una = next_una
    return start + duration


class TestCubic:
    def test_slow_start_grows_like_reno(self):
        cc = CubicControl(MSS, 10 * MSS)
        cc.on_ack(3 * MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == 13 * MSS

    def test_beta_decrease(self):
        cc = CubicControl(MSS, 20 * MSS)
        cc.on_loss(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == int(20 * MSS * CubicControl.BETA)

    def test_cubic_growth_toward_wmax(self):
        cc = CubicControl(MSS, 20 * MSS)
        cc.on_loss(20 * MSS)        # sets Wmax = 20 segments
        cc.ssthresh_bytes = cc.cwnd_bytes  # stay in CA
        start = cc.cwnd_bytes
        now = 0.0
        for _ in range(200):
            now += 0.05
            cc.on_ack(MSS, now=now, rtt_sample=0.05)
        assert cc.cwnd_bytes > start
        # Approaches (and then probes past) the previous maximum.
        assert cc.cwnd_bytes >= 18 * MSS

    def test_hystart_exits_on_rtt_inflation(self):
        cc = CubicControl(MSS, 10 * MSS)
        # First round: flat RTTs.
        now = feed_round(cc, rtt=0.050, start=0.1)
        # Later rounds: RTTs inflated well past eta.
        for _ in range(3):
            now = feed_round(cc, rtt=0.080, start=now)
            if cc.hystart_exits:
                break
        assert cc.hystart_exits == 1
        assert not cc.in_slow_start

    def test_hystart_tolerates_flat_rtts(self):
        cc = CubicControl(MSS, 10 * MSS)
        now = 0.1
        for _ in range(5):
            now = feed_round(cc, rtt=0.050, start=now)
        assert cc.hystart_exits == 0
        assert cc.in_slow_start

    def test_one_bdp_of_acks_is_one_round(self):
        # Regression for the pseudo-round bug: a fixed 8-ACK "round" let a
        # large window complete many rounds per RTT. One full window
        # (one BDP) of ACKs must advance the round counter by exactly one,
        # however many ACKs carry it.
        cc = CubicControl(MSS, 64 * MSS)  # 64 ACKs per window — 8 old rounds
        assert cc.hystart_rounds == 0
        now = feed_round(cc, rtt=0.050, start=0.1, acks=64)
        assert cc.hystart_rounds == 1
        feed_round(cc, rtt=0.050, start=now)
        assert cc.hystart_rounds == 2

    def test_no_spurious_exit_within_one_rtt(self):
        # Pre-fix code compared 8-ACK batches against each other, so RTT
        # variance *within* one round trip (here: a ramp inside a single
        # window) could exit slow start. Sequence-delimited rounds compare
        # round minima, and the first round has no predecessor — no exit.
        cc = CubicControl(MSS, 64 * MSS)
        start = cc._delivered
        end = start + cc.cwnd_bytes
        rtt = 0.050
        for i in range(1, 65):
            rtt += 0.005  # strong intra-round inflation
            cc.on_ack(
                MSS, now=0.1, rtt_sample=rtt,
                snd_una=start + i * MSS, snd_nxt=end,
            )
        assert cc.hystart_exits == 0
        assert cc.in_slow_start


class TestBbr:
    def test_startup_is_ack_clocked(self):
        cc = BbrLikeControl(MSS, 10 * MSS)
        cc.on_ack(3 * MSS, now=0.1, rtt_sample=0.05)
        assert cc.phase == "startup"
        assert cc.cwnd_bytes == 13 * MSS

    RATE = 2.5e6  # bottleneck: 20 Mbps in bytes/s

    def test_exits_startup_when_rate_plateaus(self):
        cc = BbrLikeControl(MSS, 10 * MSS)
        now = 0.0
        # Saturated path: the bottleneck drains one window per round, so
        # delivery-rate samples plateau at the rate and startup must end.
        for _ in range(15):
            now = feed_round(cc, rtt=0.05, start=now, rate_bytes_per_sec=self.RATE)
            if cc.phase != "startup":
                break
        assert cc.phase in ("drain", "probe_bw")

    def test_settles_near_bdp(self):
        cc = BbrLikeControl(MSS, 10 * MSS)
        now = 0.0
        for _ in range(30):
            now = feed_round(cc, rtt=0.05, start=now, rate_bytes_per_sec=self.RATE)
        assert cc.phase == "probe_bw"
        bdp = cc.bottleneck_bw_bytes_per_sec * 0.05
        assert bdp > 0
        # Window tracks gain × BDP (gains span 0.75–1.25).
        assert 0.5 * bdp <= cc.cwnd_bytes <= 1.5 * bdp

    def test_loss_is_not_multiplicative(self):
        cc = BbrLikeControl(MSS, 10 * MSS)
        now = 0.0
        for _ in range(30):
            now = feed_round(cc, rtt=0.05, start=now, rate_bytes_per_sec=self.RATE)
        before = cc.cwnd_bytes
        after = cc.on_loss(bytes_in_flight=before)
        # Rate-based: the window stays pinned near the operating point
        # rather than taking a beta-style cut.
        assert after >= int(before * 0.75)
        assert cc.loss_events == 1

    def test_loss_keeps_ssthresh_sane_for_recovery_exit(self):
        # TcpConnection's recovery exit sets cwnd = max(ssthresh, 2 MSS);
        # a controller that never lowered ssthresh from 1<<30 would explode
        # the window there.
        cc = BbrLikeControl(MSS, 10 * MSS)
        cc.on_loss(bytes_in_flight=8 * MSS)
        assert cc.ssthresh_bytes < (1 << 30)
        assert cc.ssthresh_bytes >= 2 * MSS

    def test_probe_rtt_entered_when_min_rtt_stale(self):
        cc = BbrLikeControl(MSS, 10 * MSS)
        now = 0.0
        for _ in range(10):
            now = feed_round(cc, rtt=0.05, start=now, rate_bytes_per_sec=self.RATE)
        # Keep acking with no new minimum for longer than the window.
        deadline = now + cc.MIN_RTT_WINDOW_SECONDS + 2.0
        while now < deadline and cc.probe_rtt_entries == 0:
            now = feed_round(cc, rtt=0.06, start=now, rate_bytes_per_sec=self.RATE)
        assert cc.probe_rtt_entries >= 1

    def test_timeout_collapses(self):
        cc = BbrLikeControl(MSS, 20 * MSS)
        cc.on_timeout(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == MSS


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_congestion_controls()
        assert {"reno", "cubic", "bbr"} <= set(names)

    def test_cc_for_builds_controller(self):
        cc = cc_for("bbr", MSS, 10 * MSS)
        assert isinstance(cc, BbrLikeControl)
        assert cc.cwnd_bytes == 10 * MSS

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="reno"):
            cc_for("vegas", MSS, 10 * MSS)


class TestIntegration:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_transfer([10 * MSS], congestion_control="vegas")

    @pytest.mark.parametrize("algorithm", ["reno", "cubic", "bbr"])
    def test_all_complete_clean_transfer(self, algorithm):
        result = run_transfer(
            [200 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=40.0,
            delayed_ack=False,
            congestion_control=algorithm,
        )
        assert result.total_bytes == 200 * MSS
        assert result.records

    @pytest.mark.parametrize("algorithm", ["reno", "cubic", "bbr"])
    def test_all_survive_loss(self, algorithm):
        result = run_transfer(
            [150 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=40.0,
            loss_probability=0.03,
            congestion_control=algorithm,
            seed=9,
            max_duration=120.0,
        )
        assert result.total_bytes == 150 * MSS

    def test_cubic_hystart_fires_through_deep_queue(self):
        # A slow bottleneck with a deep queue inflates RTTs during slow
        # start — exactly what HyStart watches for.
        from repro.netsim.engine import Simulator
        from repro.netsim.link import Link
        from repro.netsim.tcp import TcpConnection

        sim = Simulator()
        data = Link(sim, rate_bps=2e6, propagation_delay=0.020, queue_packets=500)
        ack = Link(sim, rate_bps=None, propagation_delay=0.020)
        conn = TcpConnection(
            sim, data, ack,
            TcpParams(initial_cwnd_packets=4, delayed_ack=False,
                      congestion_control="cubic"),
        )
        conn.write(400 * MSS)
        sim.run(until=60.0)
        assert conn.all_acked
        assert conn.cc.hystart_exits >= 1

    def test_bbr_beats_loss_based_on_bursty_path(self):
        # The motivating regime: random loss that is not congestion. A
        # loss-based sender halves its window on every train; the
        # rate-based sender holds the estimated rate.
        kwargs = dict(
            response_sizes=[600 * MSS],
            bottleneck_mbps=10.0,
            rtt_ms=50.0,
            burst_loss_probability=0.02,
            delayed_ack=False,
            seed=1,
            max_duration=300.0,
        )
        reno = run_transfer(congestion_control="reno", **kwargs)
        bbr = run_transfer(congestion_control="bbr", **kwargs)
        assert bbr.total_bytes == reno.total_bytes == 600 * MSS
        assert bbr.completion_time < reno.completion_time
