"""Tests for the pluggable congestion controllers (Reno, CUBIC+HyStart)."""

import pytest

from repro.netsim.congestion import CubicControl, RenoControl
from repro.netsim.scenarios import run_transfer
from repro.netsim.tcp import TcpParams

MSS = 1500


class TestReno:
    def test_slow_start_byte_counting(self):
        cc = RenoControl(MSS, 10 * MSS)
        cc.on_ack(3 * MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == 13 * MSS

    def test_congestion_avoidance_linear(self):
        cc = RenoControl(MSS, 10 * MSS)
        cc.ssthresh_bytes = 10 * MSS  # out of slow start
        # One full window of ACKs grows cwnd by ~1 MSS.
        for _ in range(10):
            cc.on_ack(MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == pytest.approx(11 * MSS, abs=MSS // 2)

    def test_loss_halves_flight(self):
        cc = RenoControl(MSS, 20 * MSS)
        cc.on_loss(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == 10 * MSS
        assert cc.ssthresh_bytes == 10 * MSS

    def test_timeout_collapses_to_one_segment(self):
        cc = RenoControl(MSS, 20 * MSS)
        cc.on_timeout(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == MSS

    def test_floor_of_two_segments(self):
        cc = RenoControl(MSS, 2 * MSS)
        cc.on_loss(bytes_in_flight=MSS)
        assert cc.cwnd_bytes >= 2 * MSS


class TestCubic:
    def test_slow_start_grows_like_reno(self):
        cc = CubicControl(MSS, 10 * MSS)
        cc.on_ack(3 * MSS, now=0.1, rtt_sample=0.05)
        assert cc.cwnd_bytes == 13 * MSS

    def test_beta_decrease(self):
        cc = CubicControl(MSS, 20 * MSS)
        cc.on_loss(bytes_in_flight=20 * MSS)
        assert cc.cwnd_bytes == int(20 * MSS * CubicControl.BETA)

    def test_cubic_growth_toward_wmax(self):
        cc = CubicControl(MSS, 20 * MSS)
        cc.on_loss(20 * MSS)        # sets Wmax = 20 segments
        cc.ssthresh_bytes = cc.cwnd_bytes  # stay in CA
        start = cc.cwnd_bytes
        now = 0.0
        for _ in range(200):
            now += 0.05
            cc.on_ack(MSS, now=now, rtt_sample=0.05)
        assert cc.cwnd_bytes > start
        # Approaches (and then probes past) the previous maximum.
        assert cc.cwnd_bytes >= 18 * MSS

    def test_hystart_exits_on_rtt_inflation(self):
        cc = CubicControl(MSS, 10 * MSS)
        # First round: flat RTTs.
        for _ in range(cc.HYSTART_MIN_SAMPLES):
            cc.on_ack(MSS, now=0.1, rtt_sample=0.050)
        # Second round: RTTs inflated well past eta.
        for _ in range(cc.HYSTART_MIN_SAMPLES):
            cc.on_ack(MSS, now=0.2, rtt_sample=0.080)
        assert cc.hystart_exits == 1
        assert not cc.in_slow_start

    def test_hystart_tolerates_flat_rtts(self):
        cc = CubicControl(MSS, 10 * MSS)
        for _ in range(5 * cc.HYSTART_MIN_SAMPLES):
            cc.on_ack(MSS, now=0.1, rtt_sample=0.050)
        assert cc.hystart_exits == 0
        assert cc.in_slow_start


class TestIntegration:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_transfer([10 * MSS], congestion_control="vegas")

    @pytest.mark.parametrize("algorithm", ["reno", "cubic"])
    def test_both_complete_clean_transfer(self, algorithm):
        result = run_transfer(
            [200 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=40.0,
            delayed_ack=False,
            congestion_control=algorithm,
        )
        assert result.total_bytes == 200 * MSS
        assert result.records

    @pytest.mark.parametrize("algorithm", ["reno", "cubic"])
    def test_both_survive_loss(self, algorithm):
        result = run_transfer(
            [150 * MSS],
            bottleneck_mbps=5.0,
            rtt_ms=40.0,
            loss_probability=0.03,
            congestion_control=algorithm,
            seed=9,
            max_duration=120.0,
        )
        assert result.total_bytes == 150 * MSS

    def test_cubic_hystart_fires_through_deep_queue(self):
        # A slow bottleneck with a deep queue inflates RTTs during slow
        # start — exactly what HyStart watches for.
        from repro.netsim.engine import Simulator
        from repro.netsim.link import Link
        from repro.netsim.tcp import TcpConnection

        sim = Simulator()
        data = Link(sim, rate_bps=2e6, propagation_delay=0.020, queue_packets=500)
        ack = Link(sim, rate_bps=None, propagation_delay=0.020)
        conn = TcpConnection(
            sim, data, ack,
            TcpParams(initial_cwnd_packets=4, delayed_ack=False,
                      congestion_control="cubic"),
        )
        conn.write(400 * MSS)
        sim.run(until=60.0)
        assert conn.all_acked
        assert conn.cc.hystart_exits >= 1
