"""Tests for Cartographer, Edge Fabric, and Proxygen sampling."""

import random

import pytest

from repro.core.records import HttpVersion, Relationship, SessionSample
from repro.edge.bgp import RouteGenerator
from repro.edge.cartographer import Cartographer
from repro.edge.edge_fabric import EdgeFabric
from repro.edge.geo import Continent
from repro.edge.proxygen import LoadBalancer
from repro.edge.routing import rank_routes
from repro.edge.topology import DEFAULT_METROS, ClientNetwork, default_pops


def network_for(metro_name, asn=65001):
    metro = next(m for m in DEFAULT_METROS if m.name == metro_name)
    return ClientNetwork(asn=asn, prefixes=["10.1.0.0/20"], metro=metro)


class TestCartographer:
    def test_amsterdam_maps_to_ams(self):
        carto = Cartographer(default_pops(), random.Random(1))
        pop = carto.primary_pop(network_for("amsterdam"))
        assert pop.name == "ams1"

    def test_sydney_maps_to_syd(self):
        carto = Cartographer(default_pops(), random.Random(1))
        assert carto.primary_pop(network_for("sydney")).name == "syd1"

    def test_steer_returns_consistent_rtt(self):
        carto = Cartographer(default_pops(), random.Random(2))
        pop, rtt = carto.steer(network_for("london"))
        assert rtt < 10.0  # London is ~0 km from lhr1

    def test_remote_steering_fraction(self):
        carto = Cartographer(
            default_pops(), random.Random(3), remote_steer_probability=0.3
        )
        network = network_for("lagos")
        remote = 0
        for _ in range(2000):
            pop, _ = carto.steer(network)
            if pop.continent is not Continent.AFRICA:
                remote += 1
        assert 0.2 < remote / 2000 < 0.4

    def test_no_remote_steering_for_europe(self):
        carto = Cartographer(
            default_pops(), random.Random(4), remote_steer_probability=0.5,
            resteer_probability=0.0,
        )
        network = network_for("paris")
        for _ in range(200):
            pop, _ = carto.steer(network)
            assert pop.continent is Continent.EUROPE

    def test_empty_pops_rejected(self):
        with pytest.raises(ValueError):
            Cartographer([], random.Random(1))


class TestEdgeFabric:
    def _ranked(self, seed=1):
        gen = RouteGenerator(random.Random(seed))
        return rank_routes(gen.routes_for_prefix("10.1.0.0/20", 65001))

    def test_uncongested_traffic_stays_on_preferred(self):
        fabric = EdgeFabric()
        ranked = self._ranked()
        route, rank = fabric.route_for_flow(ranked, demand_units=0.1)
        assert rank == 0
        assert route is ranked.preferred

    def test_congestion_detours(self):
        fabric = EdgeFabric(detour_threshold=0.9)
        ranked = self._ranked()
        capacity = ranked.preferred.condition.congestion_capacity
        ranks = set()
        for _ in range(int(capacity * 30)):
            _, rank = fabric.route_for_flow(ranked, demand_units=0.1)
            ranks.add(rank)
        assert 1 in ranks  # some traffic detoured
        assert fabric.detours > 0

    def test_measurement_traffic_overrides_detours(self):
        fabric = EdgeFabric(detour_threshold=0.01)  # everything congested
        ranked = self._ranked()
        route, rank = fabric.route_for_flow(
            ranked,
            demand_units=1.0,
            is_measurement=True,
            measurement_route=ranked.preferred,
            measurement_rank=0,
        )
        assert rank == 0
        assert fabric.overrides == 1

    def test_measurement_requires_route(self):
        fabric = EdgeFabric()
        with pytest.raises(ValueError):
            fabric.route_for_flow(self._ranked(), 1.0, is_measurement=True)

    def test_interval_reset(self):
        fabric = EdgeFabric()
        ranked = self._ranked()
        fabric.route_for_flow(ranked, demand_units=5.0)
        assert fabric.utilization(ranked.preferred, 0) > 0
        fabric.reset_interval()
        assert fabric.utilization(ranked.preferred, 0) == 0.0


class TestLoadBalancer:
    def _ranked(self):
        gen = RouteGenerator(random.Random(9))
        return rank_routes(gen.routes_for_prefix("10.1.0.0/20", 65001))

    def test_sample_rate(self):
        lb = LoadBalancer("ams1", random.Random(1), sample_rate=0.25)
        ranked = self._ranked()
        for _ in range(4000):
            lb.admit(ranked)
        assert lb.effective_sample_rate == pytest.approx(0.25, abs=0.03)

    def test_full_sampling(self):
        lb = LoadBalancer("ams1", random.Random(2), sample_rate=1.0)
        decision = lb.admit(self._ranked())
        assert decision.sampled
        assert decision.route is not None

    def test_finalize_attaches_route(self):
        lb = LoadBalancer("ams1", random.Random(3))
        decision = lb.admit(self._ranked())
        sample = SessionSample(
            session_id=1,
            start_time=0.0,
            end_time=10.0,
            http_version=HttpVersion.HTTP_2,
            min_rtt_seconds=0.040,
            bytes_sent=1000,
            busy_time_seconds=1.0,
        )
        lb.finalize(sample, decision)
        assert sample.route is not None
        assert sample.pop == "ams1"
        assert sample.route.preference_rank == decision.preference_rank

    def test_finalize_unsampled_rejected(self):
        lb = LoadBalancer("ams1", random.Random(4), sample_rate=0.5)
        from repro.edge.proxygen import SamplingDecision

        sample = SessionSample(
            session_id=1,
            start_time=0.0,
            end_time=1.0,
            http_version=HttpVersion.HTTP_1_1,
            min_rtt_seconds=0.040,
            bytes_sent=0,
            busy_time_seconds=0.0,
        )
        with pytest.raises(ValueError):
            lb.finalize(sample, SamplingDecision(sampled=False))

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            LoadBalancer("ams1", random.Random(5), sample_rate=0.0)
