"""Tests for the span/traced stage-timing API (``repro.obs.tracing``)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    activate_tracer,
    active_tracer,
    span,
    traced,
)


class TestSpanNesting:
    def test_no_active_tracer_is_a_noop(self):
        assert active_tracer() is None
        with span("anything") as record:
            assert record is None

    def test_single_span_records_wall_time(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("ingest") as record:
                assert record.name == "ingest"
        assert len(tracer.records) == 1
        closed = tracer.records[0]
        assert closed.closed
        assert closed.path == "ingest"
        assert closed.depth == 0
        assert closed.wall_seconds >= 0.0

    def test_nested_spans_build_dotted_paths_and_depths(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("cli"):
                with span("ingest"):
                    with span("merge"):
                        pass
                with span("report"):
                    pass
        paths = [(r.path, r.depth) for r in tracer.records]
        assert paths == [
            ("cli", 0),
            ("cli.ingest", 1),
            ("cli.ingest.merge", 2),
            ("cli.report", 1),
        ]
        assert tracer.open_depth == 0

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("boom")
        assert tracer.records[0].closed
        assert tracer.open_depth == 0

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="strictly nest"):
            tracer.end(outer)

    def test_spans_mirror_into_registry_timers(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with activate_tracer(tracer):
            with span("cli"):
                with span("ingest"):
                    pass
        assert registry.timer_stat("stage.cli").count == 1
        assert registry.timer_stat("stage.cli.ingest").count == 1


class TestAggregation:
    def test_aggregate_sums_calls_in_first_entry_order(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("run"):
                for _ in range(3):
                    with span("step"):
                        pass
        totals = tracer.aggregate()
        assert list(totals) == ["run", "run.step"]
        calls, total = totals["run.step"]
        assert calls == 3
        assert total >= 0.0

    def test_aggregate_skips_open_spans(self):
        tracer = Tracer()
        tracer.begin("still_open")
        assert tracer.aggregate() == {}

    def test_stage_table_shape(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("run"):
                pass
        (row,) = tracer.stage_table()
        assert set(row) == {"stage", "calls", "wall_seconds"}
        assert row["stage"] == "run"
        assert row["calls"] == 1


class TestTracedDecorator:
    def test_bare_decorator_uses_function_name(self):
        @traced
        def compute():
            return 41 + 1

        tracer = Tracer()
        with activate_tracer(tracer):
            assert compute() == 42
        assert tracer.records[0].path == "compute"
        assert compute.__name__ == "compute"

    def test_named_decorator_overrides(self):
        @traced("pipeline.fig6")
        def fig6():
            return "ok"

        tracer = Tracer()
        with activate_tracer(tracer):
            assert fig6() == "ok"
        assert tracer.records[0].path == "pipeline.fig6"

    def test_traced_without_tracer_passes_through(self):
        @traced("pipeline.fig6")
        def fig6():
            return "ok"

        assert active_tracer() is None
        assert fig6() == "ok"

    def test_traced_nests_under_enclosing_span(self):
        @traced("inner")
        def inner():
            pass

        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                inner()
        assert [r.path for r in tracer.records] == ["outer", "outer.inner"]

    def test_traced_propagates_exceptions_and_closes(self):
        @traced("fails")
        def fails():
            raise ValueError("nope")

        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(ValueError):
                fails()
        assert tracer.records[0].closed


class TestActivation:
    def test_activation_restores_previous_tracer(self):
        first, second = Tracer(), Tracer()
        with activate_tracer(first):
            with activate_tracer(second):
                assert active_tracer() is second
            assert active_tracer() is first
        assert active_tracer() is None
