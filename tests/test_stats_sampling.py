"""Tests for the random-variate helpers behind the workload generator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.sampling import (
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    lognormal_from_quantiles,
    make_sampler,
)


class TestPrimitives:
    def test_constant(self):
        rng = random.Random(1)
        assert Constant(7.0).sample(rng) == 7.0

    def test_uniform_bounds(self):
        rng = random.Random(2)
        dist = Uniform(5.0, 6.0)
        for _ in range(100):
            assert 5.0 <= dist.sample(rng) <= 6.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_exponential_mean(self):
        rng = random.Random(3)
        dist = Exponential(mean=10.0)
        values = dist.sample_many(rng, 20000)
        assert abs(sum(values) / len(values) - 10.0) < 0.5

    def test_lognormal_median(self):
        rng = random.Random(4)
        dist = LogNormal(mu=math.log(100.0), sigma=0.8)
        values = sorted(dist.sample_many(rng, 20001))
        assert abs(values[10000] - 100.0) / 100.0 < 0.05

    def test_lognormal_clamping(self):
        rng = random.Random(5)
        dist = LogNormal(mu=0.0, sigma=3.0, low=0.5, high=2.0)
        for _ in range(500):
            assert 0.5 <= dist.sample(rng) <= 2.0

    def test_pareto_tail(self):
        rng = random.Random(6)
        dist = Pareto(xm=1.0, alpha=1.5)
        values = dist.sample_many(rng, 10000)
        assert min(values) >= 1.0
        assert max(values) > 10.0  # heavy tail produces large values


class TestMixture:
    def test_weights_normalize(self):
        m = Mixture([(2.0, Constant(1.0)), (2.0, Constant(2.0))])
        weights = [w for w, _ in m.components]
        assert weights == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_component_proportions(self):
        rng = random.Random(7)
        m = Mixture([(0.8, Constant(0.0)), (0.2, Constant(1.0))])
        values = m.sample_many(rng, 20000)
        assert abs(sum(values) / len(values) - 0.2) < 0.02

    def test_empty_mixture_raises(self):
        with pytest.raises(ValueError):
            Mixture([])

    def test_nonpositive_weights_raise(self):
        with pytest.raises(ValueError):
            Mixture([(0.0, Constant(1.0))])


class TestQuantileFit:
    def test_fit_passes_through_quantiles(self):
        dist = lognormal_from_quantiles(0.5, 3000.0, 0.9, 50000.0)
        rng = random.Random(8)
        values = sorted(dist.sample_many(rng, 40001))
        p50 = values[20000]
        p90 = values[int(0.9 * 40000)]
        assert abs(p50 - 3000.0) / 3000.0 < 0.05
        assert abs(p90 - 50000.0) / 50000.0 < 0.10

    def test_fit_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            lognormal_from_quantiles(0.5, 10.0, 0.5, 20.0)  # equal quantiles
        with pytest.raises(ValueError):
            lognormal_from_quantiles(0.9, 10.0, 0.5, 20.0)  # decreasing CDF
        with pytest.raises(ValueError):
            lognormal_from_quantiles(0.5, -1.0, 0.9, 20.0)  # negative value


class TestDeterminism:
    def test_same_seed_same_stream(self):
        dist = LogNormal(mu=1.0, sigma=0.5)
        s1 = make_sampler(dist, seed=42)
        s2 = make_sampler(dist, seed=42)
        assert [s1() for _ in range(10)] == [s2() for _ in range(10)]

    def test_different_seed_different_stream(self):
        dist = LogNormal(mu=1.0, sigma=0.5)
        s1 = make_sampler(dist, seed=42)
        s2 = make_sampler(dist, seed=43)
        assert [s1() for _ in range(10)] != [s2() for _ in range(10)]


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=0.45),
    st.floats(min_value=10.0, max_value=1e4),
    st.floats(min_value=0.55, max_value=0.95),
    st.floats(min_value=2e4, max_value=1e7),
)
def test_fitted_lognormal_median_between_anchors(q1, x1, q2, x2):
    dist = lognormal_from_quantiles(q1, x1, q2, x2)
    assert x1 <= dist.median <= x2
