"""Tests for streaming (t-digest based) median comparison."""

import random

import pytest

from repro.stats.median_ci import compare_medians
from repro.stats.streaming import (
    StreamingAggregate,
    streaming_compare,
    streaming_median_se,
)
from repro.stats.tdigest import TDigest


class TestStreamingSe:
    def test_matches_exact_estimator(self):
        rng = random.Random(5)
        values = [rng.gauss(40.0, 4.0) for _ in range(2000)]
        digest = TDigest.of(values)
        from repro.stats.median_ci import median_standard_error

        exact = median_standard_error(values)
        streamed = streaming_median_se(digest)
        assert streamed == pytest.approx(exact, rel=0.25)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            streaming_median_se(TDigest.of([1.0, 2.0]))


class TestStreamingCompare:
    def test_matches_exact_comparison(self):
        rng = random.Random(7)
        a = [rng.gauss(50.0, 3.0) for _ in range(1000)]
        b = [rng.gauss(42.0, 3.0) for _ in range(1000)]
        exact = compare_medians(a, b)
        streamed = streaming_compare(TDigest.of(a), TDigest.of(b))
        assert streamed.valid
        assert streamed.difference == pytest.approx(exact.difference, abs=0.5)
        assert streamed.exceeds(5.0) == exact.exceeds(5.0)

    def test_detects_clear_shift(self):
        rng = random.Random(9)
        a = TDigest.of([rng.gauss(50.0, 2.0) for _ in range(500)])
        b = TDigest.of([rng.gauss(40.0, 2.0) for _ in range(500)])
        result = streaming_compare(a, b)
        assert result.exceeds(5.0)

    def test_identical_distributions_no_event(self):
        rng = random.Random(11)
        a = TDigest.of([rng.gauss(40.0, 2.0) for _ in range(500)])
        b = TDigest.of([rng.gauss(40.0, 2.0) for _ in range(500)])
        result = streaming_compare(a, b)
        assert not result.exceeds(2.0)

    def test_min_samples_rule(self):
        a = TDigest.of([1.0] * 20)
        b = TDigest.of([2.0] * 100)
        assert not streaming_compare(a, b).valid

    def test_tight_ci_rule(self):
        rng = random.Random(13)
        a = TDigest.of([rng.gauss(100.0, 90.0) for _ in range(40)])
        b = TDigest.of([rng.gauss(100.0, 90.0) for _ in range(40)])
        assert not streaming_compare(a, b, max_ci_width=5.0).valid


class TestStreamingAggregate:
    def test_add_and_query(self):
        aggregate = StreamingAggregate.empty()
        for index in range(100):
            aggregate.add(40.0 + index % 5, 1.0 if index % 4 else 0.0, 1000)
        assert aggregate.session_count == 100
        assert aggregate.traffic_bytes == 100_000
        assert 40.0 <= aggregate.minrtt_p50 <= 45.0
        assert aggregate.hdratio_p50 == 1.0

    def test_untestable_sessions_skip_hd_digest(self):
        aggregate = StreamingAggregate.empty()
        aggregate.add(40.0, None, 500)
        assert aggregate.hdratio_p50 is None
        assert aggregate.minrtt_p50 == 40.0

    def test_merge_combines_collectors(self):
        left = StreamingAggregate.empty()
        right = StreamingAggregate.empty()
        for _ in range(50):
            left.add(30.0, 1.0, 100)
            right.add(50.0, 0.0, 100)
        left.merge(right)
        assert left.session_count == 100
        assert left.traffic_bytes == 10_000
        assert 30.0 < left.minrtt_p50 < 50.0

    def test_merge_is_commutative(self):
        rng = random.Random(17)
        observations = [
            (rng.gauss(40.0, 5.0), rng.choice((None, 0.0, 0.5, 1.0)), rng.randrange(100, 5000))
            for _ in range(300)
        ]
        left_half, right_half = observations[:150], observations[150:]

        def collect(obs):
            aggregate = StreamingAggregate.empty()
            for rtt, hd, sent in obs:
                aggregate.add(rtt, hd, sent)
            return aggregate

        ab = collect(left_half).merge(collect(right_half))
        ba = collect(right_half).merge(collect(left_half))
        assert ab.session_count == ba.session_count == 300
        assert ab.traffic_bytes == ba.traffic_bytes
        assert ab.rtt_digest.total_weight == ba.rtt_digest.total_weight
        assert ab.hd_digest.total_weight == ba.hd_digest.total_weight
        # Exact same digest state either way (see TDigest merge contract).
        assert ab.minrtt_p50 == ba.minrtt_p50
        assert ab.hdratio_p50 == ba.hdratio_p50

    def test_merge_with_empty_is_identity_both_ways(self):
        filled = StreamingAggregate.empty()
        for _ in range(40):
            filled.add(25.0, 1.0, 200)
        before = (filled.session_count, filled.traffic_bytes, filled.minrtt_p50)
        filled.merge(StreamingAggregate.empty())
        assert (filled.session_count, filled.traffic_bytes, filled.minrtt_p50) == before
        empty = StreamingAggregate.empty()
        empty.merge(filled)
        assert empty.session_count == 40
        assert empty.minrtt_p50 == filled.minrtt_p50
