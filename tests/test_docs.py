"""Documentation consistency checks.

Docs rot silently; these tests pin the load-bearing cross-references:
every benchmark DESIGN.md's experiment index names must exist, every
example README names must exist, and the README's module table must match
the actual package layout.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_experiment_index_benchmarks_exist(self):
        design = read("DESIGN.md")
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", design))
        assert referenced, "DESIGN.md lists no benchmark targets"
        for name in referenced:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_inventory_modules_exist(self):
        design = read("DESIGN.md")
        for module in re.findall(r"^\s{4}(\w+\.py)\s", design, re.MULTILINE):
            matches = list((ROOT / "src" / "repro").rglob(module))
            assert matches, f"DESIGN.md lists missing module {module}"


class TestReadme:
    def test_benchmark_table_targets_exist(self):
        readme = read("README.md")
        for name in set(re.findall(r"benchmarks/(test_\w+\.py)", readme)):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_example_listing_matches_directory(self):
        readme = read("README.md")
        for name in set(re.findall(r"examples/(\w+\.py)", readme)):
            assert (ROOT / "examples" / name).exists(), name

    def test_docs_reference_exists(self):
        assert (ROOT / "docs" / "methodology.md").exists()
        assert "docs/methodology.md" in read("README.md")


class TestExamplesReadme:
    def test_listed_scripts_exist_and_vice_versa(self):
        examples_readme = read("examples/README.md")
        listed = set(re.findall(r"`(\w+\.py)`", examples_readme))
        actual = {
            path.name
            for path in (ROOT / "examples").glob("*.py")
        }
        assert listed == actual, (listed, actual)


class TestBenchmarkCoverage:
    def test_every_paper_artifact_has_a_benchmark(self):
        names = {path.name for path in (ROOT / "benchmarks").glob("test_*.py")}
        for artifact in (
            "test_fig1_sessions.py",
            "test_fig2_bytes.py",
            "test_fig3_transactions.py",
            "test_fig4_walkthrough.py",
            "test_fig5_population_mix.py",
            "test_fig6_global.py",
            "test_fig7_rtt_vs_hd.py",
            "test_fig8_degradation.py",
            "test_fig9_opportunity.py",
            "test_fig10_relationships.py",
            "test_table1_classes.py",
            "test_table2_relationships.py",
            "test_validation_goodput.py",
        ):
            assert artifact in names, f"missing benchmark for {artifact}"
