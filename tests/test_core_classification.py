"""Tests for temporal behaviour classification (§3.4.2)."""

import math

import pytest

from repro.core.classification import (
    WINDOWS_PER_DAY,
    GroupClassification,
    TemporalClass,
    classify_group,
)
from repro.core.comparison import WindowVerdict


def verdict(window, diff, valid=True, traffic=1000):
    """A verdict whose CI is tight around ``diff`` (width 2)."""
    return WindowVerdict(
        window=window,
        difference=diff,
        ci_low=diff - 1.0,
        ci_high=diff + 1.0,
        valid=valid,
        traffic_bytes=traffic,
    )


def series(event_windows, total_windows, diff=10.0, base=0.0):
    """Verdicts for windows 0..total_windows-1; events where listed."""
    events = set(event_windows)
    return [
        verdict(w, diff if w in events else base) for w in range(total_windows)
    ]


TEN_DAYS = 10 * WINDOWS_PER_DAY


class TestClasses:
    def test_uneventful(self):
        verdicts = series([], TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.UNEVENTFUL
        assert result.event_windows == 0

    def test_continuous(self):
        # Event in 80% of windows.
        events = [w for w in range(TEN_DAYS) if w % 5 != 0]
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.CONTINUOUS

    def test_diurnal(self):
        # Same two-hour evening block (slots 76..84) on every one of 10 days.
        events = [
            day * WINDOWS_PER_DAY + slot
            for day in range(10)
            for slot in range(76, 84)
        ]
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.DIURNAL

    def test_episodic(self):
        # One isolated multi-hour outage on one day only.
        events = list(range(200, 220))
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.EPISODIC

    def test_diurnal_requires_five_days(self):
        # Recurring slot on only 4 days: episodic, not diurnal.
        events = [day * WINDOWS_PER_DAY + 40 for day in range(4)]
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.EPISODIC

        events5 = [day * WINDOWS_PER_DAY + 40 for day in range(5)]
        result5 = classify_group(
            series(events5, TEN_DAYS), threshold=5.0, study_windows=TEN_DAYS
        )
        assert result5.temporal_class is TemporalClass.DIURNAL

    def test_class_priority_continuous_beats_diurnal(self):
        # An 80%-of-windows event is continuous even though it also recurs
        # at fixed slots every day.
        events = [w for w in range(TEN_DAYS) if w % 5 != 0]
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.CONTINUOUS


class TestCoverageRule:
    def test_sparse_group_unclassified(self):
        # Data in only half the study windows.
        verdicts = series([], TEN_DAYS // 2)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is None
        assert not result.classified
        assert result.coverage == pytest.approx(0.5)

    def test_coverage_counts_all_windows_with_data(self):
        verdicts = series([], int(TEN_DAYS * 0.7))
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.classified


class TestThresholds:
    def test_higher_threshold_fewer_events(self):
        events = list(range(0, TEN_DAYS, 3))
        verdicts = series(events, TEN_DAYS, diff=10.0)
        low = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        high = classify_group(verdicts, threshold=50.0, study_windows=TEN_DAYS)
        assert low.event_windows > 0
        assert high.event_windows == 0
        assert high.temporal_class is TemporalClass.UNEVENTFUL

    def test_ci_lower_bound_gates_event(self):
        # Difference 6 with CI [5, 7] exceeds threshold 5 only via ci_low>5.
        verdicts = [verdict(w, 6.0) for w in range(TEN_DAYS)]
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        # ci_low = 5.0 is NOT > 5.0, so no events.
        assert result.temporal_class is TemporalClass.UNEVENTFUL


class TestTrafficAccounting:
    def test_event_traffic_only_counts_event_windows(self):
        events = list(range(100, 110))
        verdicts = series(events, TEN_DAYS)
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.event_traffic_bytes == 10 * 1000
        assert result.total_traffic_bytes == TEN_DAYS * 1000

    def test_invalid_windows_never_contribute_events(self):
        verdicts = [verdict(w, 10.0, valid=False) for w in range(TEN_DAYS)]
        result = classify_group(verdicts, threshold=5.0, study_windows=TEN_DAYS)
        assert result.temporal_class is TemporalClass.UNEVENTFUL
        assert result.event_windows == 0
        assert result.valid_windows == 0

    def test_rejects_zero_study_windows(self):
        with pytest.raises(ValueError):
            classify_group([], threshold=5.0, study_windows=0)
