"""Tests for BGP route generation, policy ranking, and measurement routing."""

import random

import pytest

from repro.core.records import Relationship
from repro.edge.bgp import BgpRoute, PathCondition, RouteGenerator
from repro.edge.routing import MeasurementRouter, rank_routes


def route(relationship, as_path=(64500,), prefix_length=20, prepended=False,
          rtt_penalty=0.0):
    return BgpRoute(
        prefix=f"203.0.0.0/{prefix_length}",
        prefix_length=prefix_length,
        as_path=tuple(as_path),
        relationship=relationship,
        prepended=prepended,
        condition=PathCondition(rtt_penalty_ms=rtt_penalty),
    )


class TestPolicyRanking:
    def test_longest_prefix_wins(self):
        specific = route(Relationship.TRANSIT, as_path=(1299, 64500), prefix_length=24)
        aggregate = route(Relationship.PRIVATE, prefix_length=16)
        ranked = rank_routes([aggregate, specific])
        assert ranked.preferred is specific

    def test_peer_beats_transit(self):
        transit = route(Relationship.TRANSIT, as_path=(1299, 64500))
        peer = route(Relationship.PUBLIC, as_path=(64500,))
        ranked = rank_routes([transit, peer])
        assert ranked.preferred is peer

    def test_peer_beats_transit_even_with_longer_path(self):
        # Tiebreaker 2 precedes tiebreaker 3: a 2-hop peer route still beats
        # a 2-hop transit and even a shorter transit never outranks a peer.
        transit = route(Relationship.TRANSIT, as_path=(1299, 64500))
        peer = route(Relationship.PUBLIC, as_path=(64499, 64500))
        ranked = rank_routes([transit, peer])
        assert ranked.preferred is peer

    def test_shorter_as_path_wins_within_relationship(self):
        long_transit = route(Relationship.TRANSIT, as_path=(1299, 64777, 64500))
        short_transit = route(Relationship.TRANSIT, as_path=(3356, 64500))
        ranked = rank_routes([long_transit, short_transit])
        assert ranked.preferred is short_transit

    def test_prepending_demotes_route(self):
        prepended = route(
            Relationship.TRANSIT, as_path=(1299, 64500, 64500, 64500), prepended=True
        )
        plain = route(Relationship.TRANSIT, as_path=(3356, 64500))
        ranked = rank_routes([prepended, plain])
        assert ranked.preferred is plain

    def test_pni_beats_ixp(self):
        ixp = route(Relationship.PUBLIC)
        pni = route(Relationship.PRIVATE)
        ranked = rank_routes([ixp, pni])
        assert ranked.preferred is pni

    def test_full_order(self):
        pni = route(Relationship.PRIVATE)
        ixp = route(Relationship.PUBLIC)
        transit = route(Relationship.TRANSIT, as_path=(1299, 64500))
        ranked = rank_routes([transit, ixp, pni])
        assert list(ranked.routes) == [pni, ixp, transit]
        assert ranked.alternates(2) == (ixp, transit)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_routes([])

    def test_rank_of(self):
        pni = route(Relationship.PRIVATE)
        transit = route(Relationship.TRANSIT, as_path=(1299, 64500))
        ranked = rank_routes([transit, pni])
        assert ranked.rank_of(pni) == 0
        assert ranked.rank_of(transit) == 1


class TestRouteGenerator:
    def test_generates_multiple_routes(self):
        gen = RouteGenerator(random.Random(1))
        routes = gen.routes_for_prefix("203.0.112.0/20", 64500)
        assert len(routes) >= 2
        assert all(r.prefix == "203.0.112.0/20" for r in routes)
        assert all(r.as_path[-1] == 64500 for r in routes)

    def test_transit_routes_always_present(self):
        gen = RouteGenerator(random.Random(2))
        routes = gen.routes_for_prefix("203.0.112.0/20", 64500)
        transits = [r for r in routes if r.relationship is Relationship.TRANSIT]
        assert len(transits) == 2

    def test_peer_routes_common(self):
        gen = RouteGenerator(random.Random(3))
        peer_count = 0
        for i in range(200):
            routes = gen.routes_for_prefix(f"10.{i}.0.0/20", 64500 + i)
            if any(r.is_peer for r in routes):
                peer_count += 1
        assert peer_count > 150  # most prefixes have at least one peer route

    def test_mispreferred_fraction(self):
        gen = RouteGenerator(random.Random(4), mispreferred_probability=1.0)
        routes = gen.routes_for_prefix("203.0.112.0/20", 64500)
        # The first (policy-best) route got a penalty; some other route is
        # physically better.
        best_penalty = routes[0].condition.rtt_penalty_ms
        assert any(
            r.condition.rtt_penalty_ms < best_penalty for r in routes[1:]
        )

    def test_deterministic_with_seed(self):
        a = RouteGenerator(random.Random(7)).routes_for_prefix("10.0.0.0/20", 65000)
        b = RouteGenerator(random.Random(7)).routes_for_prefix("10.0.0.0/20", 65000)
        assert a == b


class TestMeasurementRouter:
    def test_split_fractions(self):
        gen = RouteGenerator(random.Random(5))
        ranked = rank_routes(gen.routes_for_prefix("10.0.0.0/20", 65000))
        router = MeasurementRouter(random.Random(6))
        counts = {}
        for _ in range(10000):
            _, rank = router.assign(ranked)
            counts[rank] = counts.get(rank, 0) + 1
        total = sum(counts.values())
        assert counts[0] / total == pytest.approx(0.47, abs=0.02)
        # The remainder splits evenly over two alternates.
        assert counts.get(1, 0) / total == pytest.approx(0.265, abs=0.02)
        assert counts.get(2, 0) / total == pytest.approx(0.265, abs=0.02)

    def test_single_route_always_preferred(self):
        only = route(Relationship.PRIVATE)
        ranked = rank_routes([only])
        router = MeasurementRouter(random.Random(8))
        for _ in range(100):
            chosen, rank = router.assign(ranked)
            assert chosen is only
            assert rank == 0

    def test_route_info_annotation(self):
        pni = route(Relationship.PRIVATE)
        info = pni.to_route_info(preference_rank=1)
        assert info.prefix == pni.prefix
        assert info.relationship is Relationship.PRIVATE
        assert info.preference_rank == 1
        assert not info.is_preferred
