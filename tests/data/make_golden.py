"""Regenerate the golden trace fixture and its report snapshot.

Run from the repo root (only when an *intentional* format or semantics
change invalidates the fixture — the whole point of the snapshot is that
refactors can't silently shift the numbers):

    PYTHONPATH=src:. python tests/data/make_golden.py

Writes ``golden_trace.jsonl`` (a small deterministic session trace) and
``golden_report.json`` (the fig6/fig8-style numbers the committed trace
must keep producing).
"""

from __future__ import annotations

import json
import pathlib

HERE = pathlib.Path(__file__).parent

GOLDEN_SEED = 20260806
#: Enough sessions that the dense group clears the 30-sample-per-window
#: aggregation floor and fig8/fig9 produce valid (CI-gated) comparisons.
GOLDEN_SESSIONS = 900
STUDY_WINDOWS = 4


def build_snapshot(trace_path: pathlib.Path) -> dict:
    from repro.pipeline import (
        StudyDataset,
        fig6_global_performance,
        fig8_degradation,
        fig9_opportunity,
        read_samples,
    )

    dataset = StudyDataset(study_windows=STUDY_WINDOWS)
    dataset.ingest(read_samples(trace_path))
    fig6 = fig6_global_performance(dataset)
    fig8 = fig8_degradation(dataset)
    fig9 = fig9_opportunity(dataset)
    return {
        "study_windows": STUDY_WINDOWS,
        "session_count": dataset.session_count,
        "dropped_sessions": dataset.filter_stats.dropped_sessions,
        "kept_bytes": dataset.filter_stats.kept_bytes,
        "aggregation_count": len(dataset.store),
        "group_count": len(dataset.store.groups()),
        "windows": dataset.store.windows(),
        "fig6": {
            "median_minrtt": fig6.median_minrtt,
            "p80_minrtt": fig6.p80_minrtt,
            "hdratio_positive_fraction": fig6.hdratio_positive_fraction,
            "continent_median_minrtt": {
                code: fig6.continent_median_minrtt(code)
                for code in sorted(fig6.minrtt_by_continent)
            },
        },
        "fig8": {
            "minrtt_valid_traffic_fraction": fig8.minrtt.valid_traffic_fraction,
            "minrtt_differences": fig8.minrtt.differences,
            "hdratio_total_traffic": fig8.hdratio.total_traffic,
        },
        "fig9": {
            "minrtt_valid_traffic_fraction": fig9.minrtt.valid_traffic_fraction,
            "minrtt_differences": fig9.minrtt.differences,
        },
    }


def main() -> None:
    from repro.pipeline.io import write_samples
    from tests.helpers import make_trace_samples

    samples = make_trace_samples(
        GOLDEN_SESSIONS, seed=GOLDEN_SEED, windows=STUDY_WINDOWS
    )
    trace_path = HERE / "golden_trace.jsonl.gz"
    write_samples(trace_path, samples)
    snapshot = build_snapshot(trace_path)
    (HERE / "golden_report.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {trace_path} ({len(samples)} sessions) and golden_report.json")


if __name__ == "__main__":
    main()
