"""Tests for distribution-free median CIs (McKean–Schrader / Price–Bonett)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import compare_medians, median_ci, median_standard_error
from repro.stats.median_ci import normal_quantile


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.95, 1.644854),
            (0.025, -1.959964),
            (0.9999, 3.719016),
        ],
    )
    def test_known_values(self, p, expected):
        assert abs(normal_quantile(p) - expected) < 1e-4

    def test_rejects_boundaries(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    def test_symmetry(self):
        for p in (0.6, 0.8, 0.99, 0.999):
            assert abs(normal_quantile(p) + normal_quantile(1 - p)) < 1e-9


class TestMedianSE:
    def test_requires_five_samples(self):
        with pytest.raises(ValueError):
            median_standard_error([1.0, 2.0, 3.0, 4.0])

    def test_se_shrinks_with_sample_size(self):
        rng = random.Random(11)
        small = [rng.gauss(0, 1) for _ in range(50)]
        large = [rng.gauss(0, 1) for _ in range(5000)]
        assert median_standard_error(large) < median_standard_error(small)

    def test_se_close_to_asymptotic_for_normal(self):
        # For N(0,1), SE(median) ~ 1.2533 / sqrt(n).
        rng = random.Random(13)
        n = 4000
        ses = [
            median_standard_error([rng.gauss(0, 1) for _ in range(n)])
            for _ in range(20)
        ]
        mean_se = sum(ses) / len(ses)
        expected = 1.2533 / math.sqrt(n)
        assert abs(mean_se - expected) / expected < 0.25

    def test_constant_sample_has_zero_se(self):
        assert median_standard_error([5.0] * 100) == 0.0


class TestMedianCI:
    def test_ci_brackets_median(self):
        rng = random.Random(17)
        values = [rng.expovariate(0.1) for _ in range(500)]
        med, low, high = median_ci(values)
        assert low <= med <= high

    def test_coverage_is_approximately_nominal(self):
        # Repeated sampling from Exp(1) (true median ln 2): the 95% CI
        # should contain ln 2 in roughly 95% of replicates.
        rng = random.Random(19)
        hits = 0
        trials = 300
        for _ in range(trials):
            values = [rng.expovariate(1.0) for _ in range(200)]
            _, low, high = median_ci(values)
            if low <= math.log(2) <= high:
                hits += 1
        assert hits / trials > 0.88


class TestCompareMedians:
    def test_detects_clear_shift(self):
        rng = random.Random(23)
        a = [rng.gauss(50, 3) for _ in range(200)]
        b = [rng.gauss(40, 3) for _ in range(200)]
        result = compare_medians(a, b)
        assert result.valid
        assert result.exceeds(5.0)
        assert 8 < result.difference < 12

    def test_identical_populations_do_not_exceed(self):
        rng = random.Random(29)
        a = [rng.gauss(40, 5) for _ in range(300)]
        b = [rng.gauss(40, 5) for _ in range(300)]
        result = compare_medians(a, b)
        assert result.valid
        assert not result.exceeds(2.0)
        assert not result.below(2.0)

    def test_min_samples_rule(self):
        a = [1.0] * 29
        b = [2.0] * 100
        result = compare_medians(a, b)
        assert not result.valid
        assert not result.exceeds(0.0)

    def test_tiny_samples_return_invalid_not_error(self):
        result = compare_medians([1.0, 2.0], [3.0])
        assert not result.valid
        assert math.isnan(result.difference)

    def test_tight_ci_rule(self):
        rng = random.Random(31)
        # Huge variance on few-ish samples => wide CI => invalid at 10ms cap.
        a = [rng.gauss(100, 80) for _ in range(40)]
        b = [rng.gauss(100, 80) for _ in range(40)]
        result = compare_medians(a, b, max_ci_width=10.0)
        assert not result.valid

    def test_statistically_equal_or_greater(self):
        rng = random.Random(37)
        a = [rng.gauss(0.9, 0.05) for _ in range(200)]
        b = [rng.gauss(0.5, 0.05) for _ in range(200)]
        better = compare_medians(a, b)
        worse = compare_medians(b, a)
        assert better.statistically_equal_or_greater()
        assert not worse.statistically_equal_or_greater()

    def test_ci_width_property(self):
        rng = random.Random(41)
        a = [rng.gauss(10, 1) for _ in range(100)]
        b = [rng.gauss(10, 1) for _ in range(100)]
        result = compare_medians(a, b)
        assert result.ci_width == pytest.approx(result.ci_high - result.ci_low)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=1000), min_size=30, max_size=200),
    st.lists(st.floats(min_value=0, max_value=1000), min_size=30, max_size=200),
)
def test_difference_sign_flips_when_swapped(a, b):
    forward = compare_medians(a, b)
    backward = compare_medians(b, a)
    assert forward.difference == pytest.approx(-backward.difference)
    assert forward.ci_low == pytest.approx(-backward.ci_high)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=30, max_size=200))
def test_self_comparison_is_centered(values):
    result = compare_medians(values, values)
    assert result.difference == pytest.approx(0.0)
    assert result.ci_low <= 0.0 <= result.ci_high
