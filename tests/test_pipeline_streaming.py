"""Tests for the single-pass streaming route monitor."""

import pytest

from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.pipeline.streaming import StreamingRouteMonitor

from tests.helpers import DEFAULT_GROUP, make_route, make_sample

pytestmark = pytest.mark.streaming


def feed_capable_window(monitor, window, rtt_ms, hdratio, rank=0, count=40):
    """Feed a window of sessions whose transactions are HD-capable.

    ``hdratio`` sets the per-session achieved fraction: 1.0 means every
    transaction achieves HD, 0.0 means none does.
    """
    from repro.core.records import TransactionRecord

    base = window * AGGREGATION_WINDOW_SECONDS
    route = make_route(rank=rank)
    for index in range(count):
        end = base + (index + 0.5) * AGGREGATION_WINDOW_SECONDS / (count + 1)
        sample = make_sample(
            end_time=end, min_rtt_ms=rtt_ms + (index % 5) * 0.2, route=route
        )
        rtt = sample.min_rtt_seconds
        achieved = index / max(count - 1, 1) < hdratio
        # One clean, testable transaction: cwnd covers the response (so the
        # goodput test can run) and the pacing encodes achieved/not.
        response = 80_000
        transfer = 2.0 * rtt if achieved else 8.0 * rtt
        sample.transactions = [
            TransactionRecord(
                first_byte_time=end - 1.0,
                ack_time=end - 1.0 + transfer,
                response_bytes=response,
                last_packet_bytes=1500,
                cwnd_bytes_at_first_byte=response * 2,
                bytes_in_flight_at_start=0,
            )
        ]
        monitor.observe(sample)


def feed_window(monitor, window, rtt_ms, rank=0, count=40, hd_good=True):
    base = window * AGGREGATION_WINDOW_SECONDS
    route = make_route(rank=rank)
    for index in range(count):
        end = base + (index + 0.5) * AGGREGATION_WINDOW_SECONDS / (count + 1)
        sample = make_sample(
            end_time=end, min_rtt_ms=rtt_ms + (index % 5) * 0.2, route=route
        )
        monitor.observe(sample)


class TestMonitor:
    def test_hold_when_preferred_is_best(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        feed_window(monitor, 0, rtt_ms=47.0, rank=1)
        decisions = monitor.finish()
        assert len(decisions) == 1
        assert decisions[0].action == "hold"
        assert not decisions[0].is_shift_candidate

    def test_shift_candidate_on_confident_win(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[0].alternate_rank == 1
        assert decisions[0].minrtt_improvement_ms > 10.0

    def test_windows_close_in_order(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        feed_window(monitor, 1, rtt_ms=40.0, rank=0)
        feed_window(monitor, 2, rtt_ms=40.0, rank=0)
        decisions = monitor.finish()
        assert [d.window for d in decisions] == [0, 1, 2]

    def test_thin_windows_hold(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0, count=10)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1, count=10)
        decisions = monitor.finish()
        assert decisions[0].action == "hold"

    def test_missing_route_rejected(self):
        monitor = StreamingRouteMonitor()
        sample = make_sample(1.0, 40.0)
        sample.route = None
        with pytest.raises(ValueError):
            monitor.observe(sample)

    def test_state_cleared_between_windows(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        # Next window: no alternate data; monitor must not reuse stale state.
        feed_window(monitor, 1, rtt_ms=52.0, rank=0)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[1].action == "hold"

    def test_no_hd_capable_transactions_still_allows_rtt_shift(self):
        """Zero capable transactions in the window: both routes' HD digests
        are empty, the HD guard is vacuous, and a confident RTT win alone
        must still produce a shift candidate (with no claimed HD gain)."""
        monitor = StreamingRouteMonitor()
        # make_sample emits transaction-less sessions: nothing can test HD.
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[0].hdratio_improvement == 0.0

    def test_no_hd_capable_transactions_and_no_rtt_win_holds(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        feed_window(monitor, 0, rtt_ms=39.5, rank=1)
        decisions = monitor.finish()
        assert decisions[0].action == "hold"
        assert decisions[0].alternate_rank is None

    def test_missing_alternate_rank_falls_through_to_next(self):
        """Rank 1 went unmeasured mid-window; the decision must come from
        the rank that actually has data, not assume contiguous ranks."""
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=2)  # only rank 2 measured
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[0].alternate_rank == 2

    def test_alternate_vanishing_between_windows_does_not_leak(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=2)
        feed_window(monitor, 1, rtt_ms=52.0, rank=0)  # rank 2 disappears
        decisions = monitor.finish()
        assert decisions[0].alternate_rank == 2
        assert decisions[1].action == "hold"
        assert decisions[1].alternate_rank is None

    def test_hd_win_stands_alone_without_rtt_win(self):
        """An HDratio win is a shift candidate even when MinRTT is a wash
        (the paper's two-metric decision rule, HD side)."""
        monitor = StreamingRouteMonitor()
        feed_capable_window(monitor, 0, rtt_ms=40.0, hdratio=0.2, rank=0)
        feed_capable_window(monitor, 0, rtt_ms=40.0, hdratio=0.9, rank=1)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[0].hdratio_improvement > 0.0

    def test_agrees_with_batch_analysis(self):
        """The streaming monitor and the batch opportunity analysis must
        reach the same conclusion on the same stream."""
        from repro.core.aggregation import AggregationStore
        from repro.core.comparison import opportunity_series

        monitor = StreamingRouteMonitor()
        store = AggregationStore()

        from tests.helpers import fill_window

        samples = []
        base_route, alt_route = make_route(rank=0), make_route(rank=1)
        for window in range(2):
            base = window * AGGREGATION_WINDOW_SECONDS
            for index in range(45):
                end = base + index * 15.0
                preferred = make_sample(end, 50.0 + (index % 7) * 0.3, route=base_route)
                alternate = make_sample(end, 39.0 + (index % 7) * 0.3, route=alt_route)
                samples.extend([preferred, alternate])
        for sample in samples:
            store.add(sample, hdratio=None)
            monitor.observe(sample)
        decisions = monitor.finish()

        batch = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        batch_events = [v for v in batch if v.event_at(5.0)]
        streaming_events = [d for d in decisions if d.is_shift_candidate]
        assert bool(batch_events) == bool(streaming_events)
        assert len(streaming_events) == 2


class TestLateSamples:
    """Regression: ``observe()`` used to fold samples from an *earlier*
    window into the current window's aggregates, corrupting its digests."""

    def test_late_samples_do_not_pollute_current_window(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 1, rtt_ms=52.0, rank=0)
        # Late fast alternate: window 0 closed the moment window 1 opened.
        # Before the fix these 40 samples landed in window 1's rank-1
        # aggregate and produced a bogus shift candidate.
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        decisions = monitor.finish()
        assert monitor.late_samples == 40
        assert [d.window for d in decisions] == [1]
        assert decisions[0].action == "hold"
        assert decisions[0].alternate_rank is None

    def test_late_samples_counted_in_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        monitor = StreamingRouteMonitor(metrics=registry)
        feed_window(monitor, 2, rtt_ms=40.0, rank=0, count=5)
        feed_window(monitor, 1, rtt_ms=40.0, rank=0, count=3)
        assert registry.counter("stream.late_samples") == 3
        assert monitor.late_samples == 3

    def test_observe_reports_late_verdict(self):
        monitor = StreamingRouteMonitor()
        on_time = make_sample(
            AGGREGATION_WINDOW_SECONDS * 1.5, 40.0, route=make_route()
        )
        late = make_sample(
            AGGREGATION_WINDOW_SECONDS * 0.5, 40.0, route=make_route()
        )
        assert monitor.observe(on_time) is not False
        assert monitor.observe(late) is False

    def test_on_time_samples_within_window_still_aggregate(self):
        """Out-of-order arrivals *within* one window are not late."""
        monitor = StreamingRouteMonitor()
        base = 1 * AGGREGATION_WINDOW_SECONDS
        monitor.observe(make_sample(base + 500.0, 40.0, route=make_route()))
        monitor.observe(make_sample(base + 100.0, 41.0, route=make_route()))
        assert monitor.late_samples == 0
        decisions = monitor.finish()
        assert decisions[0].preferred_sessions == 2


class TestFinishIdempotent:
    """Regression: a second ``finish()`` re-closed the trailing window and
    duplicated its decisions."""

    def test_second_finish_does_not_duplicate_decisions(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        first = monitor.finish()
        assert len(first) == 1
        second = monitor.finish()
        assert second is first
        assert len(second) == 1
        assert monitor.closed_windows == [0]

    def test_observe_after_finish_rejected(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        monitor.finish()
        with pytest.raises(ValueError):
            monitor.observe(make_sample(10.0, 40.0, route=make_route()))

    def test_multi_window_jump_closes_intervening_windows(self):
        """A sample jumping >1 window forward closes the skipped empty
        windows too: the closed-window record is gapless and monotone and
        decision windows stay monotone."""
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 3, rtt_ms=40.0, rank=0)
        feed_window(monitor, 7, rtt_ms=40.0, rank=0)
        decisions = monitor.finish()
        assert monitor.closed_windows == [3, 4, 5, 6, 7]
        assert [d.window for d in decisions] == [3, 7]

    def test_finish_on_empty_monitor_is_clean(self):
        monitor = StreamingRouteMonitor()
        assert monitor.finish() == []
        assert monitor.closed_windows == []
        assert monitor.finish() == []


class TestCloseWindowLabel:
    """Regression: ``_close_window()`` fell back to labeling decisions with
    window 0 when ``_current_window`` was ``None`` but state existed."""

    def test_state_without_window_raises(self):
        from repro.stats.streaming import StreamingAggregate

        monitor = StreamingRouteMonitor()
        aggregate = StreamingAggregate.empty()
        for rtt in (40.0, 41.0, 42.0, 43.0, 44.0):
            aggregate.add(rtt, None, 1000)
        monitor._state[(DEFAULT_GROUP, 0)] = aggregate
        assert monitor._current_window is None
        with pytest.raises(RuntimeError, match="without a current window"):
            monitor._close_window()
        # No decision was minted with a fabricated window label.
        assert monitor.decisions == []

    def test_close_without_state_or_window_is_noop(self):
        monitor = StreamingRouteMonitor()
        monitor._close_window()
        assert monitor.closed_windows == []
        assert monitor.decisions == []


class TestCiWidthBoundary:
    """The CI-width validity gate is inclusive: a comparison whose CI is
    exactly ``MAX_CI_WIDTH_*`` wide is still valid (§5's "sufficiently
    narrow" is ``<=``, not ``<``)."""

    @staticmethod
    def _digest_pair():
        from repro.stats.tdigest import TDigest

        a, b = TDigest(), TDigest()
        for index in range(60):
            a.add(50.0 + (index % 9) * 0.4)
            b.add(40.0 + (index % 9) * 0.4)
        return a, b

    def test_width_exactly_at_limit_is_valid(self):
        from repro.stats.streaming import streaming_compare

        a, b = self._digest_pair()
        unbounded = streaming_compare(a, b)
        width = unbounded.ci_high - unbounded.ci_low
        assert width > 0.0
        at_limit = streaming_compare(a, b, max_ci_width=width)
        assert at_limit.valid

    def test_width_just_over_limit_is_invalid(self):
        import math

        from repro.stats.streaming import streaming_compare

        a, b = self._digest_pair()
        unbounded = streaming_compare(a, b)
        width = unbounded.ci_high - unbounded.ci_low
        over = streaming_compare(
            a, b, max_ci_width=math.nextafter(width, 0.0)
        )
        assert not over.valid

    def test_monitor_shift_survives_ci_exactly_at_max_width(self, monkeypatch):
        """End to end: pin MAX_CI_WIDTH_MINRTT_MS to the observed CI width
        and the decision must still be a shift candidate."""
        from repro.stats.streaming import streaming_compare
        import repro.pipeline.streaming as streaming_mod

        probe = StreamingRouteMonitor()
        feed_window(probe, 0, rtt_ms=52.0, rank=0)
        feed_window(probe, 0, rtt_ms=38.0, rank=1)
        (preferred,) = [
            agg for (_, rank), agg in probe._state.items() if rank == 0
        ]
        (alternate,) = [
            agg for (_, rank), agg in probe._state.items() if rank == 1
        ]
        cmp = streaming_compare(preferred.rtt_digest, alternate.rtt_digest)
        width = cmp.ci_high - cmp.ci_low

        monkeypatch.setattr(
            streaming_mod, "MAX_CI_WIDTH_MINRTT_MS", width
        )
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        assert monitor.finish()[0].is_shift_candidate
