"""Tests for the single-pass streaming route monitor."""

import pytest

from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.pipeline.streaming import StreamingRouteMonitor

from tests.helpers import DEFAULT_GROUP, make_route, make_sample


def feed_window(monitor, window, rtt_ms, rank=0, count=40, hd_good=True):
    base = window * AGGREGATION_WINDOW_SECONDS
    route = make_route(rank=rank)
    for index in range(count):
        end = base + (index + 0.5) * AGGREGATION_WINDOW_SECONDS / (count + 1)
        sample = make_sample(
            end_time=end, min_rtt_ms=rtt_ms + (index % 5) * 0.2, route=route
        )
        monitor.observe(sample)


class TestMonitor:
    def test_hold_when_preferred_is_best(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        feed_window(monitor, 0, rtt_ms=47.0, rank=1)
        decisions = monitor.finish()
        assert len(decisions) == 1
        assert decisions[0].action == "hold"
        assert not decisions[0].is_shift_candidate

    def test_shift_candidate_on_confident_win(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[0].alternate_rank == 1
        assert decisions[0].minrtt_improvement_ms > 10.0

    def test_windows_close_in_order(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=40.0, rank=0)
        feed_window(monitor, 1, rtt_ms=40.0, rank=0)
        feed_window(monitor, 2, rtt_ms=40.0, rank=0)
        decisions = monitor.finish()
        assert [d.window for d in decisions] == [0, 1, 2]

    def test_thin_windows_hold(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0, count=10)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1, count=10)
        decisions = monitor.finish()
        assert decisions[0].action == "hold"

    def test_missing_route_rejected(self):
        monitor = StreamingRouteMonitor()
        sample = make_sample(1.0, 40.0)
        sample.route = None
        with pytest.raises(ValueError):
            monitor.observe(sample)

    def test_state_cleared_between_windows(self):
        monitor = StreamingRouteMonitor()
        feed_window(monitor, 0, rtt_ms=52.0, rank=0)
        feed_window(monitor, 0, rtt_ms=38.0, rank=1)
        # Next window: no alternate data; monitor must not reuse stale state.
        feed_window(monitor, 1, rtt_ms=52.0, rank=0)
        decisions = monitor.finish()
        assert decisions[0].is_shift_candidate
        assert decisions[1].action == "hold"

    def test_agrees_with_batch_analysis(self):
        """The streaming monitor and the batch opportunity analysis must
        reach the same conclusion on the same stream."""
        from repro.core.aggregation import AggregationStore
        from repro.core.comparison import opportunity_series

        monitor = StreamingRouteMonitor()
        store = AggregationStore()

        from tests.helpers import fill_window

        samples = []
        base_route, alt_route = make_route(rank=0), make_route(rank=1)
        for window in range(2):
            base = window * AGGREGATION_WINDOW_SECONDS
            for index in range(45):
                end = base + index * 15.0
                preferred = make_sample(end, 50.0 + (index % 7) * 0.3, route=base_route)
                alternate = make_sample(end, 39.0 + (index % 7) * 0.3, route=alt_route)
                samples.extend([preferred, alternate])
        for sample in samples:
            store.add(sample, hdratio=None)
            monitor.observe(sample)
        decisions = monitor.finish()

        batch = opportunity_series(store, DEFAULT_GROUP, "minrtt")
        batch_events = [v for v in batch if v.event_at(5.0)]
        streaming_events = [d for d in decisions if d.is_shift_candidate]
        assert bool(batch_events) == bool(streaming_events)
        assert len(streaming_events) == 2
