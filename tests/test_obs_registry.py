"""Unit + property tests for the metrics registry (``repro.obs.registry``).

The property under the most scrutiny is the merge algebra: counter and
gauge merges must be commutative and associative, because the parallel
pipeline folds shard registries back in whatever order the executor yields
them and the result must not depend on it (the counter-equality
invariant; see ``repro/obs/__init__.py``).
"""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    TimerStat,
    activate_metrics,
    active_metrics,
    merge_into_active,
)

# --------------------------------------------------------------------- #
# Counters
# --------------------------------------------------------------------- #
class TestCounters:
    def test_inc_defaults_to_one_and_accumulates(self):
        registry = MetricsRegistry()
        assert registry.inc("pipeline.samples.read") == 1
        assert registry.inc("pipeline.samples.read", 4) == 5
        assert registry.counter("pipeline.samples.read") == 5

    def test_unset_counter_reads_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="monotonic"):
            registry.inc("pipeline.samples.read", -1)

    def test_zero_increment_materializes_the_counter(self):
        registry = MetricsRegistry()
        registry.inc("methodology.transactions.coalesced", 0)
        assert "methodology.transactions.coalesced" in registry.counters

    @pytest.mark.parametrize(
        "name",
        ["Pipeline.read", "pipeline..read", ".read", "read.", "sp ace", "dash-ed", ""],
    )
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().inc(name)

    @pytest.mark.parametrize("name", ["a", "a.b", "io.rows_read", "x9.y_0.z"])
    def test_valid_names_accepted(self, name):
        registry = MetricsRegistry()
        registry.inc(name)
        assert registry.counter(name) == 1

    def test_counters_view_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.inc("b.two")
        registry.inc("a.one")
        view = registry.counters
        assert list(view) == ["a.one", "b.two"]
        view["a.one"] = 99
        assert registry.counter("a.one") == 1


# --------------------------------------------------------------------- #
# Gauges
# --------------------------------------------------------------------- #
class TestGauges:
    def test_set_and_read(self):
        registry = MetricsRegistry()
        registry.set_gauge("pipeline.rows", 42)
        assert registry.gauge("pipeline.rows") == 42.0
        assert registry.gauge("missing") is None

    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("pipeline.rows", 10)
        registry.set_gauge("pipeline.rows", 3)
        assert registry.gauge("pipeline.rows") == 3.0

    def test_merge_takes_maximum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("netsim.sim_time_seconds", 4.0)
        b.set_gauge("netsim.sim_time_seconds", 9.0)
        b.set_gauge("only.theirs", 1.0)
        a.merge(b)
        assert a.gauge("netsim.sim_time_seconds") == 9.0
        assert a.gauge("only.theirs") == 1.0


# --------------------------------------------------------------------- #
# Timers
# --------------------------------------------------------------------- #
class TestTimers:
    def test_observe_accumulates_summary(self):
        registry = MetricsRegistry()
        for value in (0.2, 0.1, 0.4):
            registry.observe("stage.merge", value)
        stat = registry.timer_stat("stage.merge")
        assert stat.count == 3
        assert stat.total == pytest.approx(0.7)
        assert stat.min == pytest.approx(0.1)
        assert stat.max == pytest.approx(0.4)
        assert stat.mean == pytest.approx(0.7 / 3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TimerStat().observe(-0.001)

    def test_timer_contextmanager_records_one_observation(self):
        registry = MetricsRegistry()
        with registry.timer("stage.block"):
            pass
        stat = registry.timer_stat("stage.block")
        assert stat.count == 1
        assert stat.total >= 0.0

    def test_timer_contextmanager_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("stage.boom"):
                raise RuntimeError("boom")
        assert registry.timer_stat("stage.boom").count == 1

    def test_quantile_requires_observations(self):
        with pytest.raises(ValueError, match="no observations"):
            TimerStat().quantile(0.5)

    def test_merge_combines_extrema_and_counts(self):
        a, b = TimerStat(), TimerStat()
        for value in (0.1, 0.3):
            a.observe(value)
        for value in (0.05, 0.6):
            b.observe(value)
        a.merge(b)
        assert a.count == 4
        assert a.min == pytest.approx(0.05)
        assert a.max == pytest.approx(0.6)
        assert a.total == pytest.approx(1.05)

    def test_to_dict_with_and_without_observations(self):
        empty = TimerStat().to_dict()
        assert empty["count"] == 0
        assert "p50_seconds" not in empty
        stat = TimerStat()
        stat.observe(0.5)
        payload = stat.to_dict()
        assert payload["count"] == 1
        assert payload["p50_seconds"] == pytest.approx(0.5)
        assert payload["p99_seconds"] == pytest.approx(0.5)


# --------------------------------------------------------------------- #
# Merge algebra (Hypothesis)
# --------------------------------------------------------------------- #
_NAMES = st.sampled_from(
    ["pipeline.samples.read", "io.rows_read", "methodology.transactions.raw",
     "core.aggregation.samples", "netsim.events_processed"]
)
_COUNTER_MAPS = st.dictionaries(_NAMES, st.integers(min_value=0, max_value=10**9))
_GAUGE_MAPS = st.dictionaries(
    _NAMES, st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
)


def _registry(counters, gauges):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.inc(name, value)
    for name, value in gauges.items():
        registry.set_gauge(name, value)
    return registry


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=_COUNTER_MAPS, b=_COUNTER_MAPS, ga=_GAUGE_MAPS, gb=_GAUGE_MAPS)
    def test_merge_commutes(self, a, b, ga, gb):
        ab = _registry(a, ga).merge(_registry(b, gb))
        ba = _registry(b, gb).merge(_registry(a, ga))
        assert ab.counters == ba.counters
        assert ab.gauges == ba.gauges

    @settings(max_examples=60, deadline=None)
    @given(a=_COUNTER_MAPS, b=_COUNTER_MAPS, c=_COUNTER_MAPS)
    def test_merge_associates(self, a, b, c):
        left = _registry(a, {}).merge(_registry(b, {}).merge(_registry(c, {})))
        right = _registry(a, {}).merge(_registry(b, {})).merge(_registry(c, {}))
        assert left.counters == right.counters

    @settings(max_examples=30, deadline=None)
    @given(a=_COUNTER_MAPS)
    def test_empty_registry_is_identity(self, a):
        merged = _registry(a, {}).merge(MetricsRegistry())
        assert merged.counters == _registry(a, {}).counters

    def test_timer_summary_merge_is_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            a.observe("stage.x", value)
        for value in (0.4, 0.5):
            b.observe("stage.x", value)
        ab = MetricsRegistry().merge(a).merge(b).timer_stat("stage.x")
        ba = MetricsRegistry().merge(b).merge(a).timer_stat("stage.x")
        assert (ab.count, ab.total, ab.min, ab.max) == (
            ba.count, ba.total, ba.min, ba.max
        )


# --------------------------------------------------------------------- #
# Serialization & pickling
# --------------------------------------------------------------------- #
class TestSerialization:
    def test_to_dict_round_trips_counters_and_gauges(self):
        registry = _registry(
            {"pipeline.samples.read": 7}, {"pipeline.rows": 5.0}
        )
        registry.observe("stage.x", 0.25)
        payload = registry.to_dict()
        rebuilt = MetricsRegistry.from_dict(payload)
        assert rebuilt.counters == registry.counters
        assert rebuilt.gauges == registry.gauges
        # Timers are summarized, not reconstructed.
        assert rebuilt.timer_stat("stage.x") is None
        assert payload["timers"]["stage.x"]["count"] == 1

    def test_registry_is_picklable(self):
        registry = _registry({"io.rows_read": 3}, {"pipeline.rows": 1.0})
        registry.observe("stage.x", 0.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counters == registry.counters
        assert clone.timer_stat("stage.x").count == 1

    def test_len_counts_all_kinds(self):
        registry = _registry({"a.b": 1}, {"c.d": 2.0})
        registry.observe("e.f", 0.1)
        assert len(registry) == 3
        assert len(MetricsRegistry()) == 0


# --------------------------------------------------------------------- #
# Active-registry plumbing
# --------------------------------------------------------------------- #
class TestActiveRegistry:
    def test_activation_is_scoped_and_restores_previous(self):
        assert active_metrics() is None
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate_metrics(outer):
            assert active_metrics() is outer
            with activate_metrics(inner):
                assert active_metrics() is inner
            assert active_metrics() is outer
        assert active_metrics() is None

    def test_merge_into_active_folds_counters(self):
        target, worker = MetricsRegistry(), MetricsRegistry()
        worker.inc("pipeline.samples.read", 5)
        with activate_metrics(target):
            merge_into_active(worker)
        assert target.counter("pipeline.samples.read") == 5

    def test_merge_into_active_without_activation_is_noop(self):
        worker = MetricsRegistry()
        worker.inc("pipeline.samples.read")
        merge_into_active(worker)  # must not raise
        assert active_metrics() is None

    def test_merge_into_active_skips_self_merge(self):
        registry = MetricsRegistry()
        registry.inc("pipeline.samples.read", 3)
        with activate_metrics(registry):
            merge_into_active(registry)
        assert registry.counter("pipeline.samples.read") == 3
