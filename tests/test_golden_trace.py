"""Golden-trace regression: the committed fixture must keep its numbers.

``tests/data/golden_trace.jsonl.gz`` is a small deterministic session trace
and ``golden_report.json`` the fig6/fig8/fig9 numbers it produced when
committed. Any refactor of the ingestion, aggregation, or comparison layers
that shifts these numbers — even in the last float bit — fails here and has
to either be fixed or regenerate the fixture *deliberately* (see
``tests/data/make_golden.py``).
"""

import json
import pathlib

import pytest

from repro.pipeline import (
    ParallelOptions,
    StudyDataset,
    build_dataset,
    fig6_global_performance,
    fig8_degradation,
    fig9_opportunity,
    read_samples,
)

DATA = pathlib.Path(__file__).parent / "data"
TRACE = DATA / "golden_trace.jsonl.gz"

exact = pytest.approx  # readability: approx with tight rel below means "exact"


@pytest.fixture(scope="module")
def snapshot():
    return json.loads((DATA / "golden_report.json").read_text())


@pytest.fixture(scope="module")
def dataset(snapshot):
    dataset = StudyDataset(study_windows=snapshot["study_windows"])
    return dataset.ingest(read_samples(TRACE))


def assert_matches_snapshot(dataset: StudyDataset, snapshot: dict) -> None:
    assert dataset.session_count == snapshot["session_count"]
    assert dataset.filter_stats.dropped_sessions == snapshot["dropped_sessions"]
    assert dataset.filter_stats.kept_bytes == snapshot["kept_bytes"]
    assert len(dataset.store) == snapshot["aggregation_count"]
    assert len(dataset.store.groups()) == snapshot["group_count"]
    assert dataset.store.windows() == snapshot["windows"]

    fig6 = fig6_global_performance(dataset)
    expected6 = snapshot["fig6"]
    assert fig6.median_minrtt == exact(expected6["median_minrtt"], rel=1e-12)
    assert fig6.p80_minrtt == exact(expected6["p80_minrtt"], rel=1e-12)
    assert fig6.hdratio_positive_fraction == exact(
        expected6["hdratio_positive_fraction"], rel=1e-12
    )
    for code, value in expected6["continent_median_minrtt"].items():
        assert fig6.continent_median_minrtt(code) == exact(value, rel=1e-12)

    fig8 = fig8_degradation(dataset)
    expected8 = snapshot["fig8"]
    assert fig8.minrtt.valid_traffic_fraction == exact(
        expected8["minrtt_valid_traffic_fraction"], rel=1e-12
    )
    assert fig8.minrtt.differences == exact(
        expected8["minrtt_differences"], rel=1e-12
    )
    assert fig8.hdratio.total_traffic == exact(
        expected8["hdratio_total_traffic"], rel=1e-12
    )

    fig9 = fig9_opportunity(dataset)
    expected9 = snapshot["fig9"]
    assert fig9.minrtt.valid_traffic_fraction == exact(
        expected9["minrtt_valid_traffic_fraction"], rel=1e-12
    )
    assert fig9.minrtt.differences == exact(
        expected9["minrtt_differences"], rel=1e-12
    )


class TestGoldenTrace:
    def test_fixture_is_present_and_nontrivial(self, snapshot):
        assert TRACE.exists()
        assert snapshot["session_count"] > 500
        # The fixture must carry actual CI-gated comparison signal, or the
        # regression test would not notice a broken comparison layer.
        assert snapshot["fig8"]["minrtt_differences"]
        assert snapshot["fig9"]["minrtt_differences"]

    def test_serial_pipeline_matches_snapshot(self, dataset, snapshot):
        assert_matches_snapshot(dataset, snapshot)

    def test_parallel_pipeline_matches_snapshot(self, snapshot):
        parallel = build_dataset(
            TRACE,
            study_windows=snapshot["study_windows"],
            options=ParallelOptions(workers=2, shards=3, executor="serial"),
        )
        assert_matches_snapshot(parallel, snapshot)

    def test_parallel_equals_serial_exactly(self, dataset, snapshot):
        parallel = build_dataset(
            TRACE,
            study_windows=snapshot["study_windows"],
            options=ParallelOptions(workers=2, shards=4, executor="thread"),
        )
        assert parallel.rows == dataset.rows
        assert [k for k, _ in parallel.store.items()] == [
            k for k, _ in dataset.store.items()
        ]


class TestGoldenMethodologyCounters:
    """The observability counters must agree with the §3.2 classifier.

    ``methodology.*`` counters are incremented as a side effect of
    ingestion; here they are checked against an independent per-session
    recompute straight through :func:`repro.core.hdratio.session_goodput`
    over the same golden trace.
    """

    @pytest.fixture(scope="class")
    def counted(self, snapshot):
        return build_dataset(TRACE, study_windows=snapshot["study_windows"])

    @pytest.fixture(scope="class")
    def expected_funnel(self, snapshot):
        from repro.core.hdratio import session_goodput

        probe = StudyDataset(study_windows=snapshot["study_windows"])
        funnel = {
            "raw": 0, "coalesced": 0, "inflight_dropped": 0,
            "gtestable": 0, "achieved": 0, "hd_testable": 0,
        }
        for sample in read_samples(TRACE):
            if not probe.ingest_one(sample) or not sample.transactions:
                continue
            summary = session_goodput(sample.transactions, sample.min_rtt_seconds)
            funnel["raw"] += summary.raw_count
            funnel["coalesced"] += summary.merged_away
            funnel["inflight_dropped"] += summary.inflight_dropped
            funnel["gtestable"] += summary.tested
            funnel["achieved"] += summary.achieved
            funnel["hd_testable"] += 1 if summary.tested else 0
        return funnel

    def test_gtestable_achieved_coalesced_match_classifier(
        self, counted, expected_funnel
    ):
        counters = counted.metrics.counters
        assert (
            counters["methodology.transactions.gtestable"]
            == expected_funnel["gtestable"]
        )
        assert (
            counters["methodology.transactions.achieved"]
            == expected_funnel["achieved"]
        )
        assert (
            counters["methodology.transactions.coalesced"]
            == expected_funnel["coalesced"]
        )
        assert (
            counters["methodology.transactions.inflight_dropped"]
            == expected_funnel["inflight_dropped"]
        )
        assert counters["methodology.transactions.raw"] == expected_funnel["raw"]
        assert (
            counters["methodology.sessions.hd_testable"]
            == expected_funnel["hd_testable"]
        )

    def test_funnel_is_nontrivial_and_monotone(self, counted):
        counters = counted.metrics.counters
        # The golden fixture must exercise every classifier stage, or this
        # test could not catch a broken one.
        assert counters["methodology.transactions.gtestable"] > 0
        assert counters["methodology.sessions.hd_testable"] > 0
        assert (
            counters["methodology.transactions.raw"]
            >= counters["methodology.transactions.gtestable"]
            >= counters["methodology.transactions.achieved"]
        )

    def test_parallel_counters_match_serial_on_golden_trace(
        self, counted, snapshot
    ):
        parallel = build_dataset(
            TRACE,
            study_windows=snapshot["study_windows"],
            options=ParallelOptions(workers=2, shards=3, executor="thread"),
        )
        assert parallel.metrics.counters == counted.metrics.counters
        assert parallel.metrics.gauges == counted.metrics.gauges
