"""Dispatch-overhead benchmark: socket daemons vs the local process pool.

Runs the same sharded analysis three ways over one synthetic trace —
serial, process pool, and dispatch over two worker daemons on localhost —
and reports wall time plus the dispatch manifest counters (tasks
dispatched, bytes over the wire). The daemons here are in-process
threads, so what the dispatch number measures is exactly the subsystem's
own overhead: pickling shard tasks, framing them over a real TCP socket,
and merging results that arrive out of order.

One floor is asserted: dispatch over localhost must stay within
``OVERHEAD_CEILING``x of the process pool's wall time (default 3.0).
On a single host the process pool is the natural winner — dispatch pays
serialization twice (client and daemon) plus socket hops for zero extra
parallel hardware — so the bound is a regression tripwire for the
transport, not a performance claim. Cross-host, the same wire buys
shards on machines the pool cannot reach.

Results land in ``benchmarks/results/BENCH_dist.json``.

Scale knobs: ``REPRO_BENCH_DIST_SESSIONS`` (default 20000),
``REPRO_BENCH_DIST_SHARDS`` (default 8),
``REPRO_BENCH_DIST_OVERHEAD`` (overhead ceiling, default 3.0).

Run with ``make bench-dist`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.dist import WorkerDaemon
from repro.obs import MetricsRegistry, activate_metrics
from repro.pipeline import ParallelOptions, StudyDataset, build_dataset

from tests.helpers import make_trace_samples
from tests.test_pipeline_parallel import assert_datasets_equal

pytestmark = pytest.mark.bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SESSIONS = int(os.environ.get("REPRO_BENCH_DIST_SESSIONS", 20_000))
SHARDS = int(os.environ.get("REPRO_BENCH_DIST_SHARDS", 8))
OVERHEAD_CEILING = float(os.environ.get("REPRO_BENCH_DIST_OVERHEAD", 3.0))
STUDY_WINDOWS = 8
WORKERS = 2


def _timed_build(samples, options=None):
    registry = MetricsRegistry()
    start = time.perf_counter()
    with activate_metrics(registry):
        dataset = build_dataset(
            iter(samples), study_windows=STUDY_WINDOWS, options=options
        )
    return dataset, time.perf_counter() - start, registry


def test_dispatch_overhead():
    samples = make_trace_samples(SESSIONS, seed=23, windows=STUDY_WINDOWS)
    serial = StudyDataset(study_windows=STUDY_WINDOWS).ingest(iter(samples))

    _, serial_wall, _ = _timed_build(samples)

    pool_dataset, pool_wall, _ = _timed_build(
        samples,
        ParallelOptions(workers=WORKERS, shards=SHARDS, executor="process"),
    )
    assert_datasets_equal(pool_dataset, serial)

    with WorkerDaemon() as first, WorkerDaemon() as second:
        dispatch_dataset, dispatch_wall, registry = _timed_build(
            samples,
            ParallelOptions(
                workers=WORKERS,
                shards=SHARDS,
                executor="dispatch",
                worker_addrs=(first.address, second.address),
            ),
        )
    assert_datasets_equal(dispatch_dataset, serial)
    assert registry.counter("dist.tasks.dispatched") == SHARDS
    assert registry.counter("dist.workers.lost") == 0

    overhead = dispatch_wall / pool_wall if pool_wall else float("inf")
    results = {
        "sessions": SESSIONS,
        "shards": SHARDS,
        "workers": WORKERS,
        "serial_wall_seconds": round(serial_wall, 4),
        "process_pool_wall_seconds": round(pool_wall, 4),
        "dispatch_wall_seconds": round(dispatch_wall, 4),
        "dispatch_vs_pool": round(overhead, 3),
        "overhead_ceiling": OVERHEAD_CEILING,
        "dist_counters": {
            name: value
            for name, value in registry.counters.items()
            if name.startswith("dist.")
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dist.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert overhead <= OVERHEAD_CEILING, (
        f"dispatch over localhost took {overhead:.2f}x the process pool "
        f"(ceiling {OVERHEAD_CEILING:.1f}x): "
        f"{dispatch_wall:.3f}s vs {pool_wall:.3f}s"
    )
