"""Figure 10 — MinRTT_P50 differences by peering relationship.

Paper anchors: distributions concentrate around zero; peering-vs-transit is
clearly left-skewed (peer routes usually have lower MinRTT — they are
direct); ~10% of peer traffic beats the transit alternate by >= 10 ms;
transit-vs-transit is closer to symmetric, slightly favouring the more
policy-preferred transit.
"""

from repro.pipeline import fig10_relationship_comparison
from repro.pipeline.report import format_table
from repro.stats.weighted import weighted_fraction_at_most


def test_fig10_relationship_comparison(benchmark, routing_dataset, record_result):
    result = benchmark.pedantic(
        fig10_relationship_comparison,
        args=(routing_dataset,),
        rounds=1,
        iterations=1,
    )

    rows = []
    for pair, acc in result.by_pair.items():
        if not acc.differences:
            rows.append((pair, "0", "-", "-", "-"))
            continue
        # Differences are preferred − alternate: negative = preferred
        # faster.
        preferred_better = weighted_fraction_at_most(
            acc.differences, acc.weights, -1e-9
        )
        beats_by_10 = weighted_fraction_at_most(
            acc.differences, acc.weights, -10.0
        )
        rows.append(
            (
                pair,
                f"{len(acc.differences)}",
                f"{result.median_difference(pair):+.2f}",
                f"{preferred_better:.2f}",
                f"{beats_by_10:.2f}",
            )
        )
    hd_rows = []
    for pair, acc in result.hd_by_pair.items():
        if not acc.differences:
            hd_rows.append((pair, "0", "-"))
            continue
        hd_rows.append(
            (pair, f"{len(acc.differences)}",
             f"{result.median_hd_difference(pair):+.3f}")
        )
    record_result(
        "fig10_relationships",
        format_table(
            (
                "pair",
                "comparisons",
                "median diff (ms)",
                "preferred better",
                "by >=10 ms",
            ),
            rows,
            title=(
                "Figure 10 — MinRTT_P50 difference (preferred − alternate); "
                "negative = preferred faster:"
            ),
        )
        + "\n\n"
        + format_table(
            ("pair", "comparisons", "median HDratio diff"),
            hd_rows,
            title=(
                "§6.3 HDratio_P50 difference (alternate − preferred); the "
                "paper reports these concentrated at 0 and symmetric:"
            ),
        ),
    )

    # §6.3's HDratio claim: the distributions sit on ~0.
    for pair, acc in result.hd_by_pair.items():
        if acc.differences:
            assert abs(result.median_hd_difference(pair)) < 0.1

    peer_transit = result.by_pair["peering-vs-transit"]
    assert peer_transit.differences, "no peer-vs-transit comparisons produced"
    # Left skew: peer (preferred) usually at least as fast as transit.
    assert result.median_difference("peering-vs-transit") <= 0.5
    preferred_better = weighted_fraction_at_most(
        peer_transit.differences, peer_transit.weights, 0.0
    )
    assert preferred_better > 0.5

    transit_transit = result.by_pair["transit-vs-transit"]
    if transit_transit.differences:
        # Closer to symmetric than peer-vs-transit.
        assert abs(result.median_difference("transit-vs-transit")) < 6.0
