"""I/O benchmark: columnar store vs JSONL ingest, plus predicate pushdown.

Writes the same synthetic trace as plain JSONL and as a columnar store,
then times a full ``read_samples`` pass over each (best of three) and a
filtered store scan. Results — rows/sec, bytes/sec, on-disk sizes, and
the pruning ratio of the filtered scan — land in
``benchmarks/results/BENCH_io.json``.

The acceptance floor: the store must ingest at >=2x the JSONL rows/sec.
Decode is pure single-threaded CPU (struct unpacking vs json.loads), so
the floor applies on any host.

Scale knob: ``REPRO_BENCH_IO_SESSIONS`` (default 30_000).

Run with ``make bench-io`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.obs import MetricsRegistry
from repro.pipeline.io import convert, read_samples, write_samples
from repro.store import ScanFilter, TraceStoreReader

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SESSIONS = int(os.environ.get("REPRO_BENCH_IO_SESSIONS", 30_000))
STUDY_WINDOWS = 16
# Best-of-5: single passes on a shared CI host jitter by ~20%, which is
# enough to blur a 2x ratio; the minimum is the stable estimator.
REPEATS = 5
STORE_SPEEDUP_FLOOR = 2.0


def _scan_seconds(path) -> "tuple[int, float]":
    """Best-of-N full-pass time and the row count (sanity-checked)."""
    best = float("inf")
    rows = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        rows = sum(1 for _ in read_samples(path))
        best = min(best, time.perf_counter() - start)
    return rows, best


def _tree_bytes(path: pathlib.Path) -> int:
    if path.is_dir():
        return sum(child.stat().st_size for child in path.iterdir())
    return path.stat().st_size


def test_store_vs_jsonl_ingest(tmp_path):
    jsonl = tmp_path / "bench_io.jsonl"
    store = tmp_path / "bench_io.store"
    write_samples(jsonl, make_trace_samples(SESSIONS, seed=47, windows=STUDY_WINDOWS))
    convert(jsonl, store)

    jsonl_rows, jsonl_s = _scan_seconds(jsonl)
    store_rows, store_s = _scan_seconds(store)
    assert jsonl_rows == store_rows == SESSIONS

    jsonl_bytes = _tree_bytes(jsonl)
    store_bytes = _tree_bytes(store)

    # Pushdown: scan one PoP and measure how much of data.bin never got
    # decoded. The pruning ratio is a data property (partition layout),
    # not a timing, so a single pass suffices.
    reader = TraceStoreReader(store)
    filtered = MetricsRegistry()
    list(reader.scan(ScanFilter(pops=reader.partitions[0]["pop"]), metrics=filtered))
    bytes_read = filtered.counter("store.bytes.read")
    bytes_skipped = filtered.counter("store.bytes.skipped")
    pruning_ratio = bytes_skipped / (bytes_read + bytes_skipped)

    speedup = (SESSIONS / store_s) / (SESSIONS / jsonl_s)
    results = {
        "sessions": SESSIONS,
        "repeats_best_of": REPEATS,
        "jsonl": {
            "file_bytes": jsonl_bytes,
            "scan_seconds": round(jsonl_s, 4),
            "rows_per_sec": round(SESSIONS / jsonl_s),
            "bytes_per_sec": round(jsonl_bytes / jsonl_s),
        },
        "store": {
            "file_bytes": store_bytes,
            "scan_seconds": round(store_s, 4),
            "rows_per_sec": round(SESSIONS / store_s),
            "bytes_per_sec": round(store_bytes / store_s),
            "size_vs_jsonl": round(store_bytes / jsonl_bytes, 4),
        },
        "ingest_speedup": round(speedup, 2),
        "filtered_scan": {
            "partitions_scanned": filtered.counter("store.partitions.scanned"),
            "partitions_pruned": filtered.counter("store.partitions.pruned"),
            "bytes_read": bytes_read,
            "bytes_skipped": bytes_skipped,
            "pruning_ratio": round(pruning_ratio, 4),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_io.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert pruning_ratio > 0.0, "filter admitted every partition"
    assert speedup >= STORE_SPEEDUP_FLOOR, (
        f"store ingest only {speedup:.2f}x over JSONL "
        f"(floor {STORE_SPEEDUP_FLOOR}x)"
    )
