"""Ablation — PEP split connections bias server-side measurements (§2.2.1).

The paper's stated drawback of server-side passive measurement: behind a
performance-enhancing proxy, the server observes the server↔PEP segment
and "may overestimate goodput and underestimate latency relative to what
would be measured end-to-end". This bench quantifies the bias on a modelled
satellite access network and shows the unsplit (QUIC-like) connection
measuring truthfully.
"""

from repro.netsim.pep import run_end_to_end_transfer, run_split_transfer
from repro.pipeline.report import format_table

MSS = 1500


def _run_study():
    sizes = [100 * MSS, 100 * MSS]
    split = run_split_transfer(sizes)
    unsplit = run_end_to_end_transfer(sizes)
    return split, unsplit


def test_ablation_pep_bias(benchmark, record_result):
    split, unsplit = benchmark.pedantic(_run_study, rounds=1, iterations=1)

    record_result(
        "ablation_pep_bias",
        format_table(
            ("view", "MinRTT", "goodput", "HD verdict"),
            [
                (
                    "server behind PEP (what production sees)",
                    f"{split.server_min_rtt_ms:.0f} ms",
                    f"{split.server_goodput_bps / 1e6:.1f} Mbps",
                    f"HDratio {split.server_hdratio}",
                ),
                (
                    "end-to-end truth through the PEP",
                    "—",
                    f"{split.end_to_end_goodput_bps / 1e6:.2f} Mbps",
                    "below HD target",
                ),
                (
                    "unsplit connection (QUIC-like)",
                    f"{unsplit.min_rtt_seconds * 1000:.0f} ms",
                    f"{unsplit.total_bytes * 8 / unsplit.completion_time / 1e6:.2f} Mbps",
                    "measured truthfully",
                ),
            ],
            title=(
                "§2.2.1 ablation — satellite last mile "
                "(550 ms RTT, 2 Mbps, 1% loss) behind a PEP:"
            ),
        ),
    )

    # The bias the paper describes, quantified:
    assert split.server_min_rtt_ms < 30.0                 # latency underestimated
    assert unsplit.min_rtt_seconds * 1000 > 400.0         # truth without the split
    assert split.server_goodput_bps > 2 * split.end_to_end_goodput_bps
    assert split.server_hdratio == 1.0                    # server says HD-capable…
    assert split.end_to_end_goodput_bps < 2.5e6           # …but the client is not
    # And the PEP did its job: the client still got everything.
    assert split.client_received_bytes == 200 * MSS
