"""Table 2 — opportunity broken down by relationship pair.

Paper anchors: opportunity concentrates on same-relationship pairs
(private→private for MinRTT, dominated by alternates with *longer AS paths*
that the policy deprioritized) plus a peer→transit component; absolute
traffic fractions are small (the biggest cell is ~1.2% of traffic).
"""

from repro.pipeline import table2_opportunity_relationships
from repro.pipeline.report import format_table

ROWS = (
    "private->private",
    "private->transit",
    "public->public",
    "public->transit",
    "transit->transit",
    "others",
)


def test_table2_opportunity_relationships(benchmark, routing_dataset, record_result):
    result = benchmark.pedantic(
        table2_opportunity_relationships,
        args=(routing_dataset,),
        rounds=1,
        iterations=1,
    )

    lines = []
    for metric in ("minrtt", "hdratio"):
        rows = [
            (
                name,
                f"{result.absolute(metric, name):.5f}",
                f"{result.relative(metric, name):.3f}",
                f"{result.longer_share(metric, name):.3f}",
            )
            for name in ROWS
        ]
        lines.append(
            format_table(
                ("pair", "absolute", "relative", "longer AS-path"),
                rows,
                title=f"Table 2 — {metric} opportunity by relationship pair:",
            )
        )
    record_result("table2_relationships", "\n\n".join(lines))

    # Absolute opportunity is a small share of total traffic.
    total_minrtt = sum(result.absolute("minrtt", name) for name in ROWS)
    assert total_minrtt < 0.15

    # Relative shares sum to 1 when any opportunity exists.
    rel_sum = sum(result.relative("minrtt", name) for name in ROWS)
    assert rel_sum == 0.0 or abs(rel_sum - 1.0) < 1e-9

    # When same-relationship opportunity exists, it is dominated by
    # longer-AS-path alternates (the policy's tiebreak-3 losers).
    for name in ("private->private", "transit->transit"):
        if result.rows["minrtt"][name].event_traffic > 0:
            assert result.longer_share("minrtt", name) >= 0.0
