"""Ablation — the estimator under CUBIC with HyStart (§3.2.3).

The goodput model assumes idealized Reno-style slow start, but §3.2.3
argues the Tmodel comparison is robust to real transactions that "exit slow
start early due to CUBIC's hybrid slow start": an early exit only makes the
real transfer *slower* than the model's best case, so the estimate stays an
underestimate. This bench reruns a validation mini-sweep with CUBIC+HyStart
senders and checks the never-overestimate invariant survives the change of
congestion control.
"""

from repro.core.goodput import estimate_delivery_rate, max_testable_goodput
from repro.netsim.scenarios import run_transfer
from repro.pipeline.report import format_table
from repro.stats.weighted import percentile

MSS = 1500

GRID = [
    (bw, rtt, icw, size)
    for bw in (1.0, 2.5, 5.0)
    for rtt in (40.0, 100.0, 200.0)
    for icw in (4, 10, 25)
    for size in (25, 100, 300)
]


def _sweep(algorithm: str):
    errors = []
    overestimates = 0
    for bw, rtt_ms, icw, size in GRID:
        transfer = run_transfer(
            [size * MSS],
            bottleneck_mbps=bw,
            rtt_ms=rtt_ms,
            initial_cwnd_packets=icw,
            delayed_ack=False,
            queue_packets=10_000,
            congestion_control=algorithm,
        )
        if not transfer.records:
            continue
        record = transfer.records[0]
        if record.measured_bytes <= MSS:
            continue
        rtt = transfer.min_rtt_seconds
        wstart = record.cwnd_bytes_at_first_byte
        testable = max_testable_goodput(record.measured_bytes, wstart, rtt)
        bottleneck = bw * 1e6 / 8
        if testable <= bottleneck:
            continue
        estimated = min(
            estimate_delivery_rate(
                record.measured_bytes, record.transfer_time, wstart, rtt
            ),
            testable,
        )
        error = (bottleneck - estimated) / bottleneck
        errors.append(error)
        if error < -1e-6:
            overestimates += 1
    return errors, overestimates


def test_ablation_congestion_control(benchmark, record_result):
    reno_errors, reno_over = _sweep("reno")
    cubic_errors, cubic_over = benchmark.pedantic(
        _sweep, args=("cubic",), rounds=1, iterations=1
    )

    record_result(
        "ablation_congestion_control",
        format_table(
            ("sender", "testing configs", "overestimates", "err p50", "err p99"),
            [
                (
                    "reno (model-matched)",
                    len(reno_errors),
                    reno_over,
                    f"{percentile(reno_errors, 50.0):.3f}",
                    f"{percentile(reno_errors, 99.0):.3f}",
                ),
                (
                    "cubic + hystart",
                    len(cubic_errors),
                    cubic_over,
                    f"{percentile(cubic_errors, 50.0):.3f}",
                    f"{percentile(cubic_errors, 99.0):.3f}",
                ),
            ],
            title="§3.2.3 ablation — estimator vs congestion control:",
        ),
    )

    assert reno_errors and cubic_errors
    # The invariant the methodology rests on: robust to the sender's CC.
    assert reno_over == 0
    assert cubic_over == 0
