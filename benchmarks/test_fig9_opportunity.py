"""Figure 9 — preferred vs best-alternate route performance.

Paper anchors: distributions concentrate around zero; the preferred path's
MinRTT_P50 is within 3 ms of optimal for 83.9% of traffic and its
HDratio_P50 within 0.025 for 93.4%; only ~2.0% of traffic can improve
MinRTT_P50 by >= 5 ms and ~0.2% can improve HDratio_P50 by >= 0.05;
the MinRTT difference distribution is left-skewed (preferred usually wins).
"""

from repro.pipeline import fig9_opportunity
from repro.pipeline.report import format_cdf_checkpoints


def test_fig9_opportunity(benchmark, routing_dataset, record_result):
    result = benchmark.pedantic(
        fig9_opportunity, args=(routing_dataset,), rounds=1, iterations=1
    )

    minrtt_opp = result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True)
    hd_opp = result.hdratio.traffic_fraction_at_least(0.05, use_ci_low=True)
    record_result(
        "fig9_opportunity",
        format_cdf_checkpoints(
            "Figure 9 — preferred vs best alternate (traffic-weighted):",
            [
                ("MinRTT_P50 within 3 ms of optimal (paper 0.839)",
                 result.minrtt_within_of_optimal(3.0)),
                ("HDratio_P50 within 0.025 of optimal (paper 0.934)",
                 result.hdratio_within_of_optimal(0.025)),
                ("MinRTT_P50 improvable >= 5 ms, CI-gated (paper 0.020)",
                 minrtt_opp),
                ("HDratio_P50 improvable >= 0.05, CI-gated (paper 0.002)",
                 hd_opp),
                ("valid comparison traffic share, MinRTT (paper 0.895)",
                 result.minrtt.valid_traffic_fraction),
            ],
        ),
    )

    # Core finding: default routing is near-optimal for the vast majority.
    assert result.minrtt_within_of_optimal(3.0) > 0.75
    assert result.hdratio_within_of_optimal(0.025) > 0.80
    # Opportunity exists but is small.
    assert minrtt_opp < 0.15
    assert hd_opp <= minrtt_opp + 0.02
