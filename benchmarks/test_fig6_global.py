"""Figure 6 — global and per-continent MinRTT / HDratio distributions.

Paper anchors: 50% of sessions have MinRTT < 39 ms and 80% < 78 ms;
continent medians AF 58 / AS 51 / SA 40 / EU-NA-OC ≈ 25 ms or less; over
82% of HD-testable sessions have HDratio > 0; HDratio = 0 shares AF 36%,
AS 24%, SA 27%.
"""

from repro.pipeline import fig6_global_performance
from repro.pipeline.report import format_table


def test_fig6_global_performance(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        fig6_global_performance, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    paper_medians = {"AF": 58, "AS": 51, "SA": 40, "EU": 25, "NA": 25, "OC": 25}
    paper_zero_hd = {"AF": 0.36, "AS": 0.24, "SA": 0.27}
    rows = []
    for code in ("AF", "AS", "SA", "EU", "NA", "OC"):
        rows.append(
            (
                code,
                f"{result.continent_median_minrtt(code):.1f}",
                f"{paper_medians[code]}",
                f"{result.continent_zero_hd_fraction(code):.2f}",
                f"{paper_zero_hd.get(code, '-')}",
            )
        )
    record_result(
        "fig6_global",
        format_table(
            ("continent", "MinRTT p50 (ms)", "paper", "HDratio=0", "paper"),
            rows,
            title="Figure 6 — per continent:",
        )
        + "\n"
        + f"global MinRTT p50 {result.median_minrtt:.1f} ms (paper 39); "
        + f"p80 {result.p80_minrtt:.1f} ms (paper 78); "
        + f"HDratio>0 {result.hdratio_positive_fraction:.2f} (paper 0.82); "
        + f"HDratio=1 {result.hdratio_full_fraction:.2f} (paper 0.60)",
    )

    # Global anchors.
    assert 28.0 < result.median_minrtt < 50.0
    assert 55.0 < result.p80_minrtt < 100.0
    assert result.hdratio_positive_fraction > 0.75

    # Continent ordering: AF worst, then AS, then SA; EU/NA best.
    af = result.continent_median_minrtt("AF")
    asia = result.continent_median_minrtt("AS")
    sa = result.continent_median_minrtt("SA")
    eu = result.continent_median_minrtt("EU")
    na = result.continent_median_minrtt("NA")
    assert af > asia > sa > max(eu, na)
    assert eu < 35.0 and na < 35.0

    # HDratio=0 concentration in AF/AS/SA.
    for code, expected in (("AF", 0.36), ("AS", 0.24), ("SA", 0.27)):
        measured = result.continent_zero_hd_fraction(code)
        assert abs(measured - expected) < 0.12, (code, measured)
    assert result.continent_zero_hd_fraction("EU") < 0.12
