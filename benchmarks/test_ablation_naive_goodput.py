"""Ablation (§4) — the naive Btotal/Ttotal estimator vs the model.

The paper evaluates its correction by re-running the analysis with the
simple overall-goodput estimator (still gated by the same capability test)
and finds it systematically *underestimates* which transactions reached HD
goodput, dragging the median HDratio down to 0.69.
"""

from repro.pipeline import ablation_naive_goodput
from repro.pipeline.report import format_cdf_checkpoints


def test_ablation_naive_goodput(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        ablation_naive_goodput, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    # Median comparison plus the mean gap, which is more sensitive than the
    # (bimodal) median at our scale.
    model_mean = sum(
        r.hdratio for r in snapshot_dataset.rows if r.hdratio is not None
    ) / max(len(snapshot_dataset.hd_rows()), 1)
    naive_values = [
        r.naive_hdratio for r in snapshot_dataset.rows if r.naive_hdratio is not None
    ]
    naive_mean = sum(naive_values) / max(len(naive_values), 1)

    record_result(
        "ablation_naive_goodput",
        format_cdf_checkpoints(
            f"Naive vs model goodput estimation ({result.sessions} sessions):",
            [
                ("model median HDratio", result.model_median_hdratio),
                ("naive median HDratio (paper 0.69, below model)",
                 result.naive_median_hdratio),
                ("model mean HDratio", model_mean),
                ("naive mean HDratio", naive_mean),
            ],
        ),
    )

    # The naive estimator must never credit more HD achievement than the
    # model (it divides by a strictly larger time), and must be visibly
    # pessimistic in aggregate.
    assert result.naive_median_hdratio <= result.model_median_hdratio
    assert naive_mean < model_mean - 0.01
