"""Streaming-ingest benchmark: sustained offer rate and seal latency.

Builds one synthetic trace in event-time order and drives it through
``StreamingIngestor`` (watermarked windows + online temporal analysis),
best of N. Two configurations:

- ``in_memory``: no sealed-window store — pure watermark bookkeeping,
  per-sample aggregation, and the online analyzer. The acceptance floor
  (sustained sessions/sec) applies here: it is single-threaded CPU with
  no I/O, so the floor holds on any host.
- ``with_store``: sealed windows additionally append to a columnar
  store partition-by-partition. Reported for context only — each append
  fsyncs ``data.bin`` and atomically rewrites the manifest, so this
  number is storage-bound and host-dependent. The mean sealed-window
  latency (wall time / windows sealed) is the figure of merit an
  always-on deployment cares about.

Results land in ``benchmarks/results/BENCH_ingest.json``.

Scale knob: ``REPRO_BENCH_INGEST_SESSIONS`` (default 20_000).

Run with ``make bench-ingest`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.pipeline import StreamingIngestor

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SESSIONS = int(os.environ.get("REPRO_BENCH_INGEST_SESSIONS", 20_000))
STUDY_WINDOWS = 16
# Best-of-3: the dominant cost is per-sample Python bookkeeping, which is
# stable; the minimum strips scheduler noise on shared CI hosts.
REPEATS = 3
# Floor for the in-memory path. The seed host sustains ~40k sessions/sec;
# the wide margin keeps the bench green on slow shared runners while
# still catching an accidental quadratic in the seal path.
SESSIONS_PER_SEC_FLOOR = 1_500


def _ingest_seconds(samples, out_store=None) -> "tuple[float, int]":
    """Best-of-N offer_all+finish time and the sealed-window count."""
    best = float("inf")
    windows_sealed = 0
    for attempt in range(REPEATS):
        store = None
        if out_store is not None:
            store = out_store / f"run{attempt}.store"
        ingestor = StreamingIngestor(
            study_windows=STUDY_WINDOWS, out_store=store
        )
        start = time.perf_counter()
        ingestor.offer_all(samples)
        result = ingestor.finish()
        best = min(best, time.perf_counter() - start)
        windows_sealed = result.windows_sealed
        assert result.samples_sealed == len(samples)
    return best, windows_sealed


def test_streaming_ingest_throughput(tmp_path):
    samples = sorted(
        make_trace_samples(SESSIONS, seed=53, windows=STUDY_WINDOWS),
        key=lambda s: s.end_time,
    )

    memory_s, memory_windows = _ingest_seconds(samples)
    store_s, store_windows = _ingest_seconds(samples, out_store=tmp_path)
    assert memory_windows == store_windows > 0

    memory_rate = len(samples) / memory_s
    results = {
        "sessions": len(samples),
        "study_windows": STUDY_WINDOWS,
        "repeats_best_of": REPEATS,
        "in_memory": {
            "seconds": round(memory_s, 4),
            "sessions_per_sec": round(memory_rate),
            "windows_sealed": memory_windows,
        },
        "with_store": {
            "seconds": round(store_s, 4),
            "sessions_per_sec": round(len(samples) / store_s),
            "windows_sealed": store_windows,
            "mean_seal_latency_ms": round(
                store_s / store_windows * 1000.0, 3
            ),
        },
        "sessions_per_sec_floor": SESSIONS_PER_SEC_FLOOR,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ingest.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert memory_rate >= SESSIONS_PER_SEC_FLOOR, (
        f"streaming ingest sustained only {memory_rate:.0f} sessions/sec "
        f"in memory (floor {SESSIONS_PER_SEC_FLOOR})"
    )
