"""Throughput benchmark: sharded parallel ingestion vs the serial pass.

Writes a ~50k-session trace to a temporary JSONL file, then times
``build_dataset`` end to end (chunk planning, worker fan-out, merge) for
the serial baseline and for a 4-worker process pool. The measured
sessions/second and speedup land in ``benchmarks/results/parallel_scaling.txt``.

The >=1.5x speedup assertion only applies on multi-core hosts: on a
single-CPU container the process pool cannot beat the serial pass (it adds
pickling and fork cost for zero extra parallelism), so there the bench
records throughput without asserting scaling.

Scale knob: ``REPRO_BENCH_PARALLEL_SESSIONS`` (default 50_000).

Run with ``make bench-scaling`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.pipeline import ParallelOptions, StudyDataset, build_dataset
from repro.pipeline.io import write_samples

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.bench

SESSIONS = int(os.environ.get("REPRO_BENCH_PARALLEL_SESSIONS", 50_000))
STUDY_WINDOWS = 16
WORKERS = 4
SPEEDUP_FLOOR = 1.5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_parallel_scaling(tmp_path, record_result):
    trace = tmp_path / "scaling_trace.jsonl"
    samples = make_trace_samples(SESSIONS, seed=29, windows=STUDY_WINDOWS)
    write_samples(trace, samples)
    del samples

    serial, serial_s = _timed(
        lambda: build_dataset(trace, study_windows=STUDY_WINDOWS)
    )
    parallel, parallel_s = _timed(
        lambda: build_dataset(
            trace,
            study_windows=STUDY_WINDOWS,
            options=ParallelOptions(workers=WORKERS, executor="process"),
        )
    )

    # The speedup claim is only meaningful if both paths did the same work.
    assert parallel.rows == serial.rows
    assert len(parallel.store) == len(serial.store)

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    lines = [
        f"sessions                 {SESSIONS}",
        f"cpu_cores                {cores}",
        f"serial_seconds           {serial_s:.3f}",
        f"serial_sessions_per_sec  {SESSIONS / serial_s:,.0f}",
        f"parallel_workers         {WORKERS}",
        f"parallel_seconds         {parallel_s:.3f}",
        f"parallel_sessions_per_sec {SESSIONS / parallel_s:,.0f}",
        f"speedup                  {speedup:.2f}x",
        f"speedup_floor_asserted   {cores >= 2}",
    ]
    record_result("parallel_scaling", "\n".join(lines))

    if cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-worker process pool only {speedup:.2f}x over serial "
            f"(floor {SPEEDUP_FLOOR}x) on {cores} cores"
        )
