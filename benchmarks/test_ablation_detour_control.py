"""Ablation — acting on routing opportunity (§6.2.2).

The paper warns that naively shifting all traffic to the best-measuring
route "may cause congestion and risk oscillations", and prescribes gradual
shifts, continuous monitoring, and guaranteed convergence. This bench runs
both policies against a closed loop where the faster alternate lacks the
capacity for all traffic:

- the greedy all-at-once policy flaps indefinitely between routes;
- the gradual CI-gated controller converges to a stable partial split and
  still captures a latency win.
"""

from repro.edge.detour import (
    CongestibleRoute,
    GradualController,
    GreedyShifter,
    simulate_control_loop,
)
from repro.pipeline.report import format_table


def _run_both():
    preferred = CongestibleRoute(base_rtt_ms=40.0, capacity=100.0)
    alternate = CongestibleRoute(base_rtt_ms=28.0, capacity=7.0)
    greedy = simulate_control_loop(
        GreedyShifter(), preferred, alternate, intervals=80
    )
    gradual = simulate_control_loop(
        GradualController(), preferred, alternate, intervals=80
    )
    return greedy, gradual


def test_ablation_detour_control(benchmark, record_result):
    greedy, gradual = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    def tail_mean(trace):
        tail = trace.mean_rtts[-15:]
        return sum(tail) / len(tail)

    record_result(
        "ablation_detour_control",
        format_table(
            ("policy", "oscillations", "settled", "final split", "mean RTT (tail)"),
            [
                (
                    "greedy all-at-once",
                    greedy.oscillations(),
                    greedy.settled(),
                    f"{greedy.final_split:.2f}",
                    f"{tail_mean(greedy):.1f} ms",
                ),
                (
                    "gradual + CI gate + onset guard",
                    gradual.oscillations(),
                    gradual.settled(),
                    f"{gradual.final_split:.2f}",
                    f"{tail_mean(gradual):.1f} ms",
                ),
                ("never shift (baseline)", 0, True, "0.00", "40.0 ms"),
            ],
            title=(
                "§6.2.2 ablation — capacity-limited alternate "
                "(28 ms vs 40 ms, capacity for ~70% of demand):"
            ),
        ),
    )

    assert greedy.oscillations() > 10
    assert not greedy.settled()
    assert gradual.oscillations() == 0
    assert gradual.settled()
    assert 0.0 < gradual.final_split < 1.0
    assert tail_mean(gradual) < 40.0  # better than never shifting
