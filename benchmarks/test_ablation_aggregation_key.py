"""Ablation — including geolocation in the user-group key (§3.3).

The paper aggregates by (PoP, BGP prefix, *country*) because a prefix can
span distant regions; Figure 5's /16 mixes two client populations whose
activity peaks at different local times, so the prefix-level median MinRTT
swings tens of milliseconds while each region's own median is stable.

This bench builds a prefix spanning two countries (Amsterdam + Istanbul —
same continent, ~2200 km apart, 1-hour activity offset) and compares the
window-to-window variability of MinRTT_P50 with and without the geographic
split.
"""

import dataclasses
import math

from repro.core.aggregation import window_index
from repro.edge.topology import DEFAULT_METROS, ClientNetwork
from repro.pipeline.report import format_table
from repro.stats.weighted import percentile
from repro.workload import EdgeScenario, ScenarioConfig


def _build_samples():
    config = ScenarioConfig(
        seed=404,
        days=2,
        base_sessions_per_window=50.0,
        diurnal_fraction=0.0,
        episodic_fraction=0.0,
        continuous_fraction=0.0,
        route_episodic_fraction=0.0,
        mispreferred_fraction=0.0,
    )
    scenario = EdgeScenario(config)
    metros = {metro.name: metro for metro in DEFAULT_METROS}
    spanning = ClientNetwork(
        asn=64999,
        prefixes=["198.18.0.0/15"],
        metro=metros["amsterdam"],
        user_weight=1.0,
        secondary_metro=metros["istanbul"],
        secondary_share=0.5,
    )
    state = scenario._instantiate(spanning)
    state.dest_events = []
    state.route_events = {}
    scenario.networks = [state]
    return [s for s in scenario.generate() if s.route.preference_rank == 0]


def _per_window_medians(samples, tag=None):
    windows = {}
    for sample in samples:
        if tag is not None and sample.geo_tag != tag:
            continue
        windows.setdefault(window_index(sample.end_time), []).append(
            sample.min_rtt_ms
        )
    return [
        percentile(values, 50.0)
        for _, values in sorted(windows.items())
        if len(values) >= 10
    ]


def _stdev(values):
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def test_ablation_aggregation_key(benchmark, record_result):
    samples = benchmark.pedantic(_build_samples, rounds=1, iterations=1)

    combined = _per_window_medians(samples)
    amsterdam = _per_window_medians(samples, "amsterdam")
    istanbul = _per_window_medians(samples, "istanbul")

    record_result(
        "ablation_aggregation_key",
        format_table(
            ("grouping", "windows", "median of medians", "stdev across windows"),
            [
                (
                    "prefix only (ablated)",
                    len(combined),
                    f"{percentile(combined, 50.0):.1f} ms",
                    f"{_stdev(combined):.2f} ms",
                ),
                (
                    "prefix + geography: NL side",
                    len(amsterdam),
                    f"{percentile(amsterdam, 50.0):.1f} ms",
                    f"{_stdev(amsterdam):.2f} ms",
                ),
                (
                    "prefix + geography: TR side",
                    len(istanbul),
                    f"{percentile(istanbul, 50.0):.1f} ms",
                    f"{_stdev(istanbul):.2f} ms",
                ),
            ],
            title=(
                "§3.3 ablation — a /15 spanning Amsterdam and Istanbul; "
                "per-window MinRTT_P50 variability:"
            ),
        ),
    )

    assert combined and amsterdam and istanbul
    # The geographic split separates two stable populations…
    assert abs(percentile(istanbul, 50.0) - percentile(amsterdam, 50.0)) > 8.0
    # …and each is less volatile window-to-window than the mixed group.
    assert _stdev(amsterdam) < _stdev(combined)
    assert _stdev(istanbul) < _stdev(combined)
