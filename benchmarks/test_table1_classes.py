"""Table 1 — temporal behaviour classes by metric, threshold, continent.

Paper anchors (overall row structure): most traffic is uneventful at every
threshold; among eventful groups, *diurnal* dominates degradation (peak-hour
congestion), episodic groups are common but their event traffic is tiny
(blue >> orange), and the eventful shares shrink as thresholds grow.
"""

from repro.core.classification import TemporalClass
from repro.pipeline import table1_temporal_classes
from repro.pipeline.report import format_table


def test_table1_temporal_classes(benchmark, routing_dataset, record_result):
    result = benchmark.pedantic(
        table1_temporal_classes, args=(routing_dataset,), rounds=1, iterations=1
    )

    rows = []
    for kind, metric, thresholds in (
        ("degradation", "minrtt", (5.0, 10.0, 20.0)),
        ("degradation", "hdratio", (0.05, 0.2)),
        ("opportunity", "minrtt", (5.0,)),
        ("opportunity", "hdratio", (0.05,)),
    ):
        for threshold in thresholds:
            for cls in TemporalClass:
                blue, orange = result.fractions(kind, metric, threshold, cls)
                rows.append(
                    (
                        kind,
                        metric,
                        f"{threshold}",
                        cls.value,
                        f"{blue:.3f}",
                        f"{orange:.4f}",
                    )
                )
    continent_rows = []
    for continent in ("AF", "AS", "EU", "NA", "OC", "SA"):
        for cls in TemporalClass:
            blue, orange = result.fractions(
                "degradation", "minrtt", 5.0, cls, continent=continent
            )
            if blue > 0:
                continent_rows.append(
                    (continent, cls.value, f"{blue:.3f}", f"{orange:.4f}")
                )
    record_result(
        "table1_classes",
        format_table(
            ("kind", "metric", "threshold", "class", "class traffic", "event traffic"),
            rows,
            title="Table 1 — temporal classes (overall):",
        )
        + "\n\n"
        + format_table(
            ("continent", "class", "class traffic", "event traffic"),
            continent_rows,
            title="Table 1 — MinRTT degradation at 5 ms, by continent:",
        ),
    )

    # Uneventful dominates at every threshold (the paper's headline).
    for kind, metric, threshold in (
        ("degradation", "minrtt", 5.0),
        ("degradation", "hdratio", 0.05),
        ("opportunity", "minrtt", 5.0),
        ("opportunity", "hdratio", 0.05),
    ):
        blue, _ = result.fractions(kind, metric, threshold, TemporalClass.UNEVENTFUL)
        eventful = sum(
            result.fractions(kind, metric, threshold, cls)[0]
            for cls in (
                TemporalClass.CONTINUOUS,
                TemporalClass.DIURNAL,
                TemporalClass.EPISODIC,
            )
        )
        assert blue > eventful, (kind, metric, threshold, blue, eventful)

    # Higher thresholds flag less traffic.
    deg5 = 1.0 - result.fractions(
        "degradation", "minrtt", 5.0, TemporalClass.UNEVENTFUL
    )[0]
    deg20 = 1.0 - result.fractions(
        "degradation", "minrtt", 20.0, TemporalClass.UNEVENTFUL
    )[0]
    assert deg20 <= deg5 + 1e-9

    # Event traffic (orange) never exceeds class traffic (blue).
    for cls in TemporalClass:
        blue, orange = result.fractions("degradation", "minrtt", 5.0, cls)
        assert orange <= blue + 1e-9

    # Diurnal degradation exists (the injected peak-hour congestion).
    diurnal_blue, diurnal_orange = result.fractions(
        "degradation", "minrtt", 5.0, TemporalClass.DIURNAL
    )
    assert diurnal_blue > 0.0
    assert diurnal_orange < diurnal_blue
