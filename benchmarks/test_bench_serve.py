"""Serving load benchmark: concurrent clients, latency, cache hit rate.

Stands up a real ``repro serve`` stack (``ThreadingHTTPServer`` + engine
+ hot-aggregation cache) over a synthetic store and drives it with a
fleet of concurrent HTTP clients issuing a repeated-key dashboard
workload — the access pattern the cache is built for (a fleet of
dashboards polling the same hot (PoP, country, window) panels, like the
lazy spatial caches the ROADMAP points at, which see 85–99% hits on
repeated keys).

Reports per-request latency (p50/p99 across all clients), sustained
requests/sec, and the exact cache hit rate from the ``serve.cache.*``
counters. Two floors are asserted:

- hit rate >= 80% on the repeated-key workload (the ISSUE's acceptance
  floor; the workload's distinct-query count makes the expected rate
  ~97%, so 80% catches any accounting or invalidation regression);
- every request answered 200 (a served error under clean load is a bug,
  not noise).

Latency numbers are host-dependent and reported for context, not gated.

Results land in ``benchmarks/results/BENCH_serve.json``.

Scale knobs: ``REPRO_BENCH_SERVE_CLIENTS`` (default 8),
``REPRO_BENCH_SERVE_REQUESTS`` (default 50 per client).

Run with ``make bench-serve`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import threading
import time

import pytest

from repro.serve import make_server
from repro.store import write_store

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", 8))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", 50))
SESSIONS = 4_000
STUDY_WINDOWS = 8
HIT_RATE_FLOOR = 0.80

#: The dashboard workload: a handful of hot panels, polled repeatedly.
#: 7 distinct queries -> 7 cold builds total; everything else is warm.
QUERY_MIX = [
    "/v1/quantiles",
    "/v1/quantiles?pop=ams1",
    "/v1/quantiles?pop=sjc1&country=US",
    "/v1/quantiles?window=0-3",
    "/v1/degradation",
    "/v1/degradation?metric=hdratio",
    "/v1/routing",
]


def _percentile(sorted_values, q):
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def test_serving_load(tmp_path):
    store = tmp_path / "bench.store"
    write_store(
        store, make_trace_samples(SESSIONS, seed=11, windows=STUDY_WINDOWS)
    )
    server = make_server(store, port=0, cache_capacity=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]

    # Warm nothing: the cold builds are part of the measured workload,
    # exactly as a freshly restarted server would see it.
    latencies_by_client = [[] for _ in range(CLIENTS)]
    failures = []

    def client(index):
        try:
            conn = http.client.HTTPConnection(host, port, timeout=60)
            for step in range(REQUESTS_PER_CLIENT):
                path = QUERY_MIX[(index + step) % len(QUERY_MIX)]
                start = time.perf_counter()
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
                latencies_by_client[index].append(
                    time.perf_counter() - start
                )
                if response.status != 200:
                    failures.append((path, response.status, body[:200]))
            conn.close()
        except Exception as error:  # noqa: BLE001 - surfaced in the assert
            failures.append((index, repr(error), b""))

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(CLIENTS)
    ]
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join()
    wall = time.perf_counter() - wall_start

    engine = server.engine
    cache = engine.cache
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)

    assert failures == []
    latencies = sorted(
        latency for client in latencies_by_client for latency in client
    )
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total
    assert engine.metrics.counter("serve.requests") == total

    lookups = cache.hits + cache.misses
    hit_rate = cache.hits / lookups if lookups else 0.0
    results = {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "requests_total": total,
        "distinct_queries": len(QUERY_MIX),
        "store_sessions": SESSIONS,
        "wall_seconds": round(wall, 4),
        "requests_per_sec": round(total / wall, 1),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000.0, 3),
            "p90": round(_percentile(latencies, 0.90) * 1000.0, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000.0, 3),
            "max": round(latencies[-1] * 1000.0, 3),
        },
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": round(hit_rate, 4),
        },
        "hit_rate_floor": HIT_RATE_FLOOR,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert hit_rate >= HIT_RATE_FLOOR, (
        f"cache hit rate {hit_rate:.1%} on the repeated-key workload "
        f"(floor {HIT_RATE_FLOOR:.0%}): {cache.hits} hits / "
        f"{cache.misses} misses"
    )
