"""Figure 3 — transactions per session.

Paper anchors: 87% of HTTP/1.1 and 75% of HTTP/2 sessions have < 5
transactions; sessions with >= 50 transactions carry more than half of all
network traffic.
"""

from repro.pipeline import fig3_transaction_counts
from repro.pipeline.report import format_cdf_checkpoints


def test_fig3_transaction_counts(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        fig3_transaction_counts, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    record_result(
        "fig3_transactions",
        format_cdf_checkpoints(
            "Figure 3 — transactions per session:",
            [
                ("HTTP/1.1 < 5 txns (paper 0.87)", result.h1_under_5),
                ("HTTP/2   < 5 txns (paper 0.75)", result.h2_under_5),
                (
                    "single-transaction sessions",
                    result.count_all.fraction_at_most(1.0),
                ),
                (
                    "byte share of >=50-txn sessions (paper >0.5)",
                    result.heavy_session_byte_share,
                ),
            ],
        ),
    )

    assert abs(result.h1_under_5 - 0.87) < 0.08
    assert abs(result.h2_under_5 - 0.75) < 0.08
    assert result.h1_under_5 > result.h2_under_5
    assert result.count_all.fraction_at_most(1.0) > 0.45  # "most sessions"
    assert result.heavy_session_byte_share > 0.40
