"""Figure 1 — session duration and busy-time CDFs.

Paper anchors: 7.4% of sessions < 1 s, 33% < 1 min, 20% > 3 min; HTTP/1.1
sessions shorter than HTTP/2 (44% vs 26% under a minute); most sessions
idle for most of their lifetime (75–80% active < 10% of the time).
"""

from repro.pipeline import fig1_session_behaviour
from repro.pipeline.report import format_cdf_checkpoints, format_percent


def test_fig1_session_behaviour(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        fig1_session_behaviour, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    lines = [
        format_cdf_checkpoints(
            "Figure 1(a) — session duration (fraction of sessions):",
            [
                ("< 1 s   (paper 0.074)", result.under_one_second),
                ("< 60 s  (paper 0.33)", result.under_one_minute),
                ("> 180 s (paper 0.20)", result.over_three_minutes),
                (
                    "HTTP/1.1 < 60 s (paper 0.44)",
                    result.duration_h1.fraction_at_most(60.0),
                ),
                (
                    "HTTP/2   < 60 s (paper 0.26)",
                    result.duration_h2.fraction_at_most(60.0),
                ),
            ],
        ),
        format_cdf_checkpoints(
            "Figure 1(b) — busy time:",
            [
                ("sessions active < 10% of lifetime (paper 0.75-0.80)",
                 result.mostly_idle_fraction),
            ],
        ),
    ]
    record_result("fig1_sessions", "\n".join(lines))

    # Shape assertions against the paper.
    assert 0.04 < result.under_one_second < 0.12
    assert 0.25 < result.under_one_minute < 0.50
    assert 0.12 < result.over_three_minutes < 0.35
    assert result.duration_h1.fraction_at_most(60.0) > (
        result.duration_h2.fraction_at_most(60.0)
    )
    assert result.mostly_idle_fraction > 0.6
