"""Figure 8 — degradation of MinRTT_P50 and HDratio_P50 vs baseline.

Paper anchors: the vast majority of traffic sees minimal degradation over
the study: only ~10% of traffic experiences >= 4 ms MinRTT_P50 degradation
(>= 0.065 for HDratio_P50); the tail has 1.1% at >= 20 ms and 2.3% at
>= 0.4 HDratio degradation.
"""

from repro.pipeline import fig8_degradation
from repro.pipeline.report import format_cdf_checkpoints


def test_fig8_degradation(benchmark, routing_dataset, record_result):
    result = benchmark.pedantic(
        fig8_degradation, args=(routing_dataset,), rounds=1, iterations=1
    )

    record_result(
        "fig8_degradation",
        format_cdf_checkpoints(
            "Figure 8 — traffic-weighted degradation vs baseline:",
            [
                ("valid-aggregation traffic share, MinRTT (paper 0.948)",
                 result.minrtt.valid_traffic_fraction),
                ("valid-aggregation traffic share, HDratio (paper 0.895)",
                 result.hdratio.valid_traffic_fraction),
                ("traffic with MinRTT_P50 degradation >= 4 ms (paper ~0.10)",
                 result.minrtt.traffic_fraction_at_least(4.0)),
                ("traffic with MinRTT_P50 degradation >= 20 ms (paper ~0.011)",
                 result.minrtt.traffic_fraction_at_least(20.0)),
                ("traffic with HDratio_P50 degradation >= 0.065 (paper ~0.10)",
                 result.hdratio.traffic_fraction_at_least(0.065)),
                ("traffic with HDratio_P50 degradation >= 0.4 (paper ~0.023)",
                 result.hdratio.traffic_fraction_at_least(0.4)),
            ],
        ),
    )

    # Shape: most traffic sees little degradation; tails shrink with the
    # threshold.
    deg4 = result.minrtt.traffic_fraction_at_least(4.0)
    deg20 = result.minrtt.traffic_fraction_at_least(20.0)
    assert 0.02 < deg4 < 0.30
    assert deg20 < deg4
    assert deg20 < 0.06

    hd_small = result.hdratio.traffic_fraction_at_least(0.065)
    hd_large = result.hdratio.traffic_fraction_at_least(0.4)
    assert hd_large <= hd_small
    assert hd_small < 0.30

    # Statistical machinery produced a usable share of valid comparisons.
    assert result.minrtt.valid_traffic_fraction > 0.40
    assert result.hdratio.valid_traffic_fraction > 0.30
