"""Analysis-engine benchmark: batch column kernels vs the row oracle.

Builds one synthetic trace, materializes it as a columnar store and as
plain JSONL, then times the full trace→report path (``build_dataset`` +
the Figure-6 driver) under both engines (best of N). Results — seconds,
sessions/sec, and the batch/row speedup per source — land in
``benchmarks/results/BENCH_analyze.json``.

The acceptance floor: over the columnar store — where the batch engine's
``read_columns`` fast path skips Session-record materialization entirely —
batch must run the trace→report path at >=2x the row engine. Both engines
are pure single-threaded CPU on the same decoded bytes, so the floor
applies on any host. The JSONL numbers are reported for context only
(``json.loads`` dominates there and is paid by both engines).

Scale knob: ``REPRO_BENCH_ANALYZE_SESSIONS`` (default 20_000).

Run with ``make bench-analyze`` or ``pytest -m bench benchmarks/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.pipeline import build_dataset, fig6_global_performance
from repro.pipeline.io import convert, write_samples

from tests.helpers import make_trace_samples

pytestmark = pytest.mark.bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SESSIONS = int(os.environ.get("REPRO_BENCH_ANALYZE_SESSIONS", 20_000))
STUDY_WINDOWS = 16
# Best-of-4: single passes on a shared CI host jitter by ~20%, which is
# enough to blur a 2x ratio; the minimum is the stable estimator.
REPEATS = 4
BATCH_SPEEDUP_FLOOR = 2.0


def _analyze_seconds(source, engine: str) -> "tuple[int, float]":
    """Best-of-N trace→report time and the session count (sanity-checked)."""
    best = float("inf")
    sessions = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        dataset = build_dataset(
            source, study_windows=STUDY_WINDOWS, engine=engine
        )
        fig6_global_performance(dataset)
        best = min(best, time.perf_counter() - start)
        sessions = dataset.session_count
    return sessions, best


def test_batch_vs_row_analyze(tmp_path):
    jsonl = tmp_path / "bench_analyze.jsonl"
    store = tmp_path / "bench_analyze.store"
    write_samples(
        jsonl, make_trace_samples(SESSIONS, seed=47, windows=STUDY_WINDOWS)
    )
    convert(jsonl, store)

    results = {
        "sessions": SESSIONS,
        "repeats_best_of": REPEATS,
        "pipeline": "build_dataset + fig6_global_performance",
    }
    speedups = {}
    for source_name, source in (("store", store), ("jsonl", jsonl)):
        row_sessions, row_s = _analyze_seconds(source, "row")
        batch_sessions, batch_s = _analyze_seconds(source, "batch")
        assert row_sessions == batch_sessions > 0
        speedup = row_s / batch_s
        speedups[source_name] = speedup
        results[source_name] = {
            "row_seconds": round(row_s, 4),
            "batch_seconds": round(batch_s, 4),
            "row_sessions_per_sec": round(row_sessions / row_s),
            "batch_sessions_per_sec": round(batch_sessions / batch_s),
            "batch_speedup": round(speedup, 2),
        }
    results["batch_speedup_floor"] = BATCH_SPEEDUP_FLOOR

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analyze.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert speedups["store"] >= BATCH_SPEEDUP_FLOOR, (
        f"batch engine only {speedups['store']:.2f}x over the row engine "
        f"on the store path (floor {BATCH_SPEEDUP_FLOOR}x)"
    )
