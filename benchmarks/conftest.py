"""Shared fixtures for the benchmark harness.

Two dataset scales are built once per session and shared across benches:

- ``snapshot_dataset`` — a one-day, all-PoPs snapshot for the
  characterization figures (1, 2, 3, 5, 6, 7) and the ablation;
- ``routing_dataset`` — a multi-day trace with hourly aggregations for the
  temporal/routing analyses (Figures 8–10, Tables 1–2). Hourly (rather than
  the paper's 15-minute) windows are a documented scale substitution: the
  paper's statistical machinery needs hundreds of samples per aggregation,
  which production traffic provides and a laptop-scale generator supplies
  by widening the window (see DESIGN.md).

Scale knobs (environment variables):

- ``REPRO_BENCH_DAYS``   — routing-trace length in days (default 6);
- ``REPRO_BENCH_RATE``   — base sessions per 15-minute window (default 90);
- ``REPRO_BENCH_SNAPSHOT_RATE`` — snapshot density (default 25).

Every bench writes its reported rows to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote actual measured output.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

import pytest

from repro.pipeline import StudyDataset
from repro.workload import EdgeScenario, ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def record_result():
    """Write a named result blob under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def snapshot_dataset() -> StudyDataset:
    # Three networks per metro: per-continent statistics (Figure 6) need to
    # average over several networks' (random) dominant access classes.
    config = dataclasses.replace(
        ScenarioConfig.snapshot(seed=101),
        networks_per_metro=3,
        base_sessions_per_window=_env_float("REPRO_BENCH_SNAPSHOT_RATE", 9.0),
        include_figure5_network=True,
    )
    scenario = EdgeScenario(config)
    dataset = StudyDataset(
        study_windows=config.total_windows, compute_naive=True
    )
    dataset.ingest(scenario.generate())
    return dataset


@pytest.fixture(scope="session")
def routing_dataset() -> StudyDataset:
    days = _env_int("REPRO_BENCH_DAYS", 6)
    config = ScenarioConfig(
        seed=202,
        days=days,
        base_sessions_per_window=_env_float("REPRO_BENCH_RATE", 130.0),
    )
    scenario = EdgeScenario(config)
    dataset = StudyDataset(
        study_windows=days * 24,
        keep_response_sizes=False,
        window_seconds=3600.0,
    )
    dataset.ingest(scenario.generate())
    return dataset
