"""Micro-benchmarks: the measurement hot path.

The paper stresses that the goodput methodology "is practical and deployed
in production at Facebook's PoPs worldwide" — i.e. cheap enough to run on
every sampled transaction at the load balancer. These benchmarks time the
hot-path primitives (capability test, achievement test, full per-session
HDratio, streaming aggregation) so regressions in the measurement cost are
caught like any other regression.
"""

import random

from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import (
    assess_transaction,
    estimate_delivery_rate,
    max_testable_goodput,
)
from repro.core.hdratio import session_goodput
from repro.core.records import TransactionRecord
from repro.stats.streaming import StreamingAggregate

MSS = 1500
RTT = 0.060


def test_perf_capability_test(benchmark):
    result = benchmark(max_testable_goodput, 100 * MSS, 10 * MSS, RTT)
    assert result > HD_GOODPUT_BYTES_PER_SEC


def test_perf_full_assessment(benchmark):
    result = benchmark(
        assess_transaction,
        total_bytes=100 * MSS,
        transfer_time_seconds=0.5,
        wnic_bytes=10 * MSS,
        min_rtt_seconds=RTT,
        prev_ideal_wstart_bytes=20 * MSS,
    )
    assert result.can_test


def test_perf_delivery_rate_estimate(benchmark):
    rate = benchmark(
        estimate_delivery_rate, 300 * MSS, 1.4, 10 * MSS, RTT
    )
    assert rate > 0


def _session_records(count=10):
    records = []
    clock = 0.0
    rng = random.Random(4)
    for _ in range(count):
        size = rng.choice((4, 20, 60, 120)) * MSS
        duration = rng.uniform(0.08, 0.8)
        records.append(
            TransactionRecord(
                first_byte_time=clock,
                ack_time=clock + duration,
                response_bytes=size,
                last_packet_bytes=MSS,
                cwnd_bytes_at_first_byte=10 * MSS,
                last_byte_write_time=clock + duration * 0.6,
            )
        )
        clock += duration + 1.0
    return records


def test_perf_session_hdratio(benchmark):
    records = _session_records()
    summary = benchmark(session_goodput, records, RTT)
    assert summary.eligible == len(records)


def test_perf_streaming_aggregate_add(benchmark):
    aggregate = StreamingAggregate.empty()
    counter = iter(range(10**9))

    def add_one():
        index = next(counter)
        aggregate.add(40.0 + index % 17, (index % 5) / 4.0, 50_000)

    benchmark(add_one)
    assert aggregate.session_count > 0
