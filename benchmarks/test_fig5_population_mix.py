"""Figure 5 — client-population mixes move a group's MinRTT_P50.

The paper's example: a /16 serving both California and Hawaii; each
region's own median MinRTT is stable, but the group's combined median
oscillates between ~20 ms (California peak hours) and ~60 ms (Hawaii peak
hours) as the client mix shifts.
"""

import dataclasses

from repro.pipeline import fig5_population_mix
from repro.pipeline.report import format_cdf_checkpoints
from repro.stats.weighted import percentile
from repro.workload import EdgeScenario, ScenarioConfig


def _generate_samples():
    config = ScenarioConfig(
        seed=303,
        days=2,
        base_sessions_per_window=40.0,
        include_figure5_network=True,
        # Quiet universe: only the Figure-5 effect should move medians.
        diurnal_fraction=0.0,
        episodic_fraction=0.0,
        continuous_fraction=0.0,
        route_episodic_fraction=0.0,
        mispreferred_fraction=0.0,
    )
    scenario = EdgeScenario(config)
    fig5_state = next(
        s for s in scenario.networks if s.network.secondary_metro is not None
    )
    scenario.networks = [fig5_state]
    return list(scenario.generate())


def test_fig5_population_mix(benchmark, record_result):
    samples = _generate_samples()
    result = benchmark.pedantic(
        fig5_population_mix, args=(samples,), rounds=1, iterations=1
    )

    primary = [s.min_rtt_ms for s in samples if s.geo_tag == "sanfrancisco"]
    secondary = [s.min_rtt_ms for s in samples if s.geo_tag == "honolulu"]
    combined = [v for v in result.all_clients if v is not None]

    record_result(
        "fig5_population_mix",
        format_cdf_checkpoints(
            "Figure 5 — dual-region /16 (California + Hawaii):",
            [
                ("California session median MinRTT (paper ~20 ms)",
                 percentile(primary, 50.0)),
                ("Hawaii session median MinRTT (paper ~60 ms)",
                 percentile(secondary, 50.0)),
                ("combined per-window median: min", min(combined)),
                ("combined per-window median: max", max(combined)),
                ("combined median swing (paper ~40 ms)", result.spread()),
            ],
        ),
    )

    # Each region is internally stable but far apart; the combined median
    # oscillates between them.
    assert percentile(secondary, 50.0) > percentile(primary, 50.0) + 25.0
    assert result.spread() > 15.0
    assert min(combined) < percentile(primary, 50.0) + 15.0
    assert max(combined) > percentile(primary, 50.0) + 15.0
