"""Figure 2 — bytes per session, per response, per media response.

Paper anchors: >58% of sessions transfer < 10 KB; 6% of sessions > 1 MB;
median response < 6 KB; media responses larger (median ≈ 19 KB).
"""

from repro.pipeline import fig2_transfer_sizes
from repro.pipeline.report import format_cdf_checkpoints


def test_fig2_transfer_sizes(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        fig2_transfer_sizes, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    record_result(
        "fig2_bytes",
        format_cdf_checkpoints(
            "Figure 2 — transfer sizes:",
            [
                ("sessions < 10 KB (paper >0.58)", result.sessions_under_10kb),
                ("sessions > 1 MB (paper 0.06)", result.sessions_over_1mb),
                ("median response bytes (paper <6000)", result.median_response),
                (
                    "median media response (paper ~19000)",
                    result.media_response_bytes.quantile(0.5),
                ),
                (
                    "sessions median bytes",
                    result.session_bytes.quantile(0.5),
                ),
            ],
        ),
    )

    assert result.sessions_under_10kb > 0.40
    assert 0.01 < result.sessions_over_1mb < 0.12
    assert result.median_response < 6000
    assert result.media_response_bytes.quantile(0.5) > result.median_response * 2
