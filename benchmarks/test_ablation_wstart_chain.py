"""Ablation — the ideal-Wstart chain (§3.2.2, last paragraph).

The paper is explicit about why Gtestable must assume *ideal* cwnd growth
across a session's transactions rather than the measured cwnd: on a bad
path, losses collapse the real window, and using it would declare later
transactions "unable to test" — silently discarding exactly the sessions
with the strongest evidence of poor performance.

This bench runs lossy sessions through the packet simulator and scores them
twice: with the chained ideal Wstart (the paper's method) and with the raw
measured Wnic only. The ablated variant tests fewer transactions on the
degraded path, inflating the apparent HDratio.
"""

from repro.core.coalesce import eligible_transactions
from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import assess_transaction
from repro.core.hdratio import session_goodput
from repro.netsim.scenarios import run_transfer
from repro.pipeline.report import format_table

MSS = 1500


def _score_without_chain(records, min_rtt):
    """HDratio using only the measured Wnic (no ideal chaining)."""
    tested = achieved = 0
    for txn in eligible_transactions(records):
        if txn.measured_bytes <= 0:
            continue
        assessment = assess_transaction(
            total_bytes=txn.measured_bytes,
            transfer_time_seconds=txn.transfer_time,
            wnic_bytes=txn.cwnd_bytes_at_first_byte,
            min_rtt_seconds=min_rtt,
            prev_ideal_wstart_bytes=0,          # << the ablation
            target_rate_bytes_per_sec=HD_GOODPUT_BYTES_PER_SEC,
        )
        if assessment.can_test:
            tested += 1
            achieved += int(assessment.achieved)
    return tested, achieved


def _run_study():
    """Many lossy multi-transaction sessions over a marginal path."""
    sizes = [30 * MSS, 30 * MSS, 30 * MSS, 30 * MSS]
    chained = {"tested": 0, "achieved": 0}
    unchained = {"tested": 0, "achieved": 0}
    for seed in range(40):
        result = run_transfer(
            sizes,
            bottleneck_mbps=3.0,
            rtt_ms=80.0,
            loss_probability=0.04,
            seed=seed,
            delayed_ack=False,
            max_duration=300.0,
        )
        summary = session_goodput(result.records, result.min_rtt_seconds)
        chained["tested"] += summary.tested
        chained["achieved"] += summary.achieved
        tested, achieved = _score_without_chain(
            result.records, result.min_rtt_seconds
        )
        unchained["tested"] += tested
        unchained["achieved"] += achieved
    return chained, unchained


def test_ablation_wstart_chain(benchmark, record_result):
    chained, unchained = benchmark.pedantic(_run_study, rounds=1, iterations=1)

    def ratio(counts):
        return counts["achieved"] / counts["tested"] if counts["tested"] else None

    record_result(
        "ablation_wstart_chain",
        format_table(
            ("variant", "transactions tested", "achieved HD", "HDratio"),
            [
                (
                    "ideal Wstart chain (paper)",
                    chained["tested"],
                    chained["achieved"],
                    f"{ratio(chained):.2f}" if ratio(chained) is not None else "-",
                ),
                (
                    "measured Wnic only (ablated)",
                    unchained["tested"],
                    unchained["achieved"],
                    f"{ratio(unchained):.2f}" if ratio(unchained) is not None else "-",
                ),
            ],
            title=(
                "§3.2.2 ablation — lossy path (3 Mbps, 80 ms, 4% loss), "
                "4 × 30-packet transactions per session:"
            ),
        ),
    )

    # The chain preserves testability on degraded sessions…
    assert chained["tested"] > unchained["tested"]
    # …which is exactly where HD goodput is NOT being achieved, so the
    # ablated variant overestimates the path's quality.
    if ratio(unchained) is not None and ratio(chained) is not None:
        assert ratio(chained) <= ratio(unchained) + 1e-9
