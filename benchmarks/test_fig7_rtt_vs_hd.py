"""Figure 7 — relationship between MinRTT and HDratio.

Paper: HDratio degrades as latency rises, but MinRTT does not *determine*
HDratio — higher-latency buckets still contain sessions achieving HD.
"""

from repro.pipeline import fig7_rtt_vs_hdratio
from repro.pipeline.report import format_table


def test_fig7_rtt_vs_hdratio(benchmark, snapshot_dataset, record_result):
    result = benchmark.pedantic(
        fig7_rtt_vs_hdratio, args=(snapshot_dataset,), rounds=1, iterations=1
    )

    rows = []
    for label in ("0-30", "31-50", "51-80", "81+"):
        series = result.hdratio_by_bucket[label]
        rows.append(
            (
                label,
                f"{len(series.xs)}",
                f"{1 - series.fraction_at_most(0.0):.2f}",
                f"{1 - series.fraction_at_most(0.999):.2f}",
            )
        )
    record_result(
        "fig7_rtt_vs_hd",
        format_table(
            ("MinRTT bucket (ms)", "sessions", "HDratio>0", "HDratio=1"),
            rows,
            title="Figure 7 — HDratio by MinRTT bucket:",
        ),
    )

    def hd_positive(label):
        return 1 - result.hdratio_by_bucket[label].fraction_at_most(0.0)

    def hd_full(label):
        return 1 - result.hdratio_by_bucket[label].fraction_at_most(0.999)

    # Monotone degradation with latency …
    assert hd_full("0-30") > hd_full("31-50") > hd_full("51-80") > hd_full("81+")
    # … but high-latency sessions still achieve HD sometimes (the paper's
    # point that latency alone does not determine goodput).
    assert hd_positive("81+") > 0.05
    assert hd_positive("51-80") > 0.35
