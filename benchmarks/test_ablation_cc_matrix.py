"""Ablation — the CC/protocol scenario matrix (§3.2.3, §4.1).

The paper's estimator is derived from an idealized Reno sender, but the
fleet it measures runs CUBIC and (increasingly) BBR/QUIC. This bench runs
the full matrix the registry makes possible:

- **Part A** — the validation sweep per congestion control: the
  never-overestimate invariant (§3.2.3) must hold for every registered
  controller, and we report how the relative-error tail moves as the sender
  departs from the model's Reno assumptions.
- **Part B** — HDratio/MinRTT distributions per CC regime over mobile
  access classes (LTE and high-mobility/rail), with the scenario's loss and
  jitter mirrored onto the ACK return path. The QUIC-ish regime is BBR plus
  a 0-RTT handshake and independent streams. This is the "does the metric's
  shape survive the transport?" question behind §4.1's population
  comparisons.

Writes ``benchmarks/results/ablation_cc_matrix.txt``.
"""

from __future__ import annotations

import random

from repro.core.hdratio import session_goodput
from repro.netsim.scenarios import run_transfer
from repro.netsim.validation import SweepConfig, run_validation_sweep
from repro.pipeline.report import format_table
from repro.stats.weighted import percentile
from repro.workload.profiles import mobile_profiles

MSS = 1500

CONTROLLERS = ("reno", "cubic", "bbr")

#: regime name -> (congestion control, run_transfer extras)
REGIMES = {
    "reno": ("reno", {}),
    "cubic": ("cubic", {}),
    "bbr": ("bbr", {}),
    "quic-ish": (
        "bbr",
        {
            "handshake_bytes": 500,
            "zero_rtt_handshake": True,
            "independent_streams": True,
        },
    ),
}

SESSIONS_PER_CLASS = 25
SESSION_SIZES = [60 * MSS, 60 * MSS]

SWEEP = SweepConfig(
    bottleneck_mbps=(1.0, 2.5, 5.0),
    rtt_ms=(40.0, 100.0),
    initial_cwnd_packets=(10, 25),
    transfer_packets=(50, 200),
)


def _sweep_rows():
    rows = []
    for cc in CONTROLLERS:
        result = run_validation_sweep(SWEEP, congestion_control=cc)
        errors = [
            p.relative_error
            for p in result.testing_points
            if p.relative_error is not None
        ]
        rows.append(
            (
                cc,
                len(result.testing_points),
                len(result.overestimates),
                f"{result.relative_error_percentile(50.0):.3f}",
                f"{result.relative_error_percentile(99.0):.3f}",
            )
        )
        assert errors
        # The acceptance bar: no CC regime may make the estimator optimistic.
        assert not result.overestimates, f"{cc} overestimated the bottleneck"
    return rows


def _session_metrics(profile, cc, extras, seed):
    transfer = run_transfer(
        SESSION_SIZES,
        bottleneck_mbps=profile.downlink_mbps,
        rtt_ms=profile.last_mile_rtt_ms,
        loss_probability=profile.loss_probability,
        jitter_ms=profile.jitter_ms,
        burst_loss_probability=profile.burst_loss_probability,
        ack_loss_probability=profile.loss_probability,
        ack_jitter_ms=profile.jitter_ms,
        congestion_control=cc,
        seed=seed,
        max_duration=600.0,
        **extras,
    )
    summary = session_goodput(transfer.records, transfer.min_rtt_seconds)
    min_rtt_ms = (
        transfer.min_rtt_seconds * 1000.0
        if transfer.min_rtt_seconds is not None
        else None
    )
    return summary.hdratio, min_rtt_ms


def _matrix_rows():
    classes = mobile_profiles()
    rows = []
    for class_name, access_class in sorted(classes.items()):
        # One profile draw per session, shared across regimes so the matrix
        # compares transports over identical paths.
        rng = random.Random(42)
        profiles = [access_class.sample(rng) for _ in range(SESSIONS_PER_CLASS)]
        for regime, (cc, extras) in REGIMES.items():
            hdratios = []
            min_rtts = []
            for seed, profile in enumerate(profiles):
                hdratio, min_rtt_ms = _session_metrics(
                    profile, cc, extras, seed=1000 + seed
                )
                if hdratio is not None:
                    hdratios.append(hdratio)
                if min_rtt_ms is not None:
                    min_rtts.append(min_rtt_ms)
            assert min_rtts, f"{class_name}/{regime}: no MinRTT samples"
            rows.append(
                (
                    class_name,
                    regime,
                    len(hdratios),
                    f"{sum(hdratios) / len(hdratios):.2f}" if hdratios else "n/a",
                    f"{percentile(min_rtts, 50.0):.0f}",
                    f"{percentile(min_rtts, 95.0):.0f}",
                )
            )
    return rows


def test_ablation_cc_matrix(benchmark, record_result):
    sweep_rows = _sweep_rows()
    matrix_rows = benchmark.pedantic(_matrix_rows, rounds=1, iterations=1)

    record_result(
        "ablation_cc_matrix",
        format_table(
            ("cc", "testing configs", "overestimates", "err p50", "err p99"),
            sweep_rows,
            title="validation sweep per congestion control (§3.2.3):",
        )
        + "\n\n"
        + format_table(
            (
                "class",
                "regime",
                "tested sessions",
                "HDratio mean",
                "MinRTT p50 ms",
                "MinRTT p95 ms",
            ),
            matrix_rows,
            title="mobile CC/protocol matrix — HDratio & MinRTT (§4.1):",
        ),
    )

    # Every (class, regime) cell produced sessions; the sweeps covered all
    # registered controllers without a single overestimate.
    assert len(sweep_rows) == len(CONTROLLERS)
    assert len(matrix_rows) == 2 * len(REGIMES)
