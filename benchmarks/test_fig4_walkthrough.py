"""Figure 4 — the three-transaction goodput walkthrough.

The paper's worked example: a 60 ms session with initial cwnd 10 serving
2-, 24-, and 14-packet responses. Expected observed goodputs 0.4 / 2.4 /
2.8 Mbps; maximum testable goodputs 0.4 / 2.8 / 2.8 Mbps; transactions 2
and 3 can test for (and under ideal conditions achieve) HD goodput.
"""

import pytest

from repro.core.hdratio import session_goodput
from repro.netsim import run_figure4_scenario
from repro.pipeline.report import format_table


def test_fig4_walkthrough(benchmark, record_result):
    result = benchmark.pedantic(run_figure4_scenario, rounds=3, iterations=1)

    expected_observed = (0.4, 2.4, 2.8)
    expected_testable = (0.4, 2.8, 2.8)
    rows = []
    for index in range(3):
        rows.append(
            (
                f"txn{index + 1}",
                f"{result.observed_goodputs_mbps[index]:.2f}",
                f"{expected_observed[index]:.1f}",
                f"{result.testable_goodputs_mbps[index]:.2f}",
                f"{expected_testable[index]:.1f}",
            )
        )
    summary = session_goodput(
        result.result.records, result.result.min_rtt_seconds
    )
    record_result(
        "fig4_walkthrough",
        format_table(
            (
                "transaction",
                "observed Mbps",
                "paper",
                "testable Mbps",
                "paper",
            ),
            rows,
            title="Figure 4 — sequence walkthrough (simulated vs paper):",
        )
        + f"\nsession HDratio: {summary.hdratio} "
        f"({summary.achieved}/{summary.tested} tested transactions achieved HD)",
    )

    assert result.observed_goodputs_mbps == pytest.approx(
        list(expected_observed), rel=0.02
    )
    assert result.testable_goodputs_mbps == pytest.approx(
        list(expected_testable), rel=0.01
    )
    assert summary.tested == 2
    assert summary.hdratio == 1.0


def test_fig4_with_delayed_acks(benchmark, record_result):
    """The delayed-ACK variant: the correction (§3.2.5) keeps the measured
    (corrected) transaction records consistent even when the receiver
    delays ACKs, while the raw wall-clock goodputs shift."""
    result = benchmark.pedantic(
        run_figure4_scenario, kwargs={"delayed_ack": True}, rounds=3, iterations=1
    )
    summary = session_goodput(
        result.result.records, result.result.min_rtt_seconds
    )
    record_result(
        "fig4_delayed_ack",
        "Figure 4 with delayed ACKs: observed "
        + ", ".join(f"{g:.2f}" for g in result.observed_goodputs_mbps)
        + f" Mbps; session HDratio {summary.hdratio}",
    )
    assert summary.tested == 2
    assert summary.hdratio == 1.0
