"""§3.2.3 validation — the estimator against the packet simulator.

The paper sweeps 15,840 NS3 configurations (bottleneck 0.5–5 Mbps, RTT
20–200 ms, initial cwnd 1–50 packets, transfers 1–500 packets) and reports
that, over configurations able to test for the bottleneck rate, the
estimated goodput **never overestimates** the bottleneck and the 99th
percentile of the relative error is 0.066.

We rerun the sweep on our simulator with a paper-weighted grid. The
never-overestimate invariant must hold exactly; the error percentiles are
reported for comparison (our grid is coarser and our simulator charges a
full ramp-round serialization that NS3's fluid regime hides, so the p99 is
somewhat higher while the p90 matches the paper's p99 closely).
"""

import os

from repro.netsim import SweepConfig, run_validation_sweep
from repro.pipeline.report import format_cdf_checkpoints

#: Paper-shaped grid: icw and size axes sampled densely enough that the
#: icw=1 micro-transfer corner keeps a paper-like share of the grid.
DENSE = SweepConfig(
    bottleneck_mbps=(0.5, 1.0, 1.5, 2.5, 3.5, 5.0),
    rtt_ms=(20.0, 40.0, 60.0, 100.0, 140.0, 200.0),
    initial_cwnd_packets=(1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50),
    transfer_packets=(1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 200, 350, 500),
)

COARSE = SweepConfig()


def test_validation_sweep(benchmark, record_result):
    config = DENSE if os.environ.get("REPRO_BENCH_DENSE_SWEEP", "1") == "1" else COARSE
    result = benchmark.pedantic(
        run_validation_sweep, args=(config,), rounds=1, iterations=1
    )

    testing = result.testing_points

    # Per-axis breakdown: documents where the residual error tail lives
    # (icw=1 micro-transfers, whose ramp rounds the fluid model undercounts).
    def axis_rows(attribute):
        buckets = {}
        for point in testing:
            buckets.setdefault(getattr(point, attribute), []).append(
                point.relative_error
            )
        from repro.stats.weighted import percentile

        return [
            (str(key), len(errors), f"{percentile(errors, 50.0):.3f}",
             f"{percentile(errors, 99.0):.3f}")
            for key, errors in sorted(buckets.items())
        ]

    from repro.pipeline.report import format_table

    record_result(
        "validation_goodput",
        format_cdf_checkpoints(
            f"§3.2.3 validation sweep ({len(result.points)} configurations, "
            f"{len(testing)} able to test the bottleneck):",
            [
                ("overestimates (paper: 0)", float(len(result.overestimates))),
                ("relative error p50", result.relative_error_percentile(50.0)),
                ("relative error p90", result.relative_error_percentile(90.0)),
                ("relative error p99 (paper 0.066)",
                 result.relative_error_percentile(99.0)),
                ("relative error max", result.relative_error_percentile(100.0)),
            ],
        )
        + "\n\n"
        + format_table(
            ("initial cwnd (pkts)", "configs", "err p50", "err p99"),
            axis_rows("initial_cwnd_packets"),
            title="Relative error by initial cwnd (the tail is icw<=2):",
        ),
    )

    # The paper's hard invariant: never overestimate the bottleneck.
    assert not result.overestimates

    # Errors are small in the body of the distribution.
    assert result.relative_error_percentile(50.0) < 0.05
    assert result.relative_error_percentile(90.0) < 0.10
    assert result.relative_error_percentile(99.0) < 0.30
