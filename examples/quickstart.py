#!/usr/bin/env python3
"""Quickstart: the paper's goodput methodology in five minutes.

Reproduces the Figure-4 walkthrough end to end — three HTTP transactions
over one TCP session with a 60 ms RTT — first with the pure analytical model
(what runs in production at the load balancer), then with the packet-level
simulator, and checks they agree.

Run:  python examples/quickstart.py
"""

from repro.core import (
    HD_GOODPUT_BYTES_PER_SEC,
    assess_transaction,
    ideal_wstart,
    max_testable_goodput,
)
from repro.core.hdratio import session_goodput
from repro.netsim import run_figure4_scenario

MSS = 1500
RTT = 0.060


def mbps(rate_bytes_per_sec: float) -> float:
    return rate_bytes_per_sec * 8 / 1e6


def main() -> None:
    print("=" * 64)
    print("Part 1: the analytical model (paper §3.2, Figure 4)")
    print("=" * 64)

    # Three transactions: 2, 24, and 14 packets, initial cwnd 10 packets.
    sizes = [2 * MSS, 24 * MSS, 14 * MSS]
    wstart = 10 * MSS
    for index, size in enumerate(sizes, start=1):
        testable = max_testable_goodput(size, wstart, RTT)
        print(
            f"  txn{index}: {size // MSS:>2} packets, Wstart={wstart // MSS:>2} pkts"
            f" -> can test up to {mbps(testable):.1f} Mbps"
            f" ({'CAN' if testable >= HD_GOODPUT_BYTES_PER_SEC else 'cannot'}"
            f" test for HD)"
        )
        wstart = max(ideal_wstart(size, wstart), 10 * MSS)

    # A degraded transfer: even with a collapsed real cwnd, the chained
    # ideal window keeps the measurement honest.
    assessment = assess_transaction(
        total_bytes=14 * MSS,
        transfer_time_seconds=0.40,      # badly degraded
        wnic_bytes=1 * MSS,              # cwnd collapsed by losses
        min_rtt_seconds=RTT,
        prev_ideal_wstart_bytes=20 * MSS,
    )
    print(
        f"  degraded txn: can_test={assessment.can_test}, "
        f"achieved={assessment.achieved} "
        f"(model best-case {assessment.model_time_seconds * 1000:.0f} ms, "
        f"actual 400 ms)"
    )

    print()
    print("=" * 64)
    print("Part 2: the packet-level simulator agrees")
    print("=" * 64)
    result = run_figure4_scenario()
    print(f"  simulated MinRTT: {result.min_rtt_ms:.1f} ms (expected 60)")
    for index, goodput in enumerate(result.observed_goodputs_mbps, start=1):
        print(f"  txn{index} observed goodput: {goodput:.1f} Mbps")
    print(f"  (paper's sequence diagram: 0.4 / 2.4 / 2.8 Mbps)")

    summary = session_goodput(result.result.records, result.result.min_rtt_seconds)
    print(
        f"  session HDratio: {summary.hdratio} "
        f"({summary.achieved}/{summary.tested} transactions achieved HD; "
        f"txn1 was too small to test)"
    )


if __name__ == "__main__":
    main()
