#!/usr/bin/env python3
"""Performance-aware routing audit — the §6 question on a synthetic edge.

For every user group, compares the BGP policy-preferred route against the
continuously-measured alternates (the paper routes ~47% of sampled sessions
on the preferred path and the rest over the two next-best routes), then
reports where an alternate route is *statistically* better and what kind of
interconnect it uses.

Run:  python examples/routing_opportunity_audit.py  (takes ~a minute)
"""

from repro.pipeline import StudyDataset, fig9_opportunity
from repro.pipeline.report import format_percent, format_table
from repro.pipeline.routing_analysis import table2_opportunity_relationships
from repro.workload import EdgeScenario, ScenarioConfig


def main() -> None:
    config = ScenarioConfig(
        seed=31,
        days=1,
        base_sessions_per_window=40.0,
        mispreferred_fraction=0.08,   # make the rare case visible at demo scale
        route_episodic_fraction=0.08,
    )
    scenario = EdgeScenario(config)
    print(
        f"Measuring {len(scenario.networks)} user groups, "
        f"{config.days} day(s), preferred + 2 alternates per group…"
    )
    dataset = StudyDataset(
        study_windows=config.days * 24,
        keep_response_sizes=False,
        window_seconds=3600.0,   # hourly aggregations at demo scale
    )
    dataset.ingest(scenario.generate())
    print(f"  {dataset.session_count:,} sampled sessions\n")

    result = fig9_opportunity(dataset)
    print("Preferred vs best alternate (traffic-weighted, paper Figure 9):")
    print(
        f"  MinRTT_P50 within 3 ms of optimal: "
        f"{format_percent(result.minrtt_within_of_optimal(3.0))} of traffic "
        f"(paper: 83.9%)"
    )
    print(
        f"  HDratio_P50 within 0.025 of optimal: "
        f"{format_percent(result.hdratio_within_of_optimal(0.025))} "
        f"(paper: 93.4%)"
    )
    print(
        f"  MinRTT_P50 improvable by >=5 ms (CI-gated): "
        f"{format_percent(result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True))} "
        f"(paper: ~2.0%)"
    )
    print(
        f"  valid comparisons cover "
        f"{format_percent(result.minrtt.valid_traffic_fraction)} of traffic"
    )
    print()

    table2 = table2_opportunity_relationships(dataset)
    rows = []
    for name in (
        "private->private",
        "private->transit",
        "public->public",
        "public->transit",
        "transit->transit",
        "others",
    ):
        rows.append(
            (
                name,
                format_percent(table2.absolute("minrtt", name), digits=3),
                format_percent(table2.relative("minrtt", name)),
                format_percent(table2.longer_share("minrtt", name)),
            )
        )
    print(
        format_table(
            ("preferred->alternate", "abs traffic", "share of opp.", "longer AS-path"),
            rows,
            title="MinRTT opportunity by relationship pair (paper Table 2):",
        )
    )
    print()
    print(
        "Interpretation: as in the paper, the preferred route is already\n"
        "(near-)optimal for most traffic (this demo inflates the rate of\n"
        "mis-preferred route sets so the rare case is visible). What\n"
        "opportunity exists concentrates on alternates the policy\n"
        "deprioritized for topology reasons — same-relationship routes with\n"
        "longer AS paths, and direct IXP routes ranked below a PNI."
    )


if __name__ == "__main__":
    main()
