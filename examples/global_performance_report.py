#!/usr/bin/env python3
"""Global performance snapshot — the §4 analysis on a synthetic edge.

Generates a few hours of sampled traffic across all PoPs and prints the
per-continent MinRTT / HDratio report the paper's Figure 6 plots: median
and p80 MinRTT per continent, the share of sessions that can stream HD
video, and the share stuck at HDratio = 0.

Run:  python examples/global_performance_report.py  (takes ~half a minute)
"""

import dataclasses

from repro.pipeline import (
    StudyDataset,
    fig6_global_performance,
    fig7_rtt_vs_hdratio,
)
from repro.pipeline.report import format_percent, format_table
from repro.workload import EdgeScenario, ScenarioConfig

CONTINENT_NAMES = {
    "AF": "Africa",
    "AS": "Asia",
    "EU": "Europe",
    "NA": "North America",
    "OC": "Oceania",
    "SA": "South America",
}


def main() -> None:
    # Several networks per metro so per-continent medians average over the
    # networks' (random) dominant access technologies.
    config = dataclasses.replace(
        ScenarioConfig.snapshot(seed=20),
        networks_per_metro=3,
        base_sessions_per_window=5.0,
    )
    scenario = EdgeScenario(config)
    print(f"Generating {config.days}-day snapshot across {len(scenario.pops)} PoPs…")
    dataset = StudyDataset(study_windows=config.total_windows)
    dataset.ingest(scenario.generate())
    print(
        f"  {dataset.session_count:,} sampled sessions "
        f"({format_percent(dataset.filter_stats.dropped_traffic_fraction)} of "
        f"traffic filtered as hosting providers)\n"
    )

    result = fig6_global_performance(dataset)
    rows = []
    for code in ("AF", "AS", "SA", "EU", "NA", "OC"):
        if code not in result.minrtt_by_continent:
            continue
        rtt = result.minrtt_by_continent[code]
        hd = result.hdratio_by_continent[code]
        rows.append(
            (
                CONTINENT_NAMES[code],
                f"{rtt.quantile(0.5):.0f} ms",
                f"{rtt.quantile(0.8):.0f} ms",
                format_percent(1 - hd.fraction_at_most(0.0)),
                format_percent(hd.fraction_at_most(0.0)),
            )
        )
    print(
        format_table(
            ("continent", "MinRTT p50", "MinRTT p80", "HDratio > 0", "HDratio = 0"),
            rows,
            title="Per-continent performance (paper Figure 6):",
        )
    )
    print()
    print(
        f"Global: median MinRTT {result.median_minrtt:.0f} ms "
        f"(paper: <39 ms), p80 {result.p80_minrtt:.0f} ms (paper: <78 ms); "
        f"{format_percent(result.hdratio_positive_fraction)} of HD-testable "
        f"sessions achieve HD goodput at least once (paper: >82%)."
    )

    print()
    buckets = fig7_rtt_vs_hdratio(dataset)
    rows = [
        (
            label,
            f"{series.quantile(0.5):.2f}",
            format_percent(1 - series.fraction_at_most(0.0)),
        )
        for label, series in buckets.hdratio_by_bucket.items()
    ]
    print(
        format_table(
            ("MinRTT bucket (ms)", "median HDratio", "HDratio > 0"),
            rows,
            title="HDratio by latency bucket (paper Figure 7):",
        )
    )


if __name__ == "__main__":
    main()
