#!/usr/bin/env python3
"""Temporal degradation monitoring — the §5 pipeline on one user group.

Injects a known evening-congestion event into one network, runs the
measurement pipeline, and shows how the paper's machinery surfaces it:
per-window MinRTT_P50 against the group baseline, CI-gated degradation
verdicts, and the temporal-behaviour classification (diurnal, in this
case).

Run:  python examples/degradation_monitor.py
"""

import dataclasses

from repro.core.classification import classify_group
from repro.core.comparison import compute_baseline
from repro.pipeline import StudyDataset
from repro.pipeline.report import format_table
from repro.workload import DiurnalCongestion, EdgeScenario, ScenarioConfig


def main() -> None:
    config = ScenarioConfig(
        seed=47,
        days=6,
        base_sessions_per_window=110.0,
        # Turn off random events; we inject one deterministically below.
        diurnal_fraction=0.0,
        episodic_fraction=0.0,
        continuous_fraction=0.0,
        route_episodic_fraction=0.0,
        mispreferred_fraction=0.0,
    )
    scenario = EdgeScenario(config)
    # Keep a single European network and give it evening congestion.
    state = next(
        s for s in scenario.networks if s.network.continent.code == "EU"
    )
    state.dest_events = [
        DiurnalCongestion(
            longitude_deg=state.network.metro.location.longitude,
            peak_queue_ms=18.0,
            peak_loss=0.02,
            peak_capacity_factor=0.05,
        )
    ]
    scenario.networks = [state]
    print(
        f"Monitoring AS{state.network.asn} ({state.network.metro.name}) via "
        f"{state.pop.name} for {config.days} days with injected evening "
        f"congestion…"
    )

    dataset = StudyDataset(
        study_windows=config.days * 24,
        keep_response_sizes=False,
        window_seconds=3600.0,
    )
    dataset.ingest(scenario.generate())
    print(f"  {dataset.session_count:,} sampled sessions\n")

    group = dataset.store.groups()[0]
    series = dataset.store.group_series(group, route_rank=0)
    baseline = compute_baseline(series)
    print(
        f"Baseline (best sustained performance): "
        f"MinRTT_P50 {baseline.minrtt_p50_ms:.1f} ms, "
        f"HDratio_P50 {baseline.hdratio_p50:.2f}\n"
    )

    verdicts = dataset.verdicts("minrtt", "degradation")[group]
    rows = []
    for verdict in verdicts:
        if verdict.window % 3 != 0:
            continue
        hour = (verdict.window % 24)
        flag = "DEGRADED" if verdict.event_at(5.0) else ""
        if not verdict.valid:
            flag = "(thin/wide-CI)"
        rows.append(
            (
                f"day {verdict.window // 24} {hour:02d}:00",
                f"{verdict.difference:+.1f} ms"
                if verdict.difference == verdict.difference
                else "n/a",
                f"[{verdict.ci_low:+.1f}, {verdict.ci_high:+.1f}]"
                if verdict.valid
                else "-",
                flag,
            )
        )
    print(
        format_table(
            ("window", "Δ vs baseline", "95% CI", ""),
            rows[:30],
            title="MinRTT_P50 degradation verdicts (every 3rd hour shown):",
        )
    )

    classification = classify_group(
        verdicts,
        threshold=5.0,
        study_windows=dataset.study_windows,
        windows_per_day=dataset.windows_per_day,
    )
    print()
    print(
        f"Temporal class at the 5 ms threshold: "
        f"{classification.temporal_class.value.upper()} "
        f"({classification.event_windows}/{classification.valid_windows} valid "
        f"windows degraded; recurring at fixed evening hours on 5+ days)"
    )


if __name__ == "__main__":
    main()
