#!/usr/bin/env python3
"""Near-real-time route monitoring — footnote 11 made concrete.

Production traffic engineering can't wait for batch analysis: the paper
notes that comparisons must run "in near real-time", with t-digests doing
the percentile work. This example feeds a live sample stream (one network
whose preferred route degrades mid-day) through the single-pass
:class:`StreamingRouteMonitor` and shows it flagging the alternate exactly
while the preferred path is impaired, then hands the flagged windows to the
gradual detour controller from the §6.2.2 study.

Run:  python examples/streaming_route_monitor.py
"""

from repro.pipeline.streaming import StreamingRouteMonitor
from repro.workload import EdgeScenario, EpisodicOutage, ScenarioConfig


def main() -> None:
    config = ScenarioConfig(
        seed=77,
        days=1,
        base_sessions_per_window=180.0,
        diurnal_fraction=0.0,
        episodic_fraction=0.0,
        continuous_fraction=0.0,
        route_episodic_fraction=0.0,
        mispreferred_fraction=0.0,
    )
    scenario = EdgeScenario(config)
    state = next(
        s
        for s in scenario.networks
        if s.network.continent.code == "EU" and len(s.ranked.routes) >= 2
    )
    # Impair ONLY the preferred route for four afternoon hours: a classic
    # bypassable event (the alternates don't share the failing segment).
    state.route_events = {
        0: [
            EpisodicOutage(
                start_window=13 * 4,
                end_window=17 * 4,
                queue_ms=18.0,
                loss=0.01,
                capacity_factor=0.8,
            )
        ]
    }
    state.dest_events = []
    scenario.networks = [state]

    print(
        f"Streaming one day of AS{state.network.asn} "
        f"({state.network.metro.name}) through the monitor; the preferred "
        f"route is impaired 13:00–17:00 UTC…\n"
    )
    monitor = StreamingRouteMonitor(window_seconds=3600.0)
    monitor.observe_all(scenario.generate())
    decisions = monitor.finish()

    print("hour  action               MinRTT gain   sessions")
    print("----  -------------------  ------------  --------")
    for decision in decisions:
        hour = decision.window % 24
        gain = (
            f"{decision.minrtt_improvement_ms:+.1f} ms"
            if decision.is_shift_candidate
            else "-"
        )
        print(
            f"{hour:02d}:00  {decision.action:<19}  {gain:<12}  "
            f"{decision.preferred_sessions}"
        )

    flagged = [d for d in decisions if d.is_shift_candidate]
    print(
        f"\n{len(flagged)} of {len(decisions)} windows flagged; the paper's "
        f"§6.2.2 guidance is to hand these to a gradual, capacity-aware "
        f"controller (see examples/routing_opportunity_audit.py and "
        f"repro.edge.detour) rather than shifting all traffic at once."
    )


if __name__ == "__main__":
    main()
