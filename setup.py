"""Shim for editable installs on environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (setup.py develop) where PEP 660
editable wheels cannot be built offline.
"""
from setuptools import setup

setup()
