"""§3.2 goodput kernels over flat column arrays.

Each kernel mirrors one stage of the row-path methodology —
:mod:`repro.core.coalesce` (coalescing, bytes-in-flight eligibility),
:mod:`repro.core.goodput` (Gtestable, Tmodel(R), the ideal-Wstart chain),
:mod:`repro.core.hdratio` (the per-session funnel) — over parallel lists
instead of record objects. ``session_funnel`` composes the stages exactly the
way :func:`repro.core.hdratio.session_goodput` does, operating on a
``[start, end)`` slice of a batch's flat transaction columns.

**Oracle invariant.** Every arithmetic expression here is a transcription of
its row-path counterpart: the same operations on the same Python numeric
types in the same order (including the ``- 1e-12`` log2 guard, the int
``max`` before the float division in Gtestable, and the left-to-right
addition order of Tmodel). That is what makes batch output *byte*-identical
to row output rather than merely approximately equal; do not "simplify" an
expression here without re-deriving bit-equality — the differential suite
(``tests/test_batch_equivalence.py``, ``tests/test_kernels_property.py``)
holds each kernel to its row implementation.

The power-of-two lookup table replaces the row path's ``2 ** (m - 1)``: for
in-range exponents both produce the same exact int, and the table indexes are
guarded by the same ``_MAX_ROUNDS`` bounds the row path enforces through
:func:`repro.core.goodput.window_at_round`.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.core.coalesce import BACK_TO_BACK_GAP_SECONDS
from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC

__all__ = [
    "FunnelCounts",
    "assess_kernel",
    "coalesce_kernel",
    "eligibility_kernel",
    "funnel_single",
    "gtestable_kernel",
    "hdratio_kernel",
    "minrtt_bucket_kernel",
    "minrtt_ms_kernel",
    "next_wstart_kernel",
    "rounds_kernel",
    "session_funnel",
    "tmodel_kernel",
]

#: Mirrors ``repro.core.goodput._MAX_ROUNDS``.
_MAX_ROUNDS = 60

#: ``_POW2[k] == 2 ** k`` for every exponent the bounded model can reach
#: (``window_at_round`` admits indexes up to ``_MAX_ROUNDS``, and Gtestable
#: reads one round past it before the bound check fires on the chain).
_POW2: Tuple[int, ...] = tuple(1 << k for k in range(_MAX_ROUNDS + 2))

_ORDER_ERROR = "transactions must be ordered by first_byte_time"
_ROUNDS_ERROR = "round_index implausibly large"


# --------------------------------------------------------------------- #
# Coalescing (§3.2.5) — mirrors repro.core.coalesce.coalesce_transactions
# --------------------------------------------------------------------- #
def coalesce_kernel(
    fbt: Sequence[float],
    ack: Sequence[float],
    resp: Sequence[int],
    last: Sequence[int],
    cwnd: Sequence[int],
    inflight: Sequence[int],
    lbwt: Sequence[float],
    start: int = 0,
    end: Optional[int] = None,
) -> Tuple[List[float], List[float], List[int], List[int], List[int], List[int]]:
    """Coalesce the ``[start, end)`` slice of flat transaction columns.

    ``lbwt`` is the *effective* last-byte-write-time column: rows whose
    record had no ``last_byte_write_time`` carry their ``first_byte_time``
    (the row path's fallback, applied when the batch was built).

    Returns group columns ``(fbt, ack, total_bytes, last_packet_bytes,
    opener_cwnd, opener_inflight)`` — exactly the fields of
    :class:`repro.core.coalesce.CoalescedTransaction` the downstream stages
    consume, plus the opening record's bytes-in-flight for the eligibility
    rule. Raises the row path's ``ValueError`` on out-of-order input.
    """
    if end is None:
        end = len(fbt)
    g_fbt: List[float] = []
    g_ack: List[float] = []
    g_total: List[int] = []
    g_last: List[int] = []
    g_cwnd: List[int] = []
    g_inflight: List[int] = []
    previous_start = -math.inf
    open_lbwt = -math.inf
    gap = BACK_TO_BACK_GAP_SECONDS
    for t in range(start, end):
        f = fbt[t]
        if f < previous_start:
            raise ValueError(_ORDER_ERROR)
        previous_start = f
        lw = lbwt[t]
        if g_fbt and f <= open_lbwt + gap:
            a = ack[t]
            if a > g_ack[-1]:
                g_ack[-1] = a
            g_total[-1] += resp[t]
            g_last[-1] = last[t]
            if lw > open_lbwt:
                open_lbwt = lw
        else:
            g_fbt.append(f)
            g_ack.append(ack[t])
            g_total.append(resp[t])
            g_last.append(last[t])
            g_cwnd.append(cwnd[t])
            g_inflight.append(inflight[t])
            open_lbwt = lw
    return g_fbt, g_ack, g_total, g_last, g_cwnd, g_inflight


def eligibility_kernel(g_inflight: Sequence[int]) -> List[bool]:
    """Bytes-in-flight mask over coalesced groups — mirrors
    :func:`repro.core.coalesce.filter_eligible`.

    ``g_inflight`` holds each group's *opening* record's bytes in flight.
    The first group is always eligible (handshake/TLS bytes, not a prior
    response).
    """
    return [
        position == 0 or opener_inflight == 0
        for position, opener_inflight in enumerate(g_inflight)
    ]


# --------------------------------------------------------------------- #
# Per-transaction model kernels (§§3.2.2–3.2.3) — array forms of
# repro.core.goodput, for property testing and reuse; assess_kernel
# inlines the same expressions on the hot path.
# --------------------------------------------------------------------- #
def rounds_kernel(total: Sequence[int], wstart: Sequence[int]) -> List[int]:
    """Eq. (1) ideal round trips per element — mirrors ``ideal_round_trips``."""
    ceil = math.ceil
    log2 = math.log2
    out = []
    for total_bytes, wstart_bytes in zip(total, wstart):
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if wstart_bytes <= 0:
            raise ValueError("wstart_bytes must be positive")
        m = ceil(log2(total_bytes / wstart_bytes + 1.0) - 1e-12)
        out.append(m if m > 1 else 1)
    return out


def next_wstart_kernel(total: Sequence[int], wstart: Sequence[int]) -> List[int]:
    """Ideal post-transaction cwnd per element — mirrors ``ideal_wstart``."""
    pow2 = _POW2
    out = []
    for m, wstart_bytes in zip(rounds_kernel(total, wstart), wstart):
        if m > _MAX_ROUNDS:
            raise ValueError(_ROUNDS_ERROR)
        out.append(pow2[m - 1] * wstart_bytes)
    return out


def gtestable_kernel(
    total: Sequence[int], wstart: Sequence[int], min_rtt: Sequence[float]
) -> List[float]:
    """Eq. (3) max testable goodput per element — mirrors
    ``max_testable_goodput`` (bytes/s)."""
    pow2 = _POW2
    out = []
    for m, total_bytes, wstart_bytes, rtt in zip(
        rounds_kernel(total, wstart), total, wstart, min_rtt
    ):
        if rtt <= 0:
            raise ValueError("min_rtt_seconds must be positive")
        if m == 1:
            best = total_bytes
        else:
            if m - 1 > _MAX_ROUNDS:
                raise ValueError(_ROUNDS_ERROR)
            penultimate = pow2[m - 2] * wstart_bytes
            final_round = total_bytes - wstart_bytes * (pow2[m - 1] - 1)
            best = penultimate if penultimate > final_round else final_round
        out.append(best / rtt)
    return out


def tmodel_kernel(
    rate: float,
    total: Sequence[int],
    wstart: Sequence[int],
    min_rtt: Sequence[float],
) -> List[float]:
    """Tmodel(R) per element — mirrors ``model_transfer_time`` (seconds)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    pow2 = _POW2
    ceil = math.ceil
    log2 = math.log2
    out = []
    for m, total_bytes, wstart_bytes, rtt in zip(
        rounds_kernel(total, wstart), total, wstart, min_rtt
    ):
        if rtt <= 0:
            raise ValueError("min_rtt_seconds must be positive")
        needed = rate * rtt
        if wstart_bytes >= needed:
            n = 0
        else:
            n = ceil(log2(needed / wstart_bytes) - 1e-12)
            if n < 0:
                n = 0
            elif n > _MAX_ROUNDS:
                n = _MAX_ROUNDS
        if n > m - 1:
            n = m - 1
        remaining = total_bytes - wstart_bytes * (pow2[n] - 1)
        out.append(n * rtt + remaining / rate + rtt)
    return out


def minrtt_ms_kernel(min_rtt_seconds: Sequence[float]) -> List[float]:
    """MinRTT column in milliseconds — mirrors
    :attr:`repro.core.records.SessionSample.min_rtt_ms`."""
    return [seconds * 1000.0 for seconds in min_rtt_seconds]


def hdratio_kernel(
    tested: Sequence[int], achieved: Sequence[int]
) -> List[Optional[float]]:
    """Per-session HDratio from funnel counts — mirrors
    :attr:`repro.core.hdratio.SessionGoodput.hdratio` (``None`` when the
    session could not test)."""
    return [
        (a / t) if t else None for t, a in zip(tested, achieved)
    ]


def minrtt_bucket_kernel(
    min_rtt_ms: Sequence[float],
    buckets: Sequence[Tuple[float, float]],
) -> List[int]:
    """Bucket index per MinRTT value — mirrors the Figure-7 row loop
    (:func:`repro.pipeline.experiments.fig7_rtt_vs_hdratio`): first bucket
    whose upper bound admits the value, ``-1`` when none does (unreachable
    while the last bucket is open-ended, kept for bit-fidelity with the
    row loop's fallthrough)."""
    out = []
    for value in min_rtt_ms:
        index = -1
        for position, bounds in enumerate(buckets):
            if value <= bounds[1]:
                index = position
                break
        out.append(index)
    return out


# --------------------------------------------------------------------- #
# Fused per-session assessment — mirrors repro.core.hdratio._assess_session
# --------------------------------------------------------------------- #
def assess_kernel(
    g_fbt: Sequence[float],
    g_ack: Sequence[float],
    g_total: Sequence[int],
    g_last: Sequence[int],
    g_cwnd: Sequence[int],
    eligible: Sequence[bool],
    min_rtt_seconds: float,
    target_rate: float = HD_GOODPUT_BYTES_PER_SEC,
    compute_naive: bool = False,
) -> Tuple[int, int, int]:
    """(tested, achieved, naive_achieved) over coalesced groups.

    Walks the eligible groups in order, chaining the ideal Wstart exactly
    like the row path's ``_assess_session``: a group whose delayed-ACK
    corrected size is non-positive only grows the chain; every other group
    is assessed for capability (Gtestable vs target) and, when capable,
    for achievement (Ttotal vs Tmodel). ``naive_achieved`` applies the §4
    ablation's ``Btotal/Ttotal`` criterion under the same capability gate;
    it is only computed when ``compute_naive`` is set (it is independent of
    the model verdict, so one pass yields both).
    """
    pow2 = _POW2
    ceil = math.ceil
    log2 = math.log2
    tested = 0
    achieved = 0
    naive_achieved = 0
    prev_ideal = 0
    for gi in range(len(g_fbt)):
        if not eligible[gi]:
            continue
        cw = g_cwnd[gi]
        total_bytes = g_total[gi] - g_last[gi]
        if total_bytes <= 0:
            # Single-packet group: nothing left after the delayed-ACK
            # correction; it still grows the ideal window chain.
            if cw > prev_ideal:
                prev_ideal = cw
            continue
        wstart = cw if cw > prev_ideal else prev_ideal
        m = ceil(log2(total_bytes / wstart + 1.0) - 1e-12)
        if m < 1:
            m = 1
        if m == 1:
            best = total_bytes
        else:
            if m - 1 > _MAX_ROUNDS:
                raise ValueError(_ROUNDS_ERROR)
            penultimate = pow2[m - 2] * wstart
            final_round = total_bytes - wstart * (pow2[m - 1] - 1)
            best = penultimate if penultimate > final_round else final_round
        testable = best / min_rtt_seconds
        if m > _MAX_ROUNDS:
            raise ValueError(_ROUNDS_ERROR)
        prev_ideal = pow2[m - 1] * wstart
        if testable < target_rate:
            continue
        tested += 1
        transfer = g_ack[gi] - g_fbt[gi]
        needed = target_rate * min_rtt_seconds
        if wstart >= needed:
            n = 0
        else:
            n = ceil(log2(needed / wstart) - 1e-12)
            if n < 0:
                n = 0
            elif n > _MAX_ROUNDS:
                n = _MAX_ROUNDS
        if n > m - 1:
            n = m - 1
        remaining = total_bytes - wstart * (pow2[n] - 1)
        model_time = n * min_rtt_seconds + remaining / target_rate + min_rtt_seconds
        if transfer <= model_time:
            achieved += 1
        if compute_naive and transfer > 0 and total_bytes / transfer >= target_rate:
            naive_achieved += 1
    return tested, achieved, naive_achieved


class FunnelCounts(NamedTuple):
    """One session's §3.2 funnel, batch-engine form.

    Field-for-field the counts :class:`repro.core.hdratio.SessionGoodput`
    carries (``raw_count`` is implied by the caller's slice length), plus
    the ablation's ``naive_achieved``.
    """

    tested: int
    achieved: int
    eligible: int
    coalesced: int
    naive_achieved: int

    @property
    def hdratio(self) -> Optional[float]:
        if self.tested == 0:
            return None
        return self.achieved / self.tested

    @property
    def naive_hdratio(self) -> Optional[float]:
        if self.tested == 0:
            return None
        return self.naive_achieved / self.tested


def funnel_single(
    fbt: float,
    ack: float,
    resp: int,
    last: int,
    cwnd: int,
    min_rtt_seconds: float,
    target_rate: float = HD_GOODPUT_BYTES_PER_SEC,
    compute_naive: bool = False,
) -> Tuple[int, int, int]:
    """(tested, achieved, naive_achieved) for a single-transaction session.

    The scalar fast path for the dominant case: one record is one coalesced
    group (nothing to merge, nothing to order-check), always eligible
    (position 0), with an empty ideal-window chain (``Wstart = Wnic``).
    Bit-identical to ``session_funnel`` on a one-record slice — the
    differential harness holds it to that.
    """
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    total_bytes = resp - last
    if total_bytes <= 0:
        return 0, 0, 0
    pow2 = _POW2
    m = math.ceil(math.log2(total_bytes / cwnd + 1.0) - 1e-12)
    if m < 1:
        m = 1
    if m == 1:
        best = total_bytes
    else:
        if m - 1 > _MAX_ROUNDS:
            raise ValueError(_ROUNDS_ERROR)
        penultimate = pow2[m - 2] * cwnd
        final_round = total_bytes - cwnd * (pow2[m - 1] - 1)
        best = penultimate if penultimate > final_round else final_round
    testable = best / min_rtt_seconds
    if m > _MAX_ROUNDS:
        raise ValueError(_ROUNDS_ERROR)
    if testable < target_rate:
        return 0, 0, 0
    transfer = ack - fbt
    needed = target_rate * min_rtt_seconds
    if cwnd >= needed:
        n = 0
    else:
        n = math.ceil(math.log2(needed / cwnd) - 1e-12)
        if n < 0:
            n = 0
        elif n > _MAX_ROUNDS:
            n = _MAX_ROUNDS
    if n > m - 1:
        n = m - 1
    remaining = total_bytes - cwnd * (pow2[n] - 1)
    model_time = (
        n * min_rtt_seconds + remaining / target_rate + min_rtt_seconds
    )
    achieved = 1 if transfer <= model_time else 0
    naive_achieved = 0
    if compute_naive and transfer > 0 and total_bytes / transfer >= target_rate:
        naive_achieved = 1
    return 1, achieved, naive_achieved


def session_funnel(
    fbt: Sequence[float],
    ack: Sequence[float],
    resp: Sequence[int],
    last: Sequence[int],
    cwnd: Sequence[int],
    inflight: Sequence[int],
    lbwt: Sequence[float],
    start: int,
    end: int,
    min_rtt_seconds: float,
    target_rate: float = HD_GOODPUT_BYTES_PER_SEC,
    compute_naive: bool = False,
) -> FunnelCounts:
    """Full §3.2 funnel for one session's ``[start, end)`` column slice.

    Composes :func:`coalesce_kernel` → :func:`eligibility_kernel` →
    :func:`assess_kernel` in the row path's order
    (:func:`repro.core.hdratio.session_goodput`), including its
    ``min_rtt_seconds`` guard.
    """
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    g_fbt, g_ack, g_total, g_last, g_cwnd, g_inflight = coalesce_kernel(
        fbt, ack, resp, last, cwnd, inflight, lbwt, start, end
    )
    eligible = eligibility_kernel(g_inflight)
    tested, achieved, naive_achieved = assess_kernel(
        g_fbt,
        g_ack,
        g_total,
        g_last,
        g_cwnd,
        eligible,
        min_rtt_seconds,
        target_rate,
        compute_naive,
    )
    return FunnelCounts(
        tested=tested,
        achieved=achieved,
        eligible=sum(eligible),
        coalesced=len(g_fbt),
        naive_achieved=naive_achieved,
    )
