"""Column-batch layout: the batch engine's unit of work.

A :class:`ColumnBatch` holds one run of samples as parallel per-session
lists plus *flat* child columns for nested data — transactions and media
sizes are single flat lists indexed through per-session length columns,
exactly the shape the columnar store's schema already uses
(:mod:`repro.store.schema`). The batch engine walks these with integer
cursors; no ``SessionSample``/``TransactionRecord`` objects exist on the
hot path.

Layout contract (DESIGN.md §10):

- every per-session column has one entry per row, in the batch's order;
- ``order_keys[i]`` is row *i*'s global order key (stream index, JSONL
  byte offset/line index, or store ``seq``) — unique across batches, and
  non-decreasing **within** a batch (store partitions are seq-sorted;
  pair slices inherit stream order);
- ``txn_lens[i]`` transactions for row *i* start at the flat transaction
  columns' running offset (sum of ``txn_lens[:i]``); ``media_lens`` /
  ``media_values`` follow the same discipline;
- ``txn_lbwt`` is the *effective* last-byte-write-time: rows without a
  recorded ``last_byte_write_time`` carry their ``first_byte_time``,
  which is the row path's fallback
  (:func:`repro.core.coalesce.coalesce_transactions`) applied once at
  build time instead of once per analysis pass;
- ``routes[i]`` is the row's interned :class:`RouteInfo` (or ``None``) —
  routes repeat heavily, so interning keeps route construction off the
  per-row cost while the per-sample and per-transaction work stays
  object-free.

Two builders cover both trace formats: :meth:`ColumnBatch.from_pairs`
shreds already-materialized samples (JSONL / in-memory sources), and
:meth:`ColumnBatch.from_store_columns` adopts a store partition's decoded
column dict directly — the store fast path that never builds records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.records import HttpVersion, RouteInfo, SessionSample

__all__ = ["ColumnBatch"]

_HTTP2_VALUE = HttpVersion.HTTP_2.value


class ColumnBatch:
    """One batch of samples as parallel columns (see module docstring)."""

    __slots__ = (
        "order_keys",
        "start_times",
        "end_times",
        "is_http2",
        "min_rtts",
        "bytes_sents",
        "busy_times",
        "pops",
        "countries",
        "continents",
        "hostings",
        "geo_tags",
        "routes",
        "media_lens",
        "media_values",
        "txn_lens",
        "txn_fbt",
        "txn_ack",
        "txn_resp",
        "txn_last",
        "txn_cwnd",
        "txn_inflight",
        "txn_lbwt",
    )

    def __init__(self) -> None:
        self.order_keys: List[int] = []
        self.start_times: List[float] = []
        self.end_times: List[float] = []
        self.is_http2: List[bool] = []
        self.min_rtts: List[float] = []
        self.bytes_sents: List[int] = []
        self.busy_times: List[float] = []
        self.pops: List[str] = []
        self.countries: List[str] = []
        self.continents: List[str] = []
        self.hostings: List[bool] = []
        self.geo_tags: List[str] = []
        self.routes: List[Optional[RouteInfo]] = []
        self.media_lens: List[int] = []
        self.media_values: List[int] = []
        self.txn_lens: List[int] = []
        self.txn_fbt: List[float] = []
        self.txn_ack: List[float] = []
        self.txn_resp: List[int] = []
        self.txn_last: List[int] = []
        self.txn_cwnd: List[int] = []
        self.txn_inflight: List[int] = []
        self.txn_lbwt: List[float] = []

    def __len__(self) -> int:
        return len(self.order_keys)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, SessionSample]]
    ) -> "ColumnBatch":
        """Shred ``(order_key, sample)`` pairs into columns.

        The sample-object path (JSONL traces, in-memory streams): objects
        already exist upstream, so this only flattens them; the per-row
        saving comes from the kernels not re-walking objects afterwards.
        """
        batch = cls()
        order_keys = batch.order_keys
        start_times = batch.start_times
        end_times = batch.end_times
        is_http2 = batch.is_http2
        min_rtts = batch.min_rtts
        bytes_sents = batch.bytes_sents
        busy_times = batch.busy_times
        pops = batch.pops
        countries = batch.countries
        continents = batch.continents
        hostings = batch.hostings
        geo_tags = batch.geo_tags
        routes = batch.routes
        media_lens = batch.media_lens
        media_values = batch.media_values
        txn_lens = batch.txn_lens
        txn_fbt = batch.txn_fbt
        txn_ack = batch.txn_ack
        txn_resp = batch.txn_resp
        txn_last = batch.txn_last
        txn_cwnd = batch.txn_cwnd
        txn_inflight = batch.txn_inflight
        txn_lbwt = batch.txn_lbwt
        http2 = HttpVersion.HTTP_2
        for order_key, sample in pairs:
            order_keys.append(order_key)
            start_times.append(sample.start_time)
            end_times.append(sample.end_time)
            is_http2.append(sample.http_version is http2)
            min_rtts.append(sample.min_rtt_seconds)
            bytes_sents.append(sample.bytes_sent)
            busy_times.append(sample.busy_time_seconds)
            pops.append(sample.pop)
            countries.append(sample.client_country)
            continents.append(sample.client_continent)
            hostings.append(sample.client_ip_is_hosting)
            geo_tags.append(sample.geo_tag)
            routes.append(sample.route)
            media = sample.media_response_sizes
            media_lens.append(len(media))
            media_values.extend(media)
            transactions = sample.transactions
            txn_lens.append(len(transactions))
            for txn in transactions:
                fbt = txn.first_byte_time
                txn_fbt.append(fbt)
                txn_ack.append(txn.ack_time)
                txn_resp.append(txn.response_bytes)
                txn_last.append(txn.last_packet_bytes)
                txn_cwnd.append(txn.cwnd_bytes_at_first_byte)
                txn_inflight.append(txn.bytes_in_flight_at_start)
                lbwt = txn.last_byte_write_time
                txn_lbwt.append(fbt if lbwt is None else lbwt)
        return batch

    # ------------------------------------------------------------------ #
    @classmethod
    def from_store_columns(cls, decoded: Dict[str, list]) -> "ColumnBatch":
        """Adopt one store partition's decoded columns (the fast path).

        ``decoded`` is :func:`repro.store.schema.decode_columns` output:
        the schema's flat columns, one partition's worth, seq-sorted. Most
        columns transfer by reference — zero copies, zero objects; only
        the presence-compacted columns (route, ``last_byte_write_time``)
        are expanded, and routes are interned exactly like the row
        decoder so repeated routes cost one ``RouteInfo`` each.
        """
        # Late import: repro.store imports nothing from repro.kernels, so
        # the dependency points one way (kernels -> store).
        from repro.store.schema import _new_route, _RELATIONSHIP_BY_VALUE

        batch = cls()
        batch.order_keys = decoded["seq"]
        batch.start_times = decoded["start_time"]
        batch.end_times = decoded["end_time"]
        batch.is_http2 = [
            value == _HTTP2_VALUE for value in decoded["http_version"]
        ]
        batch.min_rtts = decoded["min_rtt_seconds"]
        batch.bytes_sents = decoded["bytes_sent"]
        batch.busy_times = decoded["busy_time_seconds"]
        batch.pops = decoded["pop"]
        batch.countries = decoded["client_country"]
        batch.continents = decoded["client_continent"]
        batch.hostings = decoded["client_ip_is_hosting"]
        batch.geo_tags = decoded["geo_tag"]
        batch.media_lens = decoded["media_lens"]
        batch.media_values = decoded["media_values"]
        batch.txn_lens = decoded["txn_lens"]
        batch.txn_fbt = decoded["txn_first_byte_time"]
        batch.txn_ack = decoded["txn_ack_time"]
        batch.txn_resp = decoded["txn_response_bytes"]
        batch.txn_last = decoded["txn_last_packet_bytes"]
        batch.txn_cwnd = decoded["txn_cwnd"]
        batch.txn_inflight = decoded["txn_inflight"]

        # Effective last-byte-write-time: presence-compacted values spread
        # back over the flat transaction rows, absent rows falling back to
        # first_byte_time (the coalescer's rule, applied once here).
        fbt = batch.txn_fbt
        next_lbwt = iter(decoded["txn_lbwt_values"]).__next__
        batch.txn_lbwt = [
            next_lbwt() if present else fallback
            for present, fallback in zip(decoded["txn_lbwt_present"], fbt)
        ]

        # Routes: presence-compacted and interned, same cache discipline as
        # the row decoder (repro.store.schema._decode_rows).
        routes: List[Optional[RouteInfo]] = batch.routes
        route_prefixes = decoded["route_prefix"]
        relationships = decoded["route_relationship"]
        route_ranks = decoded["route_rank"]
        route_prepends = decoded["route_prepended"]
        aspath_lens = decoded["route_aspath_lens"]
        aspath_values = decoded["route_aspath_values"]
        route_cache: Dict[tuple, RouteInfo] = {}
        route_cursor = 0
        aspath_cursor = 0
        for present in decoded["route_present"]:
            if not present:
                routes.append(None)
                continue
            aspath_len = aspath_lens[route_cursor]
            as_path = tuple(
                aspath_values[aspath_cursor : aspath_cursor + aspath_len]
            )
            aspath_cursor += aspath_len
            key = (
                route_prefixes[route_cursor],
                as_path,
                relationships[route_cursor],
                route_ranks[route_cursor],
                route_prepends[route_cursor],
            )
            route = route_cache.get(key)
            if route is None:
                route = route_cache[key] = _new_route(
                    key[0],
                    as_path,
                    _RELATIONSHIP_BY_VALUE[key[2]],
                    key[3],
                    key[4],
                )
            routes.append(route)
            route_cursor += 1
        return batch
