"""Vectorized column-batch analysis kernels (DESIGN.md §10).

The row path (:mod:`repro.core` + :class:`repro.pipeline.dataset.StudyDataset`)
materializes one ``SessionSample``/``TransactionRecord`` object per row and
walks the §3.2 methodology record by record. This package runs the same math
directly over decoded column arrays — flat per-transaction lists indexed by a
per-session length column, the layout the columnar store already holds — with
no per-row object materialization on the hot path.

The row path is the **equivalence oracle**: every kernel here is required to
reproduce its row implementation bit for bit (same expressions, evaluated in
the same order, on the same Python numeric types), so batch-engine output —
rows, aggregations, reports, figures, counters — is byte-identical to the row
engine's. The invariant is enforced by ``tests/test_batch_equivalence.py``
(end-to-end differential matrix) and ``tests/test_kernels_property.py``
(per-kernel Hypothesis properties), so a divergence names the kernel.

Layout contract and oracle argument: DESIGN.md §10.
"""

from repro.kernels.columns import ColumnBatch
from repro.kernels.engine import (
    BatchIngestor,
    batches_from_pairs,
    fold_into_dataset,
    iter_batches,
)
from repro.kernels.goodput import (
    FunnelCounts,
    assess_kernel,
    coalesce_kernel,
    eligibility_kernel,
    funnel_single,
    gtestable_kernel,
    hdratio_kernel,
    minrtt_bucket_kernel,
    minrtt_ms_kernel,
    next_wstart_kernel,
    rounds_kernel,
    session_funnel,
    tmodel_kernel,
)

__all__ = [
    "BatchIngestor",
    "ColumnBatch",
    "FunnelCounts",
    "assess_kernel",
    "batches_from_pairs",
    "coalesce_kernel",
    "eligibility_kernel",
    "funnel_single",
    "fold_into_dataset",
    "gtestable_kernel",
    "hdratio_kernel",
    "iter_batches",
    "minrtt_bucket_kernel",
    "minrtt_ms_kernel",
    "next_wstart_kernel",
    "rounds_kernel",
    "session_funnel",
    "tmodel_kernel",
]
