"""Batch engine: fold :class:`ColumnBatch` runs into dataset state.

:class:`BatchIngestor` is the batch path's counterpart of
:meth:`repro.pipeline.dataset.StudyDataset.ingest_one` — same filters, same
§3.2 funnel (via :func:`repro.kernels.goodput.session_funnel`), same rows,
aggregations, filter accounting, and observability counters — driven by
column cursors instead of per-row objects. Its output plugs into both
execution topologies:

- **serial**: :func:`fold_into_dataset` installs the finalized rows and
  aggregations into a :class:`StudyDataset`, restoring exact stream order
  (batches may interleave: store partitions are keyed by PoP and time
  band, not stream position);
- **sharded**: ``repro.pipeline.parallel`` builds one ingestor per shard
  and ships ``finalize()``'s output as a ``ShardResult`` through the same
  order-independent merge the row engine uses.

Counter parity is exact, not just sum-equal: the registry creates a
counter key on any ``inc``, including ``inc(name, 0)``, so the ingestor
reproduces the row path's key-creation pattern — e.g. the
``methodology.*`` funnel counters exist iff at least one kept session had
transactions, and ``methodology.sessions.hd_testable`` iff at least one
session tested — by buffering totals and flushing them under the same
conditions at :meth:`BatchIngestor.finalize`.
"""

from __future__ import annotations

import math
import pathlib
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.aggregation import Aggregation
from repro.core.records import SessionSample, UserGroupKey
from repro.kernels.columns import ColumnBatch
from repro.kernels.goodput import funnel_single, session_funnel
from repro.obs import MetricsRegistry
from repro.pipeline.filters import FilterStats

__all__ = [
    "BatchIngestor",
    "batches_for_chunk",
    "batches_from_pairs",
    "fold_into_dataset",
    "iter_batches",
]

AggregationKey = Tuple[UserGroupKey, int, int]

#: Rows per batch when slicing sample streams (JSONL / in-memory). Large
#: enough to amortize per-batch setup, small enough to keep a batch's flat
#: columns cache-resident. Store sources batch per partition instead.
DEFAULT_BATCH_ROWS = 2048


class BatchIngestor:
    """Accumulate batches; finalize into rows + aggregation pieces.

    Constructor arguments match :class:`StudyDataset`'s so the pipeline's
    ``dataset_kwargs`` dict drives either engine unchanged.
    """

    def __init__(
        self,
        study_windows: int,
        keep_response_sizes: bool = True,
        compute_naive: bool = False,
        window_seconds: float = 900.0,
    ) -> None:
        if study_windows <= 0:
            raise ValueError("study_windows must be positive")
        self.study_windows = study_windows
        self.keep_response_sizes = keep_response_sizes
        self.compute_naive = compute_naive
        self.window_seconds = window_seconds
        self.metrics = MetricsRegistry()
        self.filter_stats = FilterStats()
        self._rows: List[Tuple[int, object]] = []
        #: Per-key aggregation pieces: each batch that touches a key adds
        #: one (first order key in that batch, Aggregation) piece; finalize
        #: merges them in order-key order, the parallel merger's rule.
        self._pieces: Dict[AggregationKey, List[Tuple[int, Aggregation]]] = {}
        self._groups: Dict[Tuple[str, str, str], UserGroupKey] = {}
        # Buffered counter totals (flushed with row-path gating; see
        # module docstring).
        self._read = 0
        self._kept = 0
        self._dropped = 0
        self._txn_raw = 0
        self._txn_coalesced_away = 0
        self._txn_inflight_dropped = 0
        self._txn_gtestable = 0
        self._txn_achieved = 0
        self._any_txn = False
        self._hd_testable_sessions = 0
        self._hd_samples = 0
        self._finalized = False

    # ------------------------------------------------------------------ #
    def ingest_batch(self, batch: ColumnBatch) -> None:
        """Fold one batch; every sample's full contribution happens here."""
        # Import here, not at module top: dataset.py must stay importable
        # without the kernels package (the row path owes it nothing).
        from repro.pipeline.dataset import SessionRow

        order_keys = batch.order_keys
        start_times = batch.start_times
        end_times = batch.end_times
        is_http2 = batch.is_http2
        min_rtts = batch.min_rtts
        bytes_sents = batch.bytes_sents
        busy_times = batch.busy_times
        pops = batch.pops
        countries = batch.countries
        continents = batch.continents
        hostings = batch.hostings
        geo_tags = batch.geo_tags
        routes = batch.routes
        media_lens = batch.media_lens
        media_values = batch.media_values
        txn_lens = batch.txn_lens
        txn_fbt = batch.txn_fbt
        txn_ack = batch.txn_ack
        txn_resp = batch.txn_resp
        txn_last = batch.txn_last
        txn_cwnd = batch.txn_cwnd
        txn_inflight = batch.txn_inflight
        txn_lbwt = batch.txn_lbwt

        stats = self.filter_stats
        keep_sizes = self.keep_response_sizes
        compute_naive = self.compute_naive
        window_seconds = self.window_seconds
        groups = self._groups
        pieces = self._pieces
        rows_append = self._rows.append
        new_row = SessionRow.__new__
        floor = math.floor
        funnel = session_funnel
        single = funnel_single

        read = kept = dropped = 0
        txn_raw = txn_coalesced_away = txn_inflight_dropped = 0
        txn_gtestable = txn_achieved = 0
        any_txn = False
        hd_testable_sessions = 0
        hd_samples = 0
        #: Batch-local aggregations: one piece per key per batch, so the
        #: finalize merge sees at most one piece per (key, batch).
        local: Dict[AggregationKey, Aggregation] = {}

        txn_cursor = 0
        media_cursor = 0
        for i in range(len(order_keys)):
            t0 = txn_cursor
            tlen = txn_lens[i]
            txn_cursor = t0 + tlen
            m0 = media_cursor
            mlen = media_lens[i]
            media_cursor = m0 + mlen

            read += 1
            sent = bytes_sents[i]
            if hostings[i]:
                dropped += 1
                stats.dropped_sessions += 1
                stats.dropped_bytes += sent
                continue
            kept += 1
            stats.kept_sessions += 1
            stats.kept_bytes += sent

            min_rtt = min_rtts[i]
            naive = None
            if tlen == 1:
                # Scalar fast path: one record is one always-eligible
                # group with an empty ideal-window chain.
                any_txn = True
                tested, achieved, naive_achieved = single(
                    txn_fbt[t0],
                    txn_ack[t0],
                    txn_resp[t0],
                    txn_last[t0],
                    txn_cwnd[t0],
                    min_rtt,
                    compute_naive=compute_naive,
                )
                txn_raw += 1
                txn_gtestable += tested
                txn_achieved += achieved
                if tested:
                    hd_testable_sessions += 1
                    hd = achieved / tested
                    if compute_naive:
                        naive = naive_achieved / tested
                else:
                    hd = None
            elif tlen:
                any_txn = True
                counts = funnel(
                    txn_fbt,
                    txn_ack,
                    txn_resp,
                    txn_last,
                    txn_cwnd,
                    txn_inflight,
                    txn_lbwt,
                    t0,
                    txn_cursor,
                    min_rtt,
                    compute_naive=compute_naive,
                )
                txn_raw += tlen
                txn_coalesced_away += tlen - counts.coalesced
                txn_inflight_dropped += counts.coalesced - counts.eligible
                txn_gtestable += counts.tested
                txn_achieved += counts.achieved
                tested = counts.tested
                if tested:
                    hd_testable_sessions += 1
                    hd = counts.achieved / tested
                    if compute_naive:
                        naive = counts.naive_achieved / tested
                else:
                    hd = None
            else:
                hd = None

            if keep_sizes:
                sizes = tuple(txn_resp[t0:txn_cursor])
                media = tuple(media_values[m0:media_cursor])
            else:
                sizes = ()
                media = ()

            end_time = end_times[i]
            duration = end_time - start_times[i]
            if duration <= 0:
                busy_fraction = 1.0
            else:
                busy_fraction = min(busy_times[i] / duration, 1.0)

            row = new_row(SessionRow)
            # SessionRow is frozen: mutating the (empty) __dict__ in place
            # is the one write path its __setattr__ cannot veto.
            row.__dict__.update({
                "min_rtt_ms": min_rtt * 1000.0,
                "hdratio": hd,
                "naive_hdratio": naive,
                "bytes_sent": sent,
                "duration": duration,
                "busy_fraction": busy_fraction,
                "transaction_count": tlen,
                "is_http2": is_http2[i],
                "continent": continents[i],
                "geo_tag": geo_tags[i],
                "response_sizes": sizes,
                "media_bytes": media,
            })
            order_key = order_keys[i]
            rows_append((order_key, row))

            route = routes[i]
            if route is None:
                raise ValueError("sample is missing its egress route annotation")
            pop = pops[i]
            country = countries[i]
            group_key = (pop, route.prefix, country)
            group = groups.get(group_key)
            if group is None:
                group = groups[group_key] = UserGroupKey(
                    pop=pop, prefix=route.prefix, country=country
                )
            window = int(floor(end_time / window_seconds))
            akey = (group, route.preference_rank, window)
            aggregation = local.get(akey)
            if aggregation is None:
                aggregation = local[akey] = Aggregation(
                    group=group,
                    route_rank=route.preference_rank,
                    window=window,
                    route=route,
                )
                pieces.setdefault(akey, []).append((order_key, aggregation))
            aggregation.min_rtts_ms.append(min_rtt * 1000.0)
            if hd is not None:
                aggregation.hdratios.append(hd)
                hd_samples += 1
            aggregation.traffic_bytes += sent
            aggregation.session_count += 1

        self._read += read
        self._kept += kept
        self._dropped += dropped
        self._txn_raw += txn_raw
        self._txn_coalesced_away += txn_coalesced_away
        self._txn_inflight_dropped += txn_inflight_dropped
        self._txn_gtestable += txn_gtestable
        self._txn_achieved += txn_achieved
        self._any_txn = self._any_txn or any_txn
        self._hd_testable_sessions += hd_testable_sessions
        self._hd_samples += hd_samples

    # ------------------------------------------------------------------ #
    def finalize(
        self,
    ) -> Tuple[List[Tuple[int, object]], List[Tuple[int, AggregationKey, Aggregation]]]:
        """Flush counters; return (sorted rows, merged aggregations).

        Rows come back as ``(order_key, SessionRow)`` sorted globally;
        aggregations as ``(first order key, key, Aggregation)`` sorted by
        first appearance — exactly the shapes the parallel merger and the
        serial fold consume. Call once.
        """
        if self._finalized:
            raise RuntimeError("BatchIngestor.finalize() already called")
        self._finalized = True
        metrics = self.metrics
        if self._read:
            metrics.inc("pipeline.samples.read", self._read)
        if self._dropped:
            metrics.inc("pipeline.samples.dropped_hosting", self._dropped)
        if self._kept:
            metrics.inc("pipeline.samples.kept", self._kept)
        if self._any_txn:
            # The row path incs these per session-with-transactions (even
            # when a summand is 0), so the keys exist exactly when at least
            # one kept session had transactions.
            metrics.inc("methodology.transactions.raw", self._txn_raw)
            metrics.inc(
                "methodology.transactions.coalesced", self._txn_coalesced_away
            )
            metrics.inc(
                "methodology.transactions.inflight_dropped",
                self._txn_inflight_dropped,
            )
            metrics.inc("methodology.transactions.gtestable", self._txn_gtestable)
            metrics.inc("methodology.transactions.achieved", self._txn_achieved)
        if self._hd_testable_sessions:
            metrics.inc(
                "methodology.sessions.hd_testable", self._hd_testable_sessions
            )
        if self._kept:
            metrics.inc("core.aggregation.samples", self._kept)
        if self._hd_samples:
            metrics.inc("core.aggregation.hd_samples", self._hd_samples)

        first = itemgetter(0)
        self._rows.sort(key=first)
        aggregations: List[Tuple[int, AggregationKey, Aggregation]] = []
        for akey, parts in self._pieces.items():
            parts.sort(key=first)
            first_key, merged = parts[0]
            for _, piece in parts[1:]:
                merged.merge(piece)
            aggregations.append((first_key, akey, merged))
        aggregations.sort(key=first)
        return self._rows, aggregations


# --------------------------------------------------------------------- #
# Batch sources
# --------------------------------------------------------------------- #
def batches_from_pairs(
    pairs: Iterable[Tuple[int, SessionSample]],
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Iterator[ColumnBatch]:
    """Slice an ``(order_key, sample)`` stream into column batches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    buffer: List[Tuple[int, SessionSample]] = []
    for pair in pairs:
        buffer.append(pair)
        if len(buffer) >= batch_size:
            yield ColumnBatch.from_pairs(buffer)
            buffer = []
    if buffer:
        yield ColumnBatch.from_pairs(buffer)


def iter_batches(
    source,
    metrics: Optional[MetricsRegistry] = None,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Iterator[ColumnBatch]:
    """Column batches from any dataset source (path or sample iterable).

    Store paths take the column fast path — one batch per partition, no
    row objects; JSONL paths and in-memory streams are sliced into
    ``batch_size`` batches with stream-position order keys. ``metrics``
    receives the same ``io.*``/``store.*`` counters as the row readers.
    """
    if isinstance(source, (str, pathlib.Path)):
        from repro.pipeline.io import detect_format, read_samples
        from repro.store import TraceStoreReader

        if detect_format(source) == "store":
            yield from TraceStoreReader(source).read_column_batches(
                metrics=metrics
            )
            return
        yield from batches_from_pairs(
            enumerate(read_samples(source, metrics=metrics)), batch_size
        )
        return
    yield from batches_from_pairs(enumerate(source), batch_size)


def batches_for_chunk(
    chunk, metrics: Optional[MetricsRegistry] = None,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Iterator[ColumnBatch]:
    """Column batches for one shard chunk (store or JSONL).

    Store chunks decode their partitions straight to columns; JSONL
    chunks reuse the chunk readers' order keys (byte offsets / line
    indexes), so shard results merge identically to the row engine's.
    """
    from repro.pipeline.io import StoreChunk, read_chunk
    from repro.store import TraceStoreReader

    if isinstance(chunk, StoreChunk):
        yield from TraceStoreReader(chunk.path).read_column_batches(
            metrics=metrics, partition_ids=chunk.partition_ids
        )
        return
    yield from batches_from_pairs(read_chunk(chunk, metrics=metrics), batch_size)


def fold_into_dataset(dataset, ingestor: BatchIngestor):
    """Install an ingestor's finalized state into a ``StudyDataset``.

    The serial batch path's last step: rows in global order, aggregations
    installed in first-seen order (reproducing serial insertion order),
    filter stats and counters merged. Returns the dataset.
    """
    rows, aggregations = ingestor.finalize()
    dataset.rows.extend(row for _, row in rows)
    for _, key, aggregation in aggregations:
        dataset.store.put(key, aggregation)
    dataset.filter_stats.merge(ingestor.filter_stats)
    dataset.metrics.merge(ingestor.metrics)
    return dataset
