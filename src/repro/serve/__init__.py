"""Query-serving layer: HTTP API over the columnar store (§5/§6 use case).

The paper's operational loop is engineers *watching* per-(PoP, country,
window) MinRTT/HDratio quantiles and degradation verdicts, not reading
batch reports after the fact. This package turns the reproduction's batch
pipeline into that service: a dependency-free HTTP API (stdlib
``http.server``) over a sealed :mod:`repro.store` trace store.

Endpoints (all GET, canonical sorted-key JSON):

- ``/v1/quantiles``   — fig6-style MinRTT/HDratio quantiles, filterable
  by ``pop``/``country``/``window``;
- ``/v1/degradation`` — §5 verdicts: per-group temporal classification
  (uneventful/episodic/continuous/diurnal) + CI-bounded degraded-traffic
  fraction;
- ``/v1/routing``     — §6 routing opportunity (fig9): traffic within
  slack of optimal, improvable fractions;
- ``/v1/health``      — store generation, cache stats, quarantine ledger
  (§9 failure model), optional full CRC audit via ``?verify=1``.

Numbers are *defined* to be the batch pipeline's numbers: every query
resolves through the same dataset fold and figure drivers the CLI runs,
so the serving layer inherits the equivalence-to-serial contract
(byte-identical cold/warm/serial/threaded — ``tests/test_serve_api.py``).

Layering: :mod:`repro.serve.cache` (exactly-accounted LRU of sealed
aggregations) → :mod:`repro.serve.engine` (ScanFilter-pruned query
resolution, generation-based invalidation on ``append_to_store``, typed
400/503 mapping) → :mod:`repro.serve.server` (deterministic HTTP
renderer). ``repro serve`` is the CLI entry point; DESIGN.md §12 is the
spec.
"""

from repro.serve.cache import LruCache
from repro.serve.engine import (
    BadRequest,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_ROUTING_WINDOWS,
    QUANTILE_POINTS,
    QueryEngine,
)
from repro.serve.server import TraceStoreHTTPServer, make_server, render_payload

__all__ = [
    "BadRequest",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_ROUTING_WINDOWS",
    "LruCache",
    "QUANTILE_POINTS",
    "QueryEngine",
    "TraceStoreHTTPServer",
    "make_server",
    "render_payload",
]
