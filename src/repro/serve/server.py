"""HTTP front-end for the query engine: a thin, deterministic renderer.

The server layer owns *only* transport: URL parsing, status codes, and
byte rendering. Every decision — routing, validation, caching, error
mapping — lives in :class:`~repro.serve.engine.QueryEngine`, which the
tests drive both directly (in-process) and through a real socket; the two
must be indistinguishable.

Rendering is deterministic by construction: :func:`render_payload` emits
``json.dumps(payload, sort_keys=True)`` + newline, so a byte-equality
assertion between any two responses is meaningful (cold vs warm cache,
serial vs threaded — the contract in ``tests/test_serve_api.py``).

:class:`ThreadingHTTPServer` gives one thread per connection; since the
engine serializes request handling under its own lock, concurrency here
buys connection parallelism (accept/read/write overlap) while keeping the
counter accounting exact. Threads are daemonic so a ``repro serve``
process dies cleanly on SIGINT.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.engine import QueryEngine

__all__ = ["TraceStoreHTTPServer", "make_server", "render_payload"]


def render_payload(payload: dict) -> bytes:
    """Canonical response bytes: sorted-key JSON + trailing newline.

    Sorted keys make rendering order-independent of dict construction
    order, which is what lets the test suite assert *byte* identity
    between cold/warm and serial/threaded responses.
    """
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """One GET request in, one canonical JSON response out."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # Responses are written in two pieces (header block, then body); with
    # Nagle on, the body segment can sit behind the client's delayed ACK
    # for ~40ms per request on keep-alive connections. Serving is strict
    # request/response, so flush segments immediately.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        split = urlsplit(self.path)
        params = parse_qs(split.query, keep_blank_values=True)
        status, payload = self.server.engine.handle(split.path, params)
        body = render_payload(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.note_request()

    def log_message(self, format: str, *args) -> None:
        """Access logging is the metrics registry's job, not stderr's."""


class TraceStoreHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`QueryEngine`.

    ``max_requests`` (optional) shuts the server down after N responses
    have been written — the hook that makes ``repro serve`` end-to-end
    testable without signals.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: QueryEngine,
        max_requests: Optional[int] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.engine = engine
        self.max_requests = max_requests
        self._served = 0
        self._served_lock = threading.Lock()

    def note_request(self) -> None:
        """Count a completed response; trigger shutdown at the cap.

        ``shutdown()`` blocks until ``serve_forever`` exits, so it must
        run off the handler thread.
        """
        with self._served_lock:
            self._served += 1
            reached_cap = (
                self.max_requests is not None
                and self._served >= self.max_requests
            )
        if reached_cap:
            threading.Thread(target=self.shutdown, daemon=True).start()


def make_server(
    store_path,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: Optional[int] = None,
    **engine_kwargs,
) -> TraceStoreHTTPServer:
    """Build a server over ``store_path``; ``port=0`` picks a free port.

    Engine keyword arguments (``engine=``, ``cache_capacity=``,
    ``metrics=``, window overrides) pass through to
    :class:`QueryEngine`. The caller owns the serve loop::

        server = make_server(store, port=8321)
        print(server.server_address)
        server.serve_forever()
    """
    engine = QueryEngine(store_path, **engine_kwargs)
    return TraceStoreHTTPServer((host, port), engine, max_requests=max_requests)
