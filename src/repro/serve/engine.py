"""Query engine: the serving layer's store-backed resolver.

:class:`QueryEngine` answers the four ``/v1`` endpoints over a sealed
columnar store (:mod:`repro.store`). Every query resolves through the same
code path the batch CLI runs — :class:`~repro.pipeline.dataset.StudyDataset`
ingestion, :func:`~repro.pipeline.experiments.fig6_global_performance`,
:func:`~repro.pipeline.routing_analysis.fig9_opportunity`, the §5
verdict/classification stack — so a served number is *defined* to be the
batch number (the serving layer inherits the equivalence-to-serial
contract; ``tests/test_serve_api.py`` pins it byte-for-byte).

Resolution pipeline per query:

1. **Generation check.** The store manifest is re-read on every request;
   its ``(row_count, data_bytes, partitions)`` triple is the store's
   *generation*. An ``append_to_store`` (e.g. a live ``repro ingest``
   feeding the same store) changes the triple, which flushes the whole
   cache — a cached aggregation can therefore never outlive the data it
   was built from. The manifest is swapped in atomically (temp+rename),
   and appends only ever add bytes past the previous manifest's range, so
   a concurrent reader always observes a consistent snapshot.
2. **Cache lookup.** Aggregations are cached in an :class:`~repro.serve.cache.LruCache`
   keyed by the normalized query coordinates — (profile, engine, PoPs,
   countries, window band) — with exact hit/miss/eviction accounting.
3. **Build on miss.** A :class:`ScanFilter` prunes non-matching partitions
   from the manifest before any data byte is read (the ``store.*``
   pruned/bytes counters land in the serving registry), then the admitted
   samples fold into a ``StudyDataset`` exactly as the batch path folds
   them. Window bounds are enforced exactly: the filter's inclusive time
   range over-admits at most the band boundary, and a row-level
   ``window_index`` predicate drops the overshoot.
4. **Render.** Responses are JSON-ready dicts memoized per (endpoint,
   params) on the cache entry, so a warm response is byte-identical to the
   cold one by construction.

Failure semantics (§9 failure model, extended to serving): a typed
:class:`~repro.store.errors.StoreError` raised under a query is mapped to
a 503 payload naming the damaged partition/column/byte-range, recorded in
the engine's quarantine ledger, and surfaced by ``/v1/health`` as a
``degraded`` status. No crash, and never silently-zero numbers.

Thread safety: one re-entrant lock serializes request handling, which is
what makes ``serve.*`` counters sum exactly to per-client totals under a
concurrent fleet (``tests/test_serve_concurrency.py``). Cache hits are
O(1) under the lock; only cold builds pay a scan.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.core.aggregation import window_index
from repro.core.classification import classify_group
from repro.core.constants import (
    DEFAULT_HDRATIO_THRESHOLD,
    DEFAULT_MINRTT_THRESHOLD_MS,
)
from repro.obs import MetricsRegistry
from repro.pipeline.dataset import StudyDataset
from repro.pipeline.experiments import fig6_global_performance
from repro.pipeline.report import format_metric, format_percent
from repro.pipeline.routing_analysis import (
    WeightedDifferenceCdf,
    fig9_opportunity,
)
from repro.store import ScanFilter, TraceStoreReader, verify_store
from repro.store.errors import StoreError
from repro.store.writer import MANIFEST_NAME
from repro.serve.cache import LruCache

__all__ = [
    "BadRequest",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_ROUTING_WINDOWS",
    "QUANTILE_POINTS",
    "QueryEngine",
]

PathLike = Union[str, pathlib.Path]

#: Default LRU capacity: a dashboard fleet's working set is its hot
#: (PoP, country) pairs; 64 sealed-window aggregations cover that with
#: room while bounding resident datasets.
DEFAULT_CACHE_CAPACITY = 64

#: `repro routing` audits a trace at one-hour windows over a default
#: two-day study (``--days 2`` → 48 windows); ``/v1/routing`` matches that
#: so served numbers equal the batch CLI's by default.
DEFAULT_ROUTING_WINDOWS = 48

#: MinRTT quantiles served by ``/v1/quantiles`` (fig6's headline points).
QUANTILE_POINTS = (0.5, 0.8, 0.9, 0.99)


class BadRequest(ValueError):
    """A malformed query: unknown parameter, bad value, bad combination."""


class _CacheEntry:
    """One cached aggregation: the dataset plus its rendered responses."""

    __slots__ = ("dataset", "responses")

    def __init__(self, dataset: StudyDataset) -> None:
        self.dataset = dataset
        #: (endpoint, extra-params) -> JSON-ready payload dict. Memoizing
        #: the rendered response makes warm responses byte-identical to
        #: cold ones by construction and O(1) under the request lock.
        self.responses: Dict[tuple, dict] = {}


class QueryEngine:
    """Resolve serving queries over one sealed columnar store.

    ``study_windows``/``window_seconds`` default to values derived from
    the store manifest (the partition bands span the study); pass them
    explicitly to pin equivalence against a specific batch invocation.
    ``routing_windows`` defaults to the routing CLI's two-day study.
    ``engine`` selects the dataset build for *unfiltered* queries
    (``"batch"`` runs the column kernels); filtered queries always run the
    row fold, whose output is byte-identical by the PR-5 oracle contract.
    """

    def __init__(
        self,
        store_path: PathLike,
        study_windows: Optional[int] = None,
        window_seconds: Optional[float] = None,
        routing_windows: int = DEFAULT_ROUTING_WINDOWS,
        routing_window_seconds: float = 3600.0,
        engine: str = "batch",
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if engine not in ("row", "batch"):
            raise ValueError(f"unknown engine {engine!r} (use 'row' or 'batch')")
        if routing_windows < 1:
            raise ValueError("routing_windows must be >= 1")
        self.path = pathlib.Path(store_path)
        self.engine = engine
        self.routing_windows = routing_windows
        self.routing_window_seconds = routing_window_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = LruCache(cache_capacity, metrics=self.metrics)
        self._lock = threading.RLock()
        self._generation: Optional[dict] = None
        #: Quarantine ledger: every distinct StoreError a served query hit,
        #: with partition/column attribution — the serving face of the §9
        #: degraded-run ledger. Surfaced by /v1/health.
        self.quarantine: List[dict] = []

        # Derive study shape from the manifest unless pinned by the caller.
        # (The store must exist to be served; a missing manifest raises the
        # same typed StoreError a scan would.)
        reader = TraceStoreReader(self.path)
        manifest = reader.manifest
        self.window_seconds = (
            float(window_seconds)
            if window_seconds is not None
            else float(manifest.get("window_seconds", 900.0))
        )
        if study_windows is not None:
            if study_windows < 1:
                raise ValueError("study_windows must be >= 1")
            self.study_windows = study_windows
        else:
            band_windows = int(manifest.get("band_windows", 1))
            bands = [p["band"] for p in manifest.get("partitions", [])]
            self.study_windows = max(
                (max(bands) + 1) * band_windows if bands else 1, 1
            )

    # ------------------------------------------------------------------ #
    # Request entry point
    # ------------------------------------------------------------------ #
    def handle(self, path: str, params: Dict[str, List[str]]) -> Tuple[int, dict]:
        """Resolve one request; returns ``(http_status, payload_dict)``.

        Never raises for store or parameter problems — they map to typed
        400/404/503 payloads — so the HTTP layer stays a thin renderer.
        Runs entirely under the engine lock: counters advance atomically
        with the work they count.
        """
        routes = {
            "/v1/quantiles": self._quantiles,
            "/v1/degradation": self._degradation,
            "/v1/routing": self._routing,
            "/v1/health": self._health,
        }
        with self._lock:
            self.metrics.inc("serve.requests")
            handler = routes.get(path)
            if handler is None:
                self.metrics.inc("serve.responses.client_error")
                return 404, {
                    "error": "not_found",
                    "detail": f"unknown path {path!r}",
                    "paths": sorted(routes),
                }
            try:
                payload = handler(params)
            except BadRequest as error:
                self.metrics.inc("serve.responses.client_error")
                return 400, {"error": "bad_request", "detail": str(error)}
            except StoreError as error:
                self._record_quarantine(error)
                self.metrics.inc("serve.responses.server_error")
                return 503, {
                    "error": type(error).__name__,
                    "partition": getattr(error, "partition_id", None),
                    "column": getattr(error, "column", None),
                    "offset": getattr(error, "offset", None),
                    "detail": str(error),
                }
            self.metrics.inc("serve.responses.ok")
            return 200, payload

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _quantiles(self, params: Dict[str, List[str]]) -> dict:
        pops, countries, window = self._common_filters(
            params, allowed=("pop", "country", "window")
        )
        entry, generation = self._entry("analyze", pops, countries, window)
        memo_key = ("quantiles",)
        cached = entry.responses.get(memo_key)
        if cached is not None:
            return cached
        result = fig6_global_performance(entry.dataset)
        minrtt = {
            f"p{int(q * 100)}": result.minrtt_all.quantile(q)
            for q in QUANTILE_POINTS
        }
        hdratio = {
            f"p{int(q * 100)}": result.hdratio_all.quantile(q)
            for q in (0.25, 0.5, 0.75)
        }
        hdratio["positive_fraction"] = result.hdratio_positive_fraction
        hdratio["full_fraction"] = result.hdratio_full_fraction
        payload = {
            "endpoint": "quantiles",
            "engine": self.engine,
            "generation": generation,
            "filters": self._echo_filters(pops, countries, window),
            "window_seconds": self.window_seconds,
            "study_windows": entry.dataset.study_windows,
            "sessions": entry.dataset.session_count,
            "hd_sessions": len(entry.dataset.hd_rows()),
            "minrtt_ms": minrtt,
            "hdratio": hdratio,
            # The exact strings `repro analyze` prints — the contract that
            # served numbers ARE the batch report's numbers.
            "formatted": {
                "minrtt_p50": format_metric(result.median_minrtt, ".1f", " ms"),
                "minrtt_p80": format_metric(result.p80_minrtt, ".1f", " ms"),
                "hdratio_positive": format_percent(
                    result.hdratio_positive_fraction
                ),
            },
        }
        entry.responses[memo_key] = payload
        return payload

    def _degradation(self, params: Dict[str, List[str]]) -> dict:
        pops, countries, window = self._common_filters(
            params,
            allowed=("pop", "country", "window", "metric", "threshold", "limit"),
        )
        metric = self._one(params, "metric", "minrtt")
        if metric not in ("minrtt", "hdratio"):
            raise BadRequest("metric must be 'minrtt' or 'hdratio'")
        default_threshold = (
            DEFAULT_MINRTT_THRESHOLD_MS
            if metric == "minrtt"
            else DEFAULT_HDRATIO_THRESHOLD
        )
        threshold = self._float(params, "threshold", default_threshold)
        limit = self._int(params, "limit", 100, minimum=1)
        entry, generation = self._entry("analyze", pops, countries, window)
        memo_key = ("degradation", metric, threshold, limit)
        cached = entry.responses.get(memo_key)
        if cached is not None:
            return cached

        dataset = entry.dataset
        verdict_map = dataset.verdicts(metric, "degradation")
        acc = WeightedDifferenceCdf()
        groups = []
        class_counts: Dict[str, int] = {}
        for group in sorted(
            verdict_map, key=lambda g: (g.pop, g.prefix, g.country)
        ):
            verdicts = verdict_map[group]
            for verdict in verdicts:
                acc.add(verdict)
            classification = classify_group(
                verdicts,
                threshold,
                dataset.study_windows,
                windows_per_day=dataset.windows_per_day,
            )
            label = (
                classification.temporal_class.value
                if classification.temporal_class is not None
                else "unclassified"
            )
            class_counts[label] = class_counts.get(label, 0) + 1
            groups.append(
                {
                    "pop": group.pop,
                    "prefix": group.prefix,
                    "country": group.country,
                    "temporal_class": label,
                    "coverage": classification.coverage,
                    "valid_windows": classification.valid_windows,
                    "event_windows": classification.event_windows,
                    "total_traffic_bytes": classification.total_traffic_bytes,
                    "event_traffic_bytes": classification.event_traffic_bytes,
                }
            )
        payload = {
            "endpoint": "degradation",
            "engine": self.engine,
            "generation": generation,
            "filters": self._echo_filters(pops, countries, window),
            "metric": metric,
            "threshold": threshold,
            "study_windows": dataset.study_windows,
            "groups_total": len(groups),
            "groups": groups[:limit],
            "class_counts": dict(sorted(class_counts.items())),
            # Fig-8-style aggregate: traffic degraded >= threshold with
            # CI-lower-bound confidence, over all matching groups.
            "degraded_traffic_fraction_ci": acc.traffic_fraction_at_least(
                threshold, use_ci_low=True
            ),
            "valid_traffic_fraction": acc.valid_traffic_fraction,
        }
        entry.responses[memo_key] = payload
        return payload

    def _routing(self, params: Dict[str, List[str]]) -> dict:
        pops, countries, window = self._common_filters(
            params,
            allowed=(
                "pop",
                "country",
                "window",
                "slack_ms",
                "minrtt_threshold",
                "hdratio_threshold",
            ),
        )
        slack_ms = self._float(params, "slack_ms", 3.0)
        minrtt_threshold = self._float(params, "minrtt_threshold", 5.0)
        hdratio_threshold = self._float(params, "hdratio_threshold", 0.05)
        entry, generation = self._entry("routing", pops, countries, window)
        memo_key = ("routing", slack_ms, minrtt_threshold, hdratio_threshold)
        cached = entry.responses.get(memo_key)
        if cached is not None:
            return cached
        result = fig9_opportunity(entry.dataset)
        minrtt_within = result.minrtt_within_of_optimal(slack_ms)
        minrtt_improvable = result.minrtt.traffic_fraction_at_least(
            minrtt_threshold, use_ci_low=True
        )
        hd_improvable = result.hdratio.traffic_fraction_at_least(
            hdratio_threshold, use_ci_low=True
        )
        payload = {
            "endpoint": "routing",
            "engine": self.engine,
            "generation": generation,
            "filters": self._echo_filters(pops, countries, window),
            "window_seconds": self.routing_window_seconds,
            "study_windows": entry.dataset.study_windows,
            "sessions": entry.dataset.session_count,
            "slack_ms": slack_ms,
            "minrtt_threshold": minrtt_threshold,
            "hdratio_threshold": hdratio_threshold,
            "minrtt": {
                "within_slack_fraction": minrtt_within,
                "improvable_fraction_ci": minrtt_improvable,
                "valid_traffic_fraction": result.minrtt.valid_traffic_fraction,
            },
            "hdratio": {
                "improvable_fraction_ci": hd_improvable,
                "valid_traffic_fraction": result.hdratio.valid_traffic_fraction,
            },
            # The exact strings `repro routing --trace` prints.
            "formatted": {
                "minrtt_within_slack": format_percent(minrtt_within),
                "minrtt_improvable": format_percent(minrtt_improvable),
                "hdratio_improvable": format_percent(hd_improvable),
            },
        }
        entry.responses[memo_key] = payload
        return payload

    def _health(self, params: Dict[str, List[str]]) -> dict:
        self._reject_unknown(params, allowed=("verify",))
        verify = self._one(params, "verify", "") in ("1", "true", "yes")
        payload: dict = {
            "endpoint": "health",
            "store": str(self.path),
            "engine": self.engine,
            "cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "invalidations": self.cache.invalidations,
            },
            "requests": self.metrics.counter("serve.requests"),
            "quarantine": {
                "count": len(self.quarantine),
                "partitions": sorted(
                    {
                        entry["partition"]
                        for entry in self.quarantine
                        if entry["partition"] is not None
                    }
                ),
                "entries": list(self.quarantine),
            },
        }
        try:
            generation = self._refresh_generation()
        except StoreError as error:
            payload["status"] = "degraded"
            payload["generation"] = None
            payload["store_error"] = str(error)
            return payload
        payload["generation"] = generation
        if verify:
            report = verify_store(self.path, metrics=self.metrics)
            payload["verify"] = {
                "ok": report.ok,
                "partitions_total": report.partitions_total,
                "partitions_corrupt": report.partitions_corrupt,
                "findings": [f.describe() for f in report.findings],
            }
            if not report.ok:
                for finding in report.findings:
                    self._record_quarantine_entry(
                        finding.partition_id, finding.column, finding.error
                    )
                payload["quarantine"]["count"] = len(self.quarantine)
                payload["quarantine"]["entries"] = list(self.quarantine)
                payload["quarantine"]["partitions"] = sorted(
                    {
                        entry["partition"]
                        for entry in self.quarantine
                        if entry["partition"] is not None
                    }
                )
        payload["status"] = "degraded" if self.quarantine else "ok"
        return payload

    # ------------------------------------------------------------------ #
    # Cache + dataset plumbing
    # ------------------------------------------------------------------ #
    def _entry(
        self,
        profile: str,
        pops: Optional[frozenset],
        countries: Optional[frozenset],
        window: Optional[Tuple[int, int]],
    ) -> Tuple[_CacheEntry, dict]:
        """Cached aggregation for the normalized query coordinates.

        Checks the store generation first: a changed manifest flushes the
        cache *before* the lookup, so a pre-append aggregation is
        unreachable the moment an append lands.
        """
        generation = self._refresh_generation()
        key = (
            profile,
            self.engine,
            tuple(sorted(pops)) if pops is not None else None,
            tuple(sorted(countries)) if countries is not None else None,
            window,
        )
        entry = self.cache.get(key)
        if entry is None:
            entry = _CacheEntry(
                self._build_dataset(profile, pops, countries, window)
            )
            self.cache.put(key, entry)
        return entry, generation

    def _refresh_generation(self) -> dict:
        """Read the manifest's generation triple; flush the cache on change."""
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{self.path}: not a trace store (missing {MANIFEST_NAME})"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            from repro.store.errors import CorruptManifestError

            raise CorruptManifestError(manifest_path, str(error)) from error
        generation = {
            "row_count": manifest.get("row_count"),
            "data_bytes": manifest.get("data_bytes"),
            "partitions": len(manifest.get("partitions", ())),
        }
        if generation != self._generation:
            if self._generation is not None:
                self.cache.invalidate_all()
            self._generation = generation
        return generation

    def _build_dataset(
        self,
        profile: str,
        pops: Optional[frozenset],
        countries: Optional[frozenset],
        window: Optional[Tuple[int, int]],
    ) -> StudyDataset:
        """Build the aggregation the batch path would build for this query."""
        if profile == "analyze":
            window_seconds = self.window_seconds
            study_windows = self.study_windows
            keep_response_sizes = True
        else:  # routing: the §6 audit's dataset shape (hourly windows)
            window_seconds = self.routing_window_seconds
            study_windows = self.routing_windows
            keep_response_sizes = False

        unfiltered = pops is None and countries is None and window is None
        if unfiltered and self.engine == "batch":
            from repro.pipeline.parallel import build_dataset

            dataset = build_dataset(
                str(self.path),
                study_windows=study_windows,
                keep_response_sizes=keep_response_sizes,
                window_seconds=window_seconds,
                engine="batch",
            )
            self.metrics.merge(dataset.metrics)
            return dataset

        dataset = StudyDataset(
            study_windows=study_windows,
            keep_response_sizes=keep_response_sizes,
            window_seconds=window_seconds,
        )
        scan_filter = None
        if not unfiltered:
            scan_filter = ScanFilter(
                pops=pops,
                countries=countries,
                min_end_time=(
                    window[0] * window_seconds if window is not None else None
                ),
                max_end_time=(
                    (window[1] + 1) * window_seconds
                    if window is not None
                    else None
                ),
            )
        reader = TraceStoreReader(self.path)
        samples = reader.scan(scan_filter, metrics=dataset.metrics)
        if window is not None:
            # The filter's inclusive time bounds over-admit only a sample
            # ending exactly on the range's right edge; this exact
            # predicate restores window semantics (floor(end/W) in range).
            lo, hi = window
            samples = (
                s
                for s in samples
                if lo <= window_index(s.end_time, window_seconds) <= hi
            )
        dataset.ingest(samples)
        self.metrics.merge(dataset.metrics)
        return dataset

    # ------------------------------------------------------------------ #
    # Parameter parsing
    # ------------------------------------------------------------------ #
    def _common_filters(
        self, params: Dict[str, List[str]], allowed: Tuple[str, ...]
    ) -> Tuple[Optional[frozenset], Optional[frozenset], Optional[Tuple[int, int]]]:
        self._reject_unknown(params, allowed)
        pops = frozenset(params["pop"]) if params.get("pop") else None
        countries = (
            frozenset(params["country"]) if params.get("country") else None
        )
        window = self._window_range(params)
        return pops, countries, window

    @staticmethod
    def _reject_unknown(
        params: Dict[str, List[str]], allowed: Tuple[str, ...]
    ) -> None:
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise BadRequest(
                f"unknown parameter(s) {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )

    @staticmethod
    def _one(params: Dict[str, List[str]], name: str, default: str) -> str:
        values = params.get(name)
        if not values:
            return default
        if len(values) > 1:
            raise BadRequest(f"parameter {name} given more than once")
        return values[0]

    def _float(
        self, params: Dict[str, List[str]], name: str, default: float
    ) -> float:
        raw = self._one(params, name, "")
        if raw == "":
            return default
        try:
            return float(raw)
        except ValueError:
            raise BadRequest(f"parameter {name} must be a number, got {raw!r}")

    def _int(
        self,
        params: Dict[str, List[str]],
        name: str,
        default: int,
        minimum: int,
    ) -> int:
        raw = self._one(params, name, "")
        if raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise BadRequest(f"parameter {name} must be an integer, got {raw!r}")
        if value < minimum:
            raise BadRequest(f"parameter {name} must be >= {minimum}")
        return value

    def _window_range(
        self, params: Dict[str, List[str]]
    ) -> Optional[Tuple[int, int]]:
        raw = self._one(params, "window", "")
        if raw == "":
            return None
        lo, _, hi = raw.partition("-")
        try:
            start = int(lo)
            end = int(hi) if hi else start
        except ValueError:
            raise BadRequest(
                f"parameter window must be N or A-B, got {raw!r}"
            )
        if start < 0 or end < start:
            raise BadRequest(
                f"parameter window range is empty or negative: {raw!r}"
            )
        return (start, end)

    @staticmethod
    def _echo_filters(
        pops: Optional[frozenset],
        countries: Optional[frozenset],
        window: Optional[Tuple[int, int]],
    ) -> dict:
        return {
            "pops": sorted(pops) if pops is not None else None,
            "countries": sorted(countries) if countries is not None else None,
            "window": list(window) if window is not None else None,
        }

    # ------------------------------------------------------------------ #
    # Quarantine ledger
    # ------------------------------------------------------------------ #
    def _record_quarantine(self, error: StoreError) -> None:
        self._record_quarantine_entry(
            getattr(error, "partition_id", None),
            getattr(error, "column", None),
            str(error),
        )

    def _record_quarantine_entry(
        self, partition: Optional[int], column: Optional[str], detail: str
    ) -> None:
        entry = {"partition": partition, "column": column, "error": detail}
        if entry not in self.quarantine:
            self.quarantine.append(entry)
            self.metrics.inc("serve.quarantined")
