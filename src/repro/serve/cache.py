"""Hot-aggregation LRU cache for the query-serving layer.

:class:`LruCache` is a deliberately small, exactly-accounted LRU map. The
serving engine (:mod:`repro.serve.engine`) keys it by the normalized query
coordinates — (PoPs, countries, window band, engine profile) — and stores
the built sealed-window aggregation (a
:class:`~repro.pipeline.dataset.StudyDataset` plus its rendered response
memo) as the value, the same shape the lazy spatial caches the ROADMAP
points at use for repeated-key workloads.

Accounting is part of the contract, not a nicety: every ``get`` is exactly
one hit or one miss, every capacity overflow is exactly one eviction of the
least-recently-used entry, and every ``invalidate_all`` counts the entries
it dropped. ``tests/test_serve_cache.py`` holds a Hypothesis model against
these semantics, and the serving benchmark's hit-rate floor is computed
from these counters — so they must never drift from the true behaviour.

The cache itself is **not** thread-safe; the engine serializes access
under its request lock (which is also what makes hit/miss totals exact
under a concurrent client fleet — see ``tests/test_serve_concurrency.py``).

Counters (mirrored into a :class:`repro.obs.MetricsRegistry` when one is
supplied): ``serve.cache.hits`` / ``serve.cache.misses`` /
``serve.cache.evictions`` / ``serve.cache.invalidations``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, List, Optional, Tuple

__all__ = ["LruCache"]


class LruCache:
    """Least-recently-used map with exact hit/miss/eviction accounting.

    ``capacity`` is the maximum number of entries ever held (must be
    positive); a ``put`` that would exceed it evicts least-recently-used
    entries first. Both ``get`` hits and ``put`` updates refresh recency.
    """

    def __init__(self, capacity: int, metrics=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or accounting."""
        return key in self._entries

    def keys(self) -> List[Hashable]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``.

        Exactly one of ``hits``/``misses`` advances per call.
        """
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.inc("serve.cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.metrics is not None:
            self.metrics.inc("serve.cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> List[Tuple[Hashable, Any]]:
        """Insert/update ``key``; returns the ``(key, value)`` pairs evicted.

        An update refreshes recency without evicting. At most one entry is
        ever evicted per put (capacity is enforced after every insert).
        """
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return []
        self._entries[key] = value
        evicted: List[Tuple[Hashable, Any]] = []
        while len(self._entries) > self.capacity:
            evicted.append(self._entries.popitem(last=False))
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.inc("serve.cache.evictions")
        return evicted

    def invalidate_all(self) -> int:
        """Drop every entry; returns how many were dropped.

        The engine calls this when the store's generation changes (an
        ``append_to_store`` landed new sealed windows): every cached
        aggregation describes the previous generation and must never be
        served again. ``invalidations`` counts *entries dropped*, so a
        no-op flush of an empty cache is free and uncounted.
        """
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
            if self.metrics is not None:
                self.metrics.inc("serve.cache.invalidations", dropped)
        return dropped
