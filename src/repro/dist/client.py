"""The ``dispatch`` executor: fan shard tasks out across worker daemons.

:class:`DispatchExecutor` implements the
:class:`~repro.pipeline.parallel.ShardExecutor` contract over a fleet of
:class:`~repro.dist.daemon.WorkerDaemon`s. The shape mirrors the
one-daemon-per-worker fan-out in SNIPPETS.md §3: the client health-checks
every address up front (``MSG_PING``), keeps one connection per live
worker, and runs one puller thread per connection that draws tasks from a
shared queue — so a slow worker simply pulls less, and shard→worker
assignment never needs to be decided up front.

Failure semantics, all through the standard
:func:`~repro.pipeline.parallel._on_shard_failure` policy so accounting
is byte-identical to the local backends:

- **remote shard failure** (``MSG_FAILURE``): the worker is healthy, the
  shard raised. Counts one attempt; the task is requeued (any worker may
  retry it) or quarantined when spent.
- **worker death** (connection error, EOF mid-frame, protocol violation,
  or an injected ``drop_connection``): the in-flight task counts one
  attempt and is *reassigned* — requeued for the surviving workers — and
  the dead worker's puller thread exits. ``dist.tasks.reassigned`` and
  ``dist.workers.lost`` record the event.
- **no survivors**: tasks still queued when every worker is gone are
  quarantined into the ledger (or raise :class:`ShardError` under
  ``strict``) with a :class:`DispatchError` cause naming the situation.

``dist.*`` counters are execution facts (like ``fault.*`` and
``stage.*``): they land in the *active* registry and the manifest's
``dist`` section, never in the dataset's data counters — so the
serial-equality invariant is untouched by how the run was dispatched.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.dist import protocol
from repro.dist.serialization import (
    decode_failure,
    decode_result,
    encode_task,
)
from repro.obs import active_metrics
from repro.pipeline.parallel import (
    DegradedLedger,
    ParallelOptions,
    ShardError,
    ShardExecutor,
    ShardResult,
    _on_shard_failure,
    _ShardTask,
)

__all__ = ["DispatchError", "DispatchExecutor", "parse_addr", "request_shutdown"]

_LOG = logging.getLogger("repro.dist.client")

#: Connect + health-check budget per worker. Short: an unreachable daemon
#: should cost seconds at startup, not a hung run.
_CONNECT_TIMEOUT_SECONDS = 5.0
#: Per-reply budget once a task is in flight. Generous — shards can be
#: large — but bounded, so a wedged worker becomes a reassignment, not a
#: hung run.
_REPLY_TIMEOUT_SECONDS = 600.0


class DispatchError(RuntimeError):
    """The dispatch fleet cannot run the plan (no reachable workers)."""


def parse_addr(addr: str) -> Tuple[str, int]:
    """Split ``host:port``; raises ``ValueError`` on malformed input."""
    host, sep, port_text = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address {addr!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"worker address {addr!r} has a non-numeric port")
    if not 0 < port < 65536:
        raise ValueError(f"worker address {addr!r} port out of range")
    return host, port


def request_shutdown(addr: str, timeout: float = _CONNECT_TIMEOUT_SECONDS) -> bool:
    """Ask the daemon at ``addr`` to stop; True when it acknowledged."""
    try:
        with socket.create_connection(parse_addr(addr), timeout=timeout) as sock:
            protocol.send_frame(sock, protocol.MSG_SHUTDOWN)
            frame = protocol.recv_frame(sock, allow_eof=True)
        return frame is not None and frame[0] == protocol.MSG_PONG
    except (OSError, protocol.ProtocolError):
        return False


class _WorkerLink:
    """One live connection to a worker daemon."""

    def __init__(self, addr: str, timeout: float = _CONNECT_TIMEOUT_SECONDS):
        self.addr = addr
        self.sock = socket.create_connection(parse_addr(addr), timeout=timeout)
        self.sock.settimeout(_REPLY_TIMEOUT_SECONDS)

    def ping(self) -> None:
        """Health check; raises on anything but a prompt PONG."""
        protocol.send_frame(self.sock, protocol.MSG_PING)
        frame = protocol.recv_frame(self.sock)
        if frame is None or frame[0] != protocol.MSG_PONG:
            raise protocol.ProtocolError(
                f"worker {self.addr} answered health check with "
                f"{frame[0] if frame else 'EOF'}"
            )

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class DispatchExecutor(ShardExecutor):
    """Fan shard tasks across worker daemons (see module docstring)."""

    def __init__(self, options: ParallelOptions) -> None:
        super().__init__(options)
        self._lock = threading.Lock()
        # Signals queue/outstanding changes to idle puller threads: a
        # worker with nothing queued must keep waiting while tasks are in
        # flight elsewhere — a dying peer may requeue its task any moment.
        self._cond = threading.Condition(self._lock)
        #: Tasks not yet resolved (completed, quarantined, or fatal).
        self._outstanding = 0
        self._links: List[_WorkerLink] = []

    # ----------------------------------------------------------------- #
    # ShardExecutor contract
    # ----------------------------------------------------------------- #
    def run(
        self, tasks: Sequence[_ShardTask], ledger: DegradedLedger
    ) -> List[ShardResult]:
        queue: Deque[Tuple[_ShardTask, int]] = deque(
            (task, 1) for task in tasks
        )
        results: List[ShardResult] = []
        fatal: List[ShardError] = []
        stop = threading.Event()
        self._outstanding = len(queue)
        links = self._connect()
        threads = [
            threading.Thread(
                target=self._pull_loop,
                args=(link, queue, results, ledger, fatal, stop),
                name=f"repro-dispatch-{link.addr}",
                daemon=True,
            )
            for link in links
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]
        self._drain_leftovers(queue, ledger)
        results.sort(key=lambda result: result.ordinal)
        return results

    def close(self) -> None:
        with self._lock:
            links, self._links = self._links, []
        for link in links:
            link.close()

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #
    def _connect(self) -> List[_WorkerLink]:
        """Health-check every address; returns the live links.

        Unreachable daemons are logged and skipped — the plan runs on the
        survivors. Zero survivors is a :class:`DispatchError`: there is
        no backend to degrade onto.
        """
        links: List[_WorkerLink] = []
        for addr in self.options.worker_addrs:
            try:
                link = _WorkerLink(addr)
                link.ping()
            except (OSError, protocol.ProtocolError, ValueError) as error:
                if isinstance(error, ValueError):
                    raise  # malformed address: a config bug, not a dead host
                self._count("dist.workers.unreachable")
                _LOG.warning("worker %s failed health check: %s", addr, error)
                continue
            links.append(link)
            self._count("dist.workers.connected")
        if not links:
            raise DispatchError(
                "no dispatch workers reachable among "
                f"{', '.join(self.options.worker_addrs)}"
            )
        with self._lock:
            self._links.extend(links)
        return links

    def _pull_loop(
        self,
        link: _WorkerLink,
        queue: Deque[Tuple[_ShardTask, int]],
        results: List[ShardResult],
        ledger: DegradedLedger,
        fatal: List[ShardError],
        stop: threading.Event,
    ) -> None:
        while not stop.is_set():
            with self._cond:
                # An empty queue is not "done": a task in flight on a
                # dying peer may be requeued for reassignment. Exit only
                # when every task is resolved (or on fatal stop).
                while (
                    not queue
                    and self._outstanding > 0
                    and not stop.is_set()
                ):
                    self._cond.wait(timeout=0.05)
                if stop.is_set() or not queue:
                    return
                task, attempt = queue.popleft()
            try:
                faultinject.check_connection(link.addr)
                sent = protocol.send_frame(
                    link.sock, protocol.MSG_TASK, encode_task(task)
                )
                self._count("dist.tasks.dispatched")
                self._count("dist.bytes.sent", sent)
                frame = protocol.recv_frame(link.sock)
                msg_type, payload = frame
                self._count(
                    "dist.bytes.received", protocol.HEADER_BYTES + len(payload)
                )
            except (OSError, protocol.ProtocolError) as error:
                # Worker death: reassign the in-flight task, retire the
                # link. socket.timeout is an OSError, so a wedged worker
                # lands here too.
                self._count("dist.workers.lost")
                _LOG.warning(
                    "worker %s lost with shard %d in flight: %s",
                    link.addr,
                    task.ordinal,
                    error,
                )
                self._handle_failure(
                    task, attempt, error, queue, ledger, fatal, stop,
                    reassigned=True,
                )
                link.close()
                return
            if msg_type == protocol.MSG_RESULT:
                result = decode_result(payload)
                with self._cond:
                    results.append(result)
                    self._outstanding -= 1
                    self._cond.notify_all()
                self._count("dist.tasks.completed")
                continue
            if msg_type == protocol.MSG_FAILURE:
                failure = decode_failure(payload)
                self._count("dist.remote_failures")
                self._handle_failure(
                    task, attempt, failure, queue, ledger, fatal, stop,
                    reassigned=False,
                )
                continue
            # An unexpected reply type is a protocol violation: treat the
            # worker as dead and reassign.
            self._count("dist.workers.lost")
            self._handle_failure(
                task,
                attempt,
                protocol.ProtocolError(
                    f"worker {link.addr} sent unexpected reply type {msg_type}"
                ),
                queue,
                ledger,
                fatal,
                stop,
                reassigned=True,
            )
            link.close()
            return

    def _handle_failure(
        self,
        task: _ShardTask,
        attempt: int,
        error: BaseException,
        queue: Deque[Tuple[_ShardTask, int]],
        ledger: DegradedLedger,
        fatal: List[ShardError],
        stop: threading.Event,
        reassigned: bool,
    ) -> None:
        """Route one failed attempt through the standard policy."""
        with self._cond:
            try:
                delay = _on_shard_failure(
                    task, attempt, error, self.options, ledger
                )
            except ShardError as exc:
                fatal.append(exc)
                stop.set()
                self._cond.notify_all()
                return
            if delay is None:  # quarantined: the task is resolved
                self._outstanding -= 1
                self._cond.notify_all()
                return
        if delay > 0:
            time.sleep(delay)
        with self._cond:
            queue.append((task, attempt + 1))
            self._cond.notify_all()
        if reassigned:
            self._count("dist.tasks.reassigned")

    def _drain_leftovers(
        self, queue: Deque[Tuple[_ShardTask, int]], ledger: DegradedLedger
    ) -> None:
        """Account tasks stranded by the death of every worker."""
        while queue:
            task, attempt = queue.popleft()
            error = DispatchError(
                "no surviving dispatch workers to run this shard"
            )
            if self.options.strict:
                raise ShardError(task.ordinal, error, attempt)
            ledger.quarantine(task, error, attempt)
            self._count("dist.tasks.stranded")
            _LOG.warning(
                "shard %d stranded: every dispatch worker is gone",
                task.ordinal,
            )

    def _count(self, name: str, value: int = 1) -> None:
        registry = active_metrics()
        if registry is not None:
            with self._lock:
                registry.inc(name, value)
