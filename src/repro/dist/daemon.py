"""The ``repro worker`` daemon: executes shard tasks for remote clients.

One daemon per worker host (or several per host, one per core — the
fan-out shape SNIPPETS.md §3 uses for its per-worker router daemons).
The daemon is deliberately thin: it accepts connections, and for every
``MSG_TASK`` frame runs :func:`repro.pipeline.parallel._run_shard` —
the *same* function the process/thread pools execute — and replies
``MSG_RESULT`` or ``MSG_FAILURE``. All retry, quarantine, and merge
policy stays client-side, so dispatch runs account failures exactly
like every other backend.

Failure semantics (DESIGN.md §13):

- a shard that raises inside ``_run_shard`` produces a ``MSG_FAILURE``
  reply (JSON-stringified); the daemon stays up — shard bugs are the
  client's retry problem, not a reason to lose the worker;
- a :class:`~repro.faultinject.WorkerKilled` injection (and only that)
  makes the daemon drop the connection without replying and stop —
  from the client's side, indistinguishable from the worker host dying
  mid-task, which is exactly what it rehearses.

``start()`` runs the accept loop on a background thread, so tests embed
daemons in-process (``port=0`` picks a free port); ``serve_forever()``
is the CLI entry point. ``max_tasks`` lets a scripted run bound the
daemon's lifetime deterministically.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import List, Optional

from repro import faultinject
from repro.dist import protocol
from repro.dist.serialization import encode_failure, encode_result, decode_task
from repro.obs import active_metrics
from repro.pipeline.parallel import _run_shard

__all__ = ["WorkerDaemon"]

_LOG = logging.getLogger("repro.dist.daemon")

#: Listener accept timeout: how often the accept loop rechecks shutdown.
_ACCEPT_POLL_SECONDS = 0.1
#: Per-connection receive timeout. Generous — a slow client keeping a
#: connection open is normal; only a wedged peer should trip this.
_CONN_TIMEOUT_SECONDS = 600.0


def _count(name: str, value: int = 1) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.inc(name, value)


class WorkerDaemon:
    """A socket server executing shard tasks (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_tasks: Optional[int] = None,
    ) -> None:
        if max_tasks is not None and max_tasks < 1:
            raise ValueError("max_tasks must be >= 1 when given")
        self.host = host
        self.requested_port = port
        self.max_tasks = max_tasks
        self.tasks_served = 0
        self._bound_port: Optional[int] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick).

        Cached at bind time, so the address stays printable after
        shutdown closes the listener.
        """
        if self._bound_port is None:
            raise RuntimeError("daemon is not started")
        return self._bound_port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "WorkerDaemon":
        """Bind, listen, and serve on a background thread; returns self."""
        if self._listener is not None:
            raise RuntimeError("daemon already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.requested_port))
        listener.listen(16)
        listener.settimeout(_ACCEPT_POLL_SECONDS)
        self._listener = listener
        self._bound_port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept", daemon=True
        )
        self._accept_thread.start()
        _LOG.info("worker daemon listening on %s", self.address)
        return self

    def serve_forever(self) -> None:
        """Run until shutdown (CLI entry point; blocks)."""
        if self._listener is None:
            self.start()
        try:
            while not self._stop.wait(timeout=_ACCEPT_POLL_SECONDS):
                pass
        except KeyboardInterrupt:
            _LOG.info("worker daemon interrupted; shutting down")
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, wait for connection threads, close the socket."""
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=5.0)
        if self._listener is not None:
            self._listener.close()

    def __enter__(self) -> "WorkerDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ----------------------------------------------------------------- #
    # Serving
    # ----------------------------------------------------------------- #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"repro-worker-conn-{peer[1]}",
                daemon=True,
            )
            with self._lock:
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        conn.settimeout(_CONN_TIMEOUT_SECONDS)
        try:
            with conn:
                while not self._stop.is_set():
                    frame = protocol.recv_frame(conn, allow_eof=True)
                    if frame is None:
                        break
                    msg_type, payload = frame
                    if msg_type == protocol.MSG_PING:
                        protocol.send_frame(conn, protocol.MSG_PONG)
                        continue
                    if msg_type == protocol.MSG_SHUTDOWN:
                        protocol.send_frame(conn, protocol.MSG_PONG)
                        self._stop.set()
                        break
                    if msg_type != protocol.MSG_TASK:
                        raise protocol.ProtocolError(
                            f"unexpected message type {msg_type} from client"
                        )
                    if not self._serve_task(conn, payload):
                        break
        except faultinject.WorkerKilled as fault:
            # The injected death: sever the connection with no reply and
            # take the whole daemon down, like the host vanishing.
            _LOG.warning("worker daemon dying: %s", fault)
            self._stop.set()
        except protocol.ProtocolError as error:
            _LOG.warning("dropping connection from %s: %s", peer, error)
        except OSError as error:
            _LOG.warning("connection from %s failed: %s", peer, error)
        finally:
            with self._lock:
                self._conn_threads = [
                    t
                    for t in self._conn_threads
                    if t is not threading.current_thread()
                ]

    def _serve_task(self, conn: socket.socket, payload: bytes) -> bool:
        """Run one task and reply; False when the task budget is spent."""
        task = decode_task(payload)
        # May raise WorkerKilled, which _serve_connection turns into death.
        faultinject.check_worker(task.ordinal)
        # Counted before the reply goes out, so a client that just
        # received its result observes the updated count.
        self.tasks_served += 1
        try:
            result = _run_shard(task)
        except Exception as error:  # noqa: BLE001 — every failure must reply
            _count("dist.worker.failures_reported")
            _LOG.warning(
                "shard %d failed on worker: %s: %s",
                task.ordinal,
                type(error).__name__,
                error,
            )
            protocol.send_frame(
                conn, protocol.MSG_FAILURE, encode_failure(error)
            )
        else:
            _count("dist.worker.tasks_served")
            protocol.send_frame(
                conn, protocol.MSG_RESULT, encode_result(result)
            )
        if self.max_tasks is not None and self.tasks_served >= self.max_tasks:
            _LOG.info(
                "worker daemon served %d task(s); stopping", self.tasks_served
            )
            self._stop.set()
            return False
        return True
