"""Transport encoding for shard tasks, results, and failures.

Tasks and results ride as pickles: they are the exact dataclasses the
``process`` executor already pickles to its children, so the dispatch
wire inherits the same (trusted-cluster) serialization contract rather
than inventing a second one. Decoders type-check what they load — a
frame that unpickles to the wrong type is a protocol violation, not a
latent ``AttributeError`` three stack frames later.

Failures are JSON, never pickle. A worker's exception can hold anything
(third-party types, open sockets); stringifying to ``{"type", "message"}``
at the worker guarantees the failure reply itself cannot fail to decode.
The client rehydrates it as :class:`RemoteShardFailure`, which feeds the
standard retry/quarantine path like any local exception.

Security note: pickle is code execution, so this wire trusts its peers
by construction — same trust model as a process pool on one host,
documented in DESIGN.md §13. Bind daemons to loopback or a private
network, never the open internet.
"""

from __future__ import annotations

import json
import pickle

from repro.pipeline.parallel import ShardResult, _ShardTask

__all__ = [
    "RemoteShardFailure",
    "decode_failure",
    "decode_result",
    "decode_task",
    "encode_failure",
    "encode_result",
    "encode_task",
]

#: Protocol 4: the floor for efficient large-bytes framing, available on
#: every Python this repo supports (3.8+), and stable across minor bumps
#: so mixed-version client/daemon pairs interoperate.
_PICKLE_PROTOCOL = 4


class RemoteShardFailure(RuntimeError):
    """A worker daemon reported a shard failure (already stringified).

    ``type_name`` names the original exception class on the worker;
    ``str()`` is its message — so ledger entries read
    ``RemoteShardFailure: <original message>`` with the original type
    preserved in the entry via :func:`format` below.
    """

    def __init__(self, type_name: str, message: str) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.message = message

    def __reduce__(self):
        return (type(self), (self.type_name, self.message))


def encode_task(task: _ShardTask) -> bytes:
    return pickle.dumps(task, protocol=_PICKLE_PROTOCOL)


def decode_task(payload: bytes) -> _ShardTask:
    task = pickle.loads(payload)
    if not isinstance(task, _ShardTask):
        raise TypeError(
            f"task frame decoded to {type(task).__name__}, not a shard task"
        )
    return task


def encode_result(result: ShardResult) -> bytes:
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


def decode_result(payload: bytes) -> ShardResult:
    result = pickle.loads(payload)
    if not isinstance(result, ShardResult):
        raise TypeError(
            f"result frame decoded to {type(result).__name__}, "
            "not a shard result"
        )
    return result


def encode_failure(error: BaseException) -> bytes:
    return json.dumps(
        {"type": type(error).__name__, "message": str(error)}
    ).encode("utf-8")


def decode_failure(payload: bytes) -> RemoteShardFailure:
    try:
        fields = json.loads(payload.decode("utf-8"))
        return RemoteShardFailure(
            str(fields["type"]), str(fields["message"])
        )
    except Exception:  # noqa: BLE001 — even a mangled failure must decode
        return RemoteShardFailure(
            "UnknownRemoteError", payload.decode("utf-8", "replace")
        )
