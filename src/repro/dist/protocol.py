"""Length-prefixed socket framing for the dispatch wire (DESIGN.md §13).

Every message on a worker connection is one *frame*:

``
+------+------+----------+-----------------+
| RDW1 | type | length   | payload         |
| 4 B  | 1 B  | 4 B (BE) | ``length`` bytes|
+------+------+----------+-----------------+
``

The magic makes a stray client (or a version-skewed peer) fail loudly at
the first frame instead of desynchronizing mid-stream; the length prefix
makes message boundaries explicit so a reader never guesses. Frames are
capped at :data:`MAX_FRAME_BYTES` — a corrupt length field must not turn
into a multi-gigabyte allocation.

Message types:

- ``MSG_PING`` / ``MSG_PONG`` — health check; empty payloads.
- ``MSG_TASK`` — a pickled shard task (client → worker).
- ``MSG_RESULT`` — a pickled shard result (worker → client).
- ``MSG_FAILURE`` — a JSON-encoded worker exception (worker → client).
  JSON, not pickle: a failure reply must never itself fail to decode.
- ``MSG_SHUTDOWN`` — ask the daemon to stop after this connection.

Transport errors surface as :class:`ProtocolError`, a ``ConnectionError``
subclass — the dispatch client treats a malformed peer exactly like a
dead one (the task is reassigned), because from the plan's point of view
they are the same event: this worker cannot be trusted with shards.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "HEADER_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MSG_FAILURE",
    "MSG_PING",
    "MSG_PONG",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_TASK",
    "ProtocolError",
    "recv_frame",
    "send_frame",
]

MAGIC = b"RDW1"
_HEADER = struct.Struct(">4sBI")
#: Wire size of one frame header (magic + type + length).
HEADER_BYTES = _HEADER.size

MSG_PING = 1
MSG_PONG = 2
MSG_TASK = 3
MSG_RESULT = 4
MSG_FAILURE = 5
MSG_SHUTDOWN = 6

_KNOWN_TYPES = frozenset(
    (MSG_PING, MSG_PONG, MSG_TASK, MSG_RESULT, MSG_FAILURE, MSG_SHUTDOWN)
)

#: Hard ceiling on one frame's payload. Shard results scale with rows per
#: shard, which the planner bounds well below this; anything larger is a
#: corrupt or hostile length field.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """The peer broke the framing contract (bad magic, type, or length)."""


def send_frame(sock: socket.socket, msg_type: int, payload: bytes = b"") -> int:
    """Send one frame; returns the bytes put on the wire."""
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"refusing to send unknown message type {msg_type}")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    header = _HEADER.pack(MAGIC, msg_type, len(payload))
    sock.sendall(header + payload)
    return len(header) + len(payload)


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary.

    EOF *inside* a frame is never clean — that's a peer dying mid-send,
    reported as :class:`ProtocolError` regardless of ``allow_eof``.
    """
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if allow_eof and received == 0:
                return None
            raise ProtocolError(
                f"peer closed mid-frame ({received}/{count} bytes read)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, allow_eof: bool = False
) -> Optional[Tuple[int, bytes]]:
    """Read one ``(msg_type, payload)`` frame.

    With ``allow_eof`` a clean close *between* frames returns ``None``
    (how a daemon notices a client is done); any other truncation or
    malformation raises :class:`ProtocolError`.
    """
    header = _recv_exact(sock, _HEADER.size, allow_eof)
    if header is None:
        return None
    magic, msg_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length, allow_eof=False) if length else b""
    return msg_type, payload or b""
