"""Distributed shard execution over worker daemons (DESIGN.md §13).

The paper's setting — measurement over millions of sessions from every
edge load balancer — outgrows a single host's pools. This package adds
the multi-node rung of the executor ladder without touching the math:

- :mod:`repro.dist.protocol` — a length-prefixed socket framing layer
  (magic + message type + payload length) with hard frame-size limits.
- :mod:`repro.dist.serialization` — shard task/result transport encoding
  (pickle for the picklable dataclasses the pool executors already rely
  on; JSON for failures, so a worker's error can never poison the wire).
- :mod:`repro.dist.daemon` — :class:`WorkerDaemon`, the ``repro worker``
  process: accepts connections, executes :func:`repro.pipeline.parallel.
  _run_shard` per task, replies result-or-failure.
- :mod:`repro.dist.client` — :class:`DispatchExecutor`, the ``dispatch``
  backend of :func:`repro.pipeline.parallel.executor_for`: health-checks
  the daemons, fans the shard plan across them, and reassigns the tasks
  of dead workers to survivors through the standard retry/quarantine
  policy.

The acceptance bar is the same one every executor honors: datasets,
data counters, figures, and manifests byte-identical to the serial pass
(``tests/test_executor_contract.py``, ``tests/test_dist.py``).
"""

from repro.dist.client import DispatchError, DispatchExecutor
from repro.dist.daemon import WorkerDaemon
from repro.dist.protocol import ProtocolError
from repro.dist.serialization import RemoteShardFailure

__all__ = [
    "DispatchError",
    "DispatchExecutor",
    "ProtocolError",
    "RemoteShardFailure",
    "WorkerDaemon",
]
