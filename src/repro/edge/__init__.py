"""Synthetic Facebook-edge substrate.

Stands in for the production serving infrastructure of §2.1: geography and
PoPs (:mod:`repro.edge.geo`, :mod:`repro.edge.topology`), BGP route sets
(:mod:`repro.edge.bgp`), Facebook's routing policy and alternate-route
measurement (:mod:`repro.edge.routing`), Edge Fabric's capacity overrides
(:mod:`repro.edge.edge_fabric`), Cartographer user→PoP steering
(:mod:`repro.edge.cartographer`), and Proxygen session sampling
(:mod:`repro.edge.proxygen`).
"""

from repro.edge.bgp import BgpRoute, PathCondition, RouteGenerator
from repro.edge.cartographer import Cartographer
from repro.edge.detour import (
    CongestibleRoute,
    ControlTrace,
    GradualController,
    GreedyShifter,
    simulate_control_loop,
)
from repro.edge.edge_fabric import EdgeFabric, InterfaceLoad
from repro.edge.geo import Continent, Location, great_circle_km, propagation_rtt_ms
from repro.edge.lpm import Ipv4Prefix, PrefixTrie, parse_ipv4
from repro.edge.proxygen import LoadBalancer, SamplingDecision
from repro.edge.routing import MeasurementRouter, RankedRoutes, rank_routes
from repro.edge.topology import (
    DEFAULT_METROS,
    ClientNetwork,
    Metro,
    PoP,
    default_pops,
)

__all__ = [
    "BgpRoute",
    "Cartographer",
    "ClientNetwork",
    "CongestibleRoute",
    "ControlTrace",
    "GradualController",
    "GreedyShifter",
    "simulate_control_loop",
    "Continent",
    "DEFAULT_METROS",
    "EdgeFabric",
    "InterfaceLoad",
    "Ipv4Prefix",
    "LoadBalancer",
    "PrefixTrie",
    "parse_ipv4",
    "Location",
    "MeasurementRouter",
    "Metro",
    "PathCondition",
    "PoP",
    "RankedRoutes",
    "RouteGenerator",
    "SamplingDecision",
    "default_pops",
    "great_circle_km",
    "propagation_rtt_ms",
    "rank_routes",
]
