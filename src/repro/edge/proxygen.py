"""Proxygen-style load balancer sampling (§2.2.2).

The load balancer terminates client TCP connections and, for a configured
fraction of HTTP sessions, captures TCP state at prescribed points. On
session close it forwards the captured state to a side process that adds
the egress route annotation (prefix, AS path, relationship).

:class:`LoadBalancer` implements that sampling and annotation contract for
the synthetic edge: the caller presents each arriving session; the balancer
decides whether it is sampled, assigns the measurement route (preferred vs
alternates via :class:`~repro.edge.routing.MeasurementRouter`), and the
caller fills in the measured session before :meth:`finalize` attaches the
route annotation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.records import SessionSample
from repro.edge.bgp import BgpRoute
from repro.edge.routing import MeasurementRouter, RankedRoutes

__all__ = ["LoadBalancer", "SamplingDecision"]


@dataclass(frozen=True)
class SamplingDecision:
    """Outcome of admitting one session at the load balancer."""

    sampled: bool
    route: Optional[BgpRoute] = None
    preference_rank: int = 0


class LoadBalancer:
    """Per-PoP session sampler + route annotator."""

    def __init__(
        self,
        pop_name: str,
        rng: random.Random,
        sample_rate: float = 1.0,
        router: Optional[MeasurementRouter] = None,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.pop_name = pop_name
        self.rng = rng
        self.sample_rate = sample_rate
        self.router = router or MeasurementRouter(rng)
        self.sessions_seen = 0
        self.sessions_sampled = 0

    def admit(self, ranked: RankedRoutes) -> SamplingDecision:
        """Decide sampling + measurement route for one arriving session."""
        self.sessions_seen += 1
        if self.sample_rate < 1.0 and self.rng.random() >= self.sample_rate:
            return SamplingDecision(sampled=False)
        self.sessions_sampled += 1
        route, rank = self.router.assign(ranked)
        return SamplingDecision(sampled=True, route=route, preference_rank=rank)

    def finalize(
        self, sample: SessionSample, decision: SamplingDecision
    ) -> SessionSample:
        """Attach the egress-route annotation at session close (§2.2.2)."""
        if not decision.sampled or decision.route is None:
            raise ValueError("cannot finalize an unsampled session")
        sample.route = decision.route.to_route_info(decision.preference_rank)
        sample.pop = self.pop_name
        return sample

    @property
    def effective_sample_rate(self) -> float:
        if self.sessions_seen == 0:
            return 0.0
        return self.sessions_sampled / self.sessions_seen
