"""IPv4 longest-prefix-match routing table.

Tiebreak 1 of Facebook's routing policy (§6.1) is "prefer the longest
matching prefix": a PoP may learn both an aggregate (say a /16 from a
transit provider) and a more-specific (/20 announced by the destination
network over a peer link), and the more-specific always wins regardless of
the other tiebreakers. The synthetic edge exercises this with a binary
prefix trie, the textbook FIB structure.

Also provides the small amount of IPv4 arithmetic the generator needs
(CIDR parsing, membership, subnet enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["Ipv4Prefix", "PrefixTrie", "parse_ipv4"]

T = TypeVar("T")


def parse_ipv4(address: str) -> int:
    """Dotted-quad to 32-bit integer, with validation."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {address!r}")
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Ipv4Prefix:
    """A CIDR prefix with canonicalized (masked) network bits."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError("prefix length must be in [0, 32]")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Ipv4Prefix":
        """Parse ``"a.b.c.d/len"``."""
        try:
            address, length_text = text.split("/")
        except ValueError as error:
            raise ValueError(f"invalid prefix {text!r}") from error
        length = int(length_text)
        return cls(network=parse_ipv4(address), length=length)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        return 1 << (32 - self.length)

    def contains(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def contains_prefix(self, other: "Ipv4Prefix") -> bool:
        return other.length >= self.length and self.contains(other.network)

    def subnets(self, new_length: int) -> Iterator["Ipv4Prefix"]:
        """Enumerate the more-specifics of ``new_length`` inside this prefix."""
        if new_length < self.length or new_length > 32:
            raise ValueError("invalid subnet length")
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.size, step):
            yield Ipv4Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{_format_ipv4(self.network)}/{self.length}"


class _TrieNode(Generic[T]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[T]"]] = [None, None]
        self.value: Optional[T] = None
        self.has_value = False


class PrefixTrie(Generic[T]):
    """Binary trie keyed by IPv4 prefixes; lookup returns the longest match.

    >>> trie = PrefixTrie()
    >>> trie.insert(Ipv4Prefix.parse("10.0.0.0/8"), "aggregate")
    >>> trie.insert(Ipv4Prefix.parse("10.1.0.0/16"), "specific")
    >>> trie.lookup(parse_ipv4("10.1.2.3"))
    (Ipv4Prefix(network=167837696, length=16), 'specific')
    >>> trie.lookup(parse_ipv4("10.9.2.3"))[1]
    'aggregate'
    """

    def __init__(self) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, prefix: Ipv4Prefix, value: T) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[Tuple[Ipv4Prefix, T]]:
        """Longest-prefix match for ``address``; None if nothing matches."""
        node = self._root
        best: Optional[Tuple[int, T]] = None
        network = 0
        if node.has_value:
            best = (0, node.value)
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, value = best
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return Ipv4Prefix(address & mask, length), value

    def covering(self, address: int) -> List[Tuple[Ipv4Prefix, T]]:
        """All (prefix, value) entries whose prefix contains ``address``,
        shortest first — a single O(32) walk down the trie."""
        results: List[Tuple[Ipv4Prefix, T]] = []
        node = self._root
        if node.has_value:
            results.append((Ipv4Prefix(0, 0), node.value))
        network = 0
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
            if node.has_value:
                results.append((Ipv4Prefix(network, depth + 1), node.value))
        return results

    def lookup_exact(self, prefix: Ipv4Prefix) -> Optional[T]:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def items(self) -> Iterator[Tuple[Ipv4Prefix, T]]:
        """All (prefix, value) pairs in lexicographic bit order."""

        def walk(node: _TrieNode[T], network: int, depth: int):
            if node.has_value:
                yield Ipv4Prefix(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, network | (bit << (31 - depth)), depth + 1)

        yield from walk(self._root, 0, 0)
