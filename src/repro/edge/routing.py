"""Facebook's BGP routing policy and alternate-route selection (§6.1).

When a PoP has multiple routes to a user it applies, in order:

1. prefer the longest matching prefix;
2. prefer peer routes (private or public) over transit;
3. prefer shorter AS paths;
4. prefer routes via private interconnects (PNI) over public exchanges.

:func:`rank_routes` returns the full preference order; the preferred route
is rank 0 and the next ``n`` become the continuously-measured alternates
(§2.2.3 / §6.2: "by default ... the two next best paths").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.constants import (
    DEFAULT_ALTERNATE_ROUTES,
    PREFERRED_ROUTE_SAMPLE_FRACTION,
)
from repro.core.records import Relationship
from repro.edge.bgp import BgpRoute
from repro.edge.lpm import Ipv4Prefix, PrefixTrie, parse_ipv4

__all__ = ["RankedRoutes", "RoutingTable", "rank_routes", "MeasurementRouter"]


def _policy_key(route: BgpRoute) -> Tuple:
    """Sort key implementing the four tiebreakers (ascending = preferred)."""
    return (
        -route.prefix_length,                          # 1. longest prefix
        0 if route.is_peer else 1,                     # 2. peer over transit
        route.as_path_length,                          # 3. shorter AS path
        0 if route.relationship is Relationship.PRIVATE else 1,  # 4. PNI
    )


@dataclass(frozen=True)
class RankedRoutes:
    """Routes in policy-preference order."""

    routes: Tuple[BgpRoute, ...]

    @property
    def preferred(self) -> BgpRoute:
        return self.routes[0]

    def alternates(self, count: int = DEFAULT_ALTERNATE_ROUTES) -> Tuple[BgpRoute, ...]:
        return self.routes[1 : 1 + count]

    @property
    def has_alternates(self) -> bool:
        return len(self.routes) > 1

    def rank_of(self, route: BgpRoute) -> int:
        return self.routes.index(route)


def rank_routes(routes: Sequence[BgpRoute]) -> RankedRoutes:
    """Apply the policy tiebreak; stable for equal keys (announcement order)."""
    if not routes:
        raise ValueError("cannot rank an empty route set")
    ordered = tuple(sorted(routes, key=_policy_key))
    return RankedRoutes(routes=ordered)


class RoutingTable:
    """A PoP's FIB: route announcements resolved per destination address.

    Announcements may cover each other (a transit aggregate /16 and a
    peer-announced more-specific /20); resolution collects every
    announcement whose prefix contains the destination, then applies the
    policy tiebreak — whose first rule, longest matching prefix, now does
    real work. Built on the binary LPM trie in :mod:`repro.edge.lpm`.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie = PrefixTrie()

    def announce(self, route: BgpRoute) -> None:
        """Add one announcement (appends to the prefix's route list)."""
        prefix = Ipv4Prefix.parse(route.prefix)
        if prefix.length != route.prefix_length:
            raise ValueError(
                f"route prefix_length {route.prefix_length} disagrees with "
                f"{route.prefix}"
            )
        existing = self._trie.lookup_exact(prefix)
        if existing is None:
            self._trie.insert(prefix, [route])
        else:
            existing.append(route)

    def announce_all(self, routes: Sequence[BgpRoute]) -> None:
        for route in routes:
            self.announce(route)

    def resolve(self, address: str) -> Optional[RankedRoutes]:
        """All usable routes for a destination IP, in policy order.

        Collects the routes of *every* covering prefix (aggregates and
        more-specifics alike): alternate-route measurement needs the
        covering routes too, even though the most-specific one wins the
        policy tiebreak.
        """
        value = parse_ipv4(address)
        candidates: List[BgpRoute] = []
        for _, routes in self._trie.covering(value):
            candidates.extend(routes)
        if not candidates:
            return None
        return rank_routes(candidates)

    @property
    def prefix_count(self) -> int:
        return len(self._trie)


class MeasurementRouter:
    """Assigns sampled sessions to routes for alternate-path measurement.

    §6.2: approximately 47% of sampled sessions stay on the policy-preferred
    route; the remainder are spread over the next-best alternates so their
    performance is continuously measured. These assignments *override* any
    Edge Fabric detours (§2.2.3) so the analysis always sees the policy
    view, not capacity-management artifacts.
    """

    def __init__(
        self,
        rng: random.Random,
        preferred_fraction: float = PREFERRED_ROUTE_SAMPLE_FRACTION,
        alternate_count: int = DEFAULT_ALTERNATE_ROUTES,
    ) -> None:
        if not 0.0 < preferred_fraction <= 1.0:
            raise ValueError("preferred_fraction must be in (0, 1]")
        self.rng = rng
        self.preferred_fraction = preferred_fraction
        self.alternate_count = alternate_count

    def assign(self, ranked: RankedRoutes) -> Tuple[BgpRoute, int]:
        """Pick the measurement route for one sampled session.

        Returns ``(route, preference_rank)``.
        """
        alternates = ranked.alternates(self.alternate_count)
        if not alternates or self.rng.random() < self.preferred_fraction:
            return ranked.preferred, 0
        index = self.rng.randrange(len(alternates))
        return alternates[index], index + 1
