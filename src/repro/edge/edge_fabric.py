"""Edge Fabric: capacity-aware egress control (§2.2.3, citing [55]).

Edge Fabric shifts traffic off an interconnect when it risks congestion. For
this reproduction it matters for one reason: the measurement design must be
*immune* to it. Sampled sessions override Edge Fabric's detours so that the
analysis always compares the policy-preferred route and its alternates, not
whatever mix capacity management produced (§2.2.3).

The controller here implements the essential behaviour: per-(prefix, route)
demand accounting within a control interval, detouring the most-preferred
overloaded route's *new* flows onto the best alternate with headroom, and an
explicit carve-out for measurement traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.edge.bgp import BgpRoute
from repro.edge.routing import RankedRoutes

__all__ = ["EdgeFabric", "InterfaceLoad"]


@dataclass
class InterfaceLoad:
    """Demand vs capacity for one egress route within a control interval."""

    capacity_units: float
    demand_units: float = 0.0

    @property
    def utilization(self) -> float:
        if self.capacity_units <= 0:
            return float("inf")
        return self.demand_units / self.capacity_units


class EdgeFabric:
    """Capacity-aware egress controller.

    ``detour_threshold`` is the utilization above which new traffic is
    shifted (Facebook drains interfaces *before* they saturate).
    """

    def __init__(self, detour_threshold: float = 0.95) -> None:
        if detour_threshold <= 0:
            raise ValueError("detour_threshold must be positive")
        self.detour_threshold = detour_threshold
        self._loads: Dict[Tuple[str, int], InterfaceLoad] = {}
        self.detours = 0
        self.overrides = 0

    def _load_for(self, route: BgpRoute, rank: int) -> InterfaceLoad:
        key = (route.prefix, rank)
        load = self._loads.get(key)
        if load is None:
            load = InterfaceLoad(capacity_units=route.condition.congestion_capacity)
            self._loads[key] = load
        return load

    def reset_interval(self) -> None:
        """Start a new control interval (demand counters reset)."""
        for load in self._loads.values():
            load.demand_units = 0.0

    def route_for_flow(
        self,
        ranked: RankedRoutes,
        demand_units: float,
        is_measurement: bool = False,
        measurement_route: Optional[BgpRoute] = None,
        measurement_rank: int = 0,
    ) -> Tuple[BgpRoute, int]:
        """Place one flow.

        Measurement flows go exactly where the measurement router assigned
        them, regardless of load (the §2.2.3 override); production flows go
        to the most-preferred route under the detour threshold.
        """
        if is_measurement:
            if measurement_route is None:
                raise ValueError("measurement flows must carry their route")
            self.overrides += 1
            self._load_for(measurement_route, measurement_rank).demand_units += (
                demand_units
            )
            return measurement_route, measurement_rank

        for rank, route in enumerate(ranked.routes):
            load = self._load_for(route, rank)
            if load.utilization < self.detour_threshold:
                if rank > 0:
                    self.detours += 1
                load.demand_units += demand_units
                return route, rank
        # Everything saturated: stick with the preferred route (congestion
        # will show up in performance, as it should).
        load = self._load_for(ranked.preferred, 0)
        load.demand_units += demand_units
        return ranked.preferred, 0

    def utilization(self, route: BgpRoute, rank: int) -> float:
        return self._load_for(route, rank).utilization
