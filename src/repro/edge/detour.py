"""Performance-aware detour control — the §6.2.2 feasibility study.

The paper stops short of *acting* on routing opportunity, warning that "a
traffic engineering system that simply shifts traffic onto the best
performing alternate route may cause congestion and risk oscillations. An
active traffic engineering system would need to gradually shift traffic
onto the alternate route, continuously monitor its performance, and
guarantee convergence to a stable state."

This module turns that paragraph into code:

- :class:`GreedyShifter` — the strawman: moves *all* traffic to whichever
  route currently measures better;
- :class:`GradualController` — the paper's prescription: CI-gated decisions
  (only act when the alternate is confidently better), bounded step sizes,
  multiplicative backoff when the alternate degrades under the shifted
  load, and a hysteresis cooldown that prevents flapping;
- :class:`CongestibleRoute` / :func:`simulate_control_loop` — a closed-loop
  plant: the alternate route's latency rises once shifted demand approaches
  its capacity, which is exactly the feedback that makes the greedy policy
  oscillate.

The ablation benchmark shows the greedy policy oscillating (repeated full
shifts back and forth) while the gradual controller converges to a stable
split that captures most of the latency win.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.stats.median_ci import MedianComparison, compare_medians

__all__ = [
    "CongestibleRoute",
    "ControlTrace",
    "GradualController",
    "GreedyShifter",
    "simulate_control_loop",
]


@dataclass
class CongestibleRoute:
    """A route whose latency degrades as carried demand nears capacity.

    ``base_rtt_ms`` is the uncongested latency; once utilization exceeds
    ``knee``, a standing queue grows steeply (an M/M/1-flavoured penalty,
    capped so the loop stays numerically tame).
    """

    base_rtt_ms: float
    capacity: float
    knee: float = 0.7
    max_penalty_ms: float = 80.0

    def rtt_at_load(self, demand: float) -> float:
        if self.capacity <= 0:
            return self.base_rtt_ms + self.max_penalty_ms
        utilization = demand / self.capacity
        if utilization <= self.knee:
            return self.base_rtt_ms
        over = min((utilization - self.knee) / (1.0 - self.knee), 0.999)
        penalty = min(self.max_penalty_ms, 10.0 * over / (1.0 - over))
        return self.base_rtt_ms + min(penalty, self.max_penalty_ms)


class GreedyShifter:
    """Strawman: put everything on whichever route measured better."""

    def __init__(self) -> None:
        self.split = 0.0  # fraction of demand on the alternate

    def update(self, comparison: MedianComparison) -> float:
        if comparison.valid and comparison.difference > 0:
            self.split = 1.0
        else:
            self.split = 0.0
        return self.split


class GradualController:
    """The paper-prescribed controller.

    ``comparison.difference`` is oriented as (preferred − alternate) MinRTT,
    positive = the alternate is faster. The controller:

    - only *increases* the split when the CI lower bound clears
      ``improve_threshold_ms`` (statistically confident win);
    - increases by at most ``step`` per interval (gradual shifting);
    - *decreases* multiplicatively as soon as the advantage disappears —
      including the self-inflicted case where the shifted load congested
      the alternate;
    - after any backoff, holds off further increases for ``cooldown``
      intervals (hysteresis against flapping).
    """

    def __init__(
        self,
        step: float = 0.10,
        backoff: float = 0.5,
        improve_threshold_ms: float = 3.0,
        cooldown: int = 3,
        max_split: float = 0.95,
        congestion_onset_ms: float = 2.0,
    ) -> None:
        if not 0 < step <= 1:
            raise ValueError("step must be in (0, 1]")
        if not 0 < backoff < 1:
            raise ValueError("backoff must be in (0, 1)")
        self.step = step
        self.backoff = backoff
        self.improve_threshold_ms = improve_threshold_ms
        self.cooldown = cooldown
        self.max_split = max_split
        self.congestion_onset_ms = congestion_onset_ms
        self.split = 0.0
        self._cooldown_remaining = 0
        self._alternate_floor = math.inf
        self._frozen = False
        self.increases = 0
        self.backoffs = 0
        self.onset_stops = 0

    def update(
        self,
        comparison: MedianComparison,
        alternate_median_ms: Optional[float] = None,
    ) -> float:
        """Apply one control interval.

        ``alternate_median_ms`` (when available) enables the congestion-
        onset guard: the controller remembers the best latency the
        alternate has shown and, as soon as the shifted load inflates it
        past ``congestion_onset_ms``, steps back once and freezes — a
        marginal-cost stop well before break-even, which is where the
        actual latency win lives.
        """
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            return self.split

        if alternate_median_ms is not None:
            self._alternate_floor = min(self._alternate_floor, alternate_median_ms)
            if (
                self.split > 0
                and alternate_median_ms
                > self._alternate_floor + self.congestion_onset_ms
            ):
                if not self._frozen:
                    # Our own load is congesting the alternate: retreat one
                    # step and hold there.
                    self.split = max(self.split - self.step, 0.0)
                    self._frozen = True
                    self.onset_stops += 1
                    self._cooldown_remaining = self.cooldown
                return self.split
            if self._frozen and alternate_median_ms <= (
                self._alternate_floor + self.congestion_onset_ms / 2.0
            ):
                # Alternate recovered at the reduced split: stay put (the
                # frozen split is the sustainable optimum) unless the
                # advantage later disappears entirely.
                pass

        if comparison.valid and comparison.difference <= 0 and self.split > 0:
            # The alternate is no longer better at all (external change or
            # severe congestion): back off multiplicatively and cool down.
            self.split *= self.backoff
            if self.split < 0.01:
                self.split = 0.0
            self._cooldown_remaining = self.cooldown
            self._frozen = False
            self._alternate_floor = math.inf
            self.backoffs += 1
            return self.split

        if not self._frozen and comparison.exceeds(self.improve_threshold_ms):
            if self.split < self.max_split:
                self.split = min(self.split + self.step, self.max_split)
                self.increases += 1
        return self.split


@dataclass
class ControlTrace:
    """Closed-loop telemetry for analysis and plotting."""

    splits: List[float] = field(default_factory=list)
    preferred_rtts: List[float] = field(default_factory=list)
    alternate_rtts: List[float] = field(default_factory=list)
    mean_rtts: List[float] = field(default_factory=list)

    @property
    def final_split(self) -> float:
        return self.splits[-1] if self.splits else 0.0

    def oscillations(self, threshold: float = 0.5) -> int:
        """Count split swings larger than ``threshold`` between intervals."""
        swings = 0
        for previous, current in zip(self.splits, self.splits[1:]):
            if abs(current - previous) >= threshold:
                swings += 1
        return swings

    def settled(self, tail: int = 10, tolerance: float = 0.05) -> bool:
        """True when the split stopped moving over the last ``tail`` steps."""
        if len(self.splits) < tail:
            return False
        window = self.splits[-tail:]
        return max(window) - min(window) <= tolerance


def simulate_control_loop(
    controller,
    preferred: CongestibleRoute,
    alternate: CongestibleRoute,
    demand: float = 10.0,
    intervals: int = 60,
    samples_per_interval: int = 60,
    noise_ms: float = 1.0,
    seed: int = 1,
) -> ControlTrace:
    """Run a controller against the congestible-route plant.

    Each interval: measure both routes under the current split (the
    preferred route carries ``(1 - split) * demand`` plus its own base load;
    the alternate carries ``split * demand``), hand the controller a proper
    distribution-free median comparison (exactly what the production
    pipeline produces), and apply its new split.
    """
    rng = random.Random(seed)
    trace = ControlTrace()
    split = getattr(controller, "split", 0.0)
    for _ in range(intervals):
        preferred_rtt = preferred.rtt_at_load((1.0 - split) * demand)
        alternate_rtt = alternate.rtt_at_load(split * demand)
        preferred_samples = [
            max(preferred_rtt + rng.gauss(0.0, noise_ms), 0.1)
            for _ in range(samples_per_interval)
        ]
        alternate_samples = [
            max(alternate_rtt + rng.gauss(0.0, noise_ms), 0.1)
            for _ in range(samples_per_interval)
        ]
        # Positive difference = alternate faster (preferred − alternate).
        comparison = compare_medians(
            preferred_samples, alternate_samples, max_ci_width=10.0
        )
        alternate_median = sorted(alternate_samples)[len(alternate_samples) // 2]
        try:
            split = controller.update(comparison, alternate_median)
        except TypeError:
            split = controller.update(comparison)
        trace.splits.append(split)
        trace.preferred_rtts.append(preferred_rtt)
        trace.alternate_rtts.append(alternate_rtt)
        trace.mean_rtts.append(
            (1.0 - split) * preferred_rtt + split * alternate_rtt
        )
    return trace
