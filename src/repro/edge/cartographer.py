"""Cartographer: steering users to PoPs (§2.1).

Facebook's Cartographer maps client networks to PoPs by controlling DNS and
embedded URLs, using performance measurements to pick the ingress location.
For the synthetic edge the dominant signal is geographic latency, so the
model steers each client network to its nearest PoP by propagation RTT —
with two paper-calibrated behaviours layered on top:

- **Remote steering** — a fraction of Africa/Asia traffic is served from
  European PoPs (the paper: 4.8% of all traffic is Asia-via-EU and 2.1%
  Africa-via-EU), reflecting missing local capacity;
- **Re-steering churn** — occasionally a network is temporarily remapped to
  its second-best PoP (maintenance, load), which is one source of the
  coverage gaps §3.4.2 has to tolerate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.edge.geo import Continent, propagation_rtt_ms
from repro.edge.topology import ClientNetwork, PoP

__all__ = ["Cartographer"]


class Cartographer:
    """Steers client networks to serving PoPs (nearest by propagation RTT,
    with remote-overflow and re-steering behaviours)."""
    def __init__(
        self,
        pops: Sequence[PoP],
        rng: random.Random,
        remote_steer_probability: float = 0.07,
        resteer_probability: float = 0.01,
    ) -> None:
        if not pops:
            raise ValueError("need at least one PoP")
        self.pops = list(pops)
        self.rng = rng
        self.remote_steer_probability = remote_steer_probability
        self.resteer_probability = resteer_probability
        self._cache: Dict[int, List[Tuple[float, PoP]]] = {}

    def _ranked_pops(self, network: ClientNetwork) -> List[Tuple[float, PoP]]:
        """PoPs sorted by propagation RTT from the network's metro."""
        cached = self._cache.get(network.asn)
        if cached is not None:
            return cached
        location = network.metro.location
        ranked = sorted(
            (
                (propagation_rtt_ms(location.distance_km(pop.location)), pop)
                for pop in self.pops
            ),
            key=lambda pair: pair[0],
        )
        self._cache[network.asn] = ranked
        return ranked

    def primary_pop(self, network: ClientNetwork) -> PoP:
        """The steady-state PoP for a client network."""
        ranked = self._ranked_pops(network)
        if network.continent in (Continent.AFRICA, Continent.ASIA):
            nearest = ranked[0][1]
            if nearest.continent is not network.continent:
                # No same-continent PoP close enough: served remotely
                # (typically from Europe) all the time.
                return nearest
        return ranked[0][1]

    def steer(self, network: ClientNetwork) -> Tuple[PoP, float]:
        """Pick the serving PoP for one session.

        Returns ``(pop, base_rtt_ms)`` where ``base_rtt_ms`` is the
        propagation RTT between the client metro and that PoP.
        """
        ranked = self._ranked_pops(network)
        index = 0
        if (
            network.continent in (Continent.AFRICA, Continent.ASIA)
            and self.rng.random() < self.remote_steer_probability
        ):
            # Overflow to the nearest out-of-continent PoP (usually EU).
            for position, (_, pop) in enumerate(ranked):
                if pop.continent is not network.continent:
                    index = position
                    break
        elif len(ranked) > 1 and self.rng.random() < self.resteer_probability:
            index = 1
        rtt, pop = ranked[index]
        return pop, rtt
