"""PoP catalogue and client-network universe.

Facebook's edge is "dozens of PoPs across six continents" (§2.1). The
catalogue here places a representative PoP set at real metro coordinates;
the density mirrors the paper's observation that infrastructure is denser in
Europe/North America than Africa/South America — which is what produces the
per-continent MinRTT spread of Figure 6(b).

Client networks are synthetic eyeball ASes: each owns one or more BGP
prefixes anchored at a metro location, with a user scale and an access-
network profile (assigned by the workload layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.edge.geo import Continent, Location

__all__ = ["PoP", "ClientNetwork", "default_pops", "Metro", "DEFAULT_METROS"]


@dataclass(frozen=True)
class PoP:
    """A point of presence: servers + interconnection at a metro."""

    name: str
    location: Location

    @property
    def continent(self) -> Continent:
        return self.location.continent


@dataclass(frozen=True)
class Metro:
    """A population centre clients can be anchored to."""

    name: str
    location: Location
    weight: float  # relative share of global users


@dataclass
class ClientNetwork:
    """An eyeball AS with its BGP prefixes.

    ``asn`` identifies the network; ``prefixes`` are the BGP aggregates the
    paper groups measurements by. ``metro`` anchors geolocation; a prefix
    may optionally span two metros (``secondary_metro``), reproducing the
    Figure-5 situation where one /16 serves geographically distant clients.
    """

    asn: int
    prefixes: List[str]
    metro: Metro
    user_weight: float = 1.0
    secondary_metro: Optional[Metro] = None
    secondary_share: float = 0.0
    is_hosting_provider: bool = False

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ValueError("client network needs at least one prefix")
        if not 0.0 <= self.secondary_share < 1.0:
            raise ValueError("secondary_share must be in [0, 1)")
        if self.secondary_share > 0 and self.secondary_metro is None:
            raise ValueError("secondary_share requires a secondary_metro")

    @property
    def country(self) -> str:
        return self.metro.location.country

    @property
    def continent(self) -> Continent:
        return self.metro.location.continent


def _loc(lat: float, lon: float, country: str, continent: Continent) -> Location:
    return Location(lat, lon, country, continent)


#: Representative PoP deployment (name, metro coordinates). Density follows
#: the real-world skew: many in EU/NA, fewer in AF/SA/OC.
def default_pops() -> List[PoP]:
    """The default PoP catalogue: 24 metros across six continents."""
    C = Continent
    return [
        # Europe
        PoP("ams1", _loc(52.37, 4.90, "NL", C.EUROPE)),
        PoP("fra1", _loc(50.11, 8.68, "DE", C.EUROPE)),
        PoP("lhr1", _loc(51.51, -0.13, "GB", C.EUROPE)),
        PoP("cdg1", _loc(48.86, 2.35, "FR", C.EUROPE)),
        PoP("mad1", _loc(40.42, -3.70, "ES", C.EUROPE)),
        PoP("sto1", _loc(59.33, 18.07, "SE", C.EUROPE)),
        PoP("mxp1", _loc(45.46, 9.19, "IT", C.EUROPE)),
        # North America
        PoP("iad1", _loc(38.90, -77.04, "US", C.NORTH_AMERICA)),
        PoP("ord1", _loc(41.88, -87.63, "US", C.NORTH_AMERICA)),
        PoP("sjc1", _loc(37.34, -121.89, "US", C.NORTH_AMERICA)),
        PoP("lax1", _loc(34.05, -118.24, "US", C.NORTH_AMERICA)),
        PoP("dfw1", _loc(32.78, -96.80, "US", C.NORTH_AMERICA)),
        PoP("mia1", _loc(25.76, -80.19, "US", C.NORTH_AMERICA)),
        PoP("yyz1", _loc(43.65, -79.38, "CA", C.NORTH_AMERICA)),
        # Asia
        PoP("sin1", _loc(1.35, 103.82, "SG", C.ASIA)),
        PoP("hkg1", _loc(22.32, 114.17, "HK", C.ASIA)),
        PoP("nrt1", _loc(35.68, 139.65, "JP", C.ASIA)),
        PoP("bom1", _loc(19.08, 72.88, "IN", C.ASIA)),
        PoP("maa1", _loc(13.08, 80.27, "IN", C.ASIA)),
        # South America
        PoP("gru1", _loc(-23.55, -46.63, "BR", C.SOUTH_AMERICA)),
        PoP("eze1", _loc(-34.60, -58.38, "AR", C.SOUTH_AMERICA)),
        # Africa
        PoP("jnb1", _loc(-26.20, 28.05, "ZA", C.AFRICA)),
        PoP("los1", _loc(6.52, 3.38, "NG", C.AFRICA)),
        # Oceania
        PoP("syd1", _loc(-33.87, 151.21, "AU", C.OCEANIA)),
    ]


#: Metros clients are anchored at, with rough relative user weights. The
#: AF/AS/SA entries sit farther from PoPs on average and carry weaker access
#: profiles (assigned in repro.workload.profiles), reproducing Figure 6's
#: continent ordering.
DEFAULT_METROS: Sequence[Metro] = (
    # Europe
    Metro("amsterdam", _loc(52.37, 4.90, "NL", Continent.EUROPE), 1.0),
    Metro("london", _loc(51.51, -0.13, "GB", Continent.EUROPE), 2.0),
    Metro("paris", _loc(48.86, 2.35, "FR", Continent.EUROPE), 1.8),
    Metro("berlin", _loc(52.52, 13.40, "DE", Continent.EUROPE), 1.6),
    Metro("warsaw", _loc(52.23, 21.01, "PL", Continent.EUROPE), 1.2),
    Metro("istanbul", _loc(41.01, 28.98, "TR", Continent.EUROPE), 1.8),
    Metro("kyiv", _loc(50.45, 30.52, "UA", Continent.EUROPE), 0.9),
    # North America
    Metro("newyork", _loc(40.71, -74.01, "US", Continent.NORTH_AMERICA), 2.2),
    Metro("chicago", _loc(41.88, -87.63, "US", Continent.NORTH_AMERICA), 1.4),
    Metro("sanfrancisco", _loc(37.77, -122.42, "US", Continent.NORTH_AMERICA), 1.3),
    Metro("dallas", _loc(32.78, -96.80, "US", Continent.NORTH_AMERICA), 1.2),
    Metro("mexicocity", _loc(19.43, -99.13, "MX", Continent.NORTH_AMERICA), 1.6),
    Metro("toronto", _loc(43.65, -79.38, "CA", Continent.NORTH_AMERICA), 0.9),
    Metro("honolulu", _loc(21.31, -157.86, "US", Continent.NORTH_AMERICA), 0.2),
    # Asia
    Metro("delhi", _loc(28.61, 77.21, "IN", Continent.ASIA), 3.0),
    Metro("mumbai", _loc(19.08, 72.88, "IN", Continent.ASIA), 2.8),
    Metro("jakarta", _loc(-6.21, 106.85, "ID", Continent.ASIA), 2.6),
    Metro("manila", _loc(14.60, 120.98, "PH", Continent.ASIA), 1.8),
    Metro("bangkok", _loc(13.76, 100.50, "TH", Continent.ASIA), 1.5),
    Metro("tokyo", _loc(35.68, 139.65, "JP", Continent.ASIA), 1.5),
    Metro("hanoi", _loc(21.03, 105.85, "VN", Continent.ASIA), 1.3),
    Metro("dhaka", _loc(23.81, 90.41, "BD", Continent.ASIA), 1.4),
    Metro("karachi", _loc(24.86, 67.00, "PK", Continent.ASIA), 1.3),
    # South America
    Metro("saopaulo", _loc(-23.55, -46.63, "BR", Continent.SOUTH_AMERICA), 2.4),
    Metro("buenosaires", _loc(-34.60, -58.38, "AR", Continent.SOUTH_AMERICA), 1.2),
    Metro("bogota", _loc(4.71, -74.07, "CO", Continent.SOUTH_AMERICA), 1.0),
    Metro("lima", _loc(-12.05, -77.04, "PE", Continent.SOUTH_AMERICA), 0.8),
    Metro("santiago", _loc(-33.45, -70.67, "CL", Continent.SOUTH_AMERICA), 0.6),
    # Africa
    Metro("lagos", _loc(6.52, 3.38, "NG", Continent.AFRICA), 1.6),
    Metro("nairobi", _loc(-1.29, 36.82, "KE", Continent.AFRICA), 0.8),
    Metro("johannesburg", _loc(-26.20, 28.05, "ZA", Continent.AFRICA), 0.9),
    Metro("cairo", _loc(30.04, 31.24, "EG", Continent.AFRICA), 1.4),
    Metro("accra", _loc(5.60, -0.19, "GH", Continent.AFRICA), 0.5),
    # Oceania
    Metro("sydney", _loc(-33.87, 151.21, "AU", Continent.OCEANIA), 0.8),
    Metro("auckland", _loc(-36.85, 174.76, "NZ", Continent.OCEANIA), 0.3),
)
