"""BGP routes: announcements, relationships, path properties.

A PoP typically learns three or more distinct routes per destination prefix
(§6.1): one or more peer routes (over private interconnects or IXP fabrics)
and routes via two or more transit providers. Routes carry the attributes
the routing policy and the §6 analysis consume: AS-path (with optional
prepending), relationship type, and interconnect kind — plus the *path
condition* parameters the synthetic channel model needs (RTT penalty versus
the direct path, capacity headroom, loss floor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.core.records import Relationship, RouteInfo

__all__ = ["BgpRoute", "PathCondition", "RouteGenerator"]


@dataclass(frozen=True)
class PathCondition:
    """Physical condition of the path a route takes (beyond the policy view).

    ``rtt_penalty_ms`` — extra round-trip latency versus the best physical
    path to the destination (0 for a direct peer route).
    ``loss_floor`` — baseline random loss on the route's middle mile.
    ``congestion_capacity`` — available headroom relative to the traffic the
    route would attract; routes with headroom < 1.0 develop peak-hour queues
    and loss (used by :mod:`repro.workload.events`).
    """

    rtt_penalty_ms: float = 0.0
    loss_floor: float = 0.0
    congestion_capacity: float = 2.0

    def __post_init__(self) -> None:
        if self.rtt_penalty_ms < 0:
            raise ValueError("rtt_penalty_ms must be non-negative")
        if not 0.0 <= self.loss_floor < 1.0:
            raise ValueError("loss_floor must be in [0, 1)")
        if self.congestion_capacity <= 0:
            raise ValueError("congestion_capacity must be positive")


@dataclass(frozen=True)
class BgpRoute:
    """One announced route for a destination prefix at a PoP."""

    prefix: str
    prefix_length: int
    as_path: Tuple[int, ...]
    relationship: Relationship
    condition: PathCondition = PathCondition()
    prepended: bool = False

    @property
    def as_path_length(self) -> int:
        return len(self.as_path)

    @property
    def is_peer(self) -> bool:
        return self.relationship in (Relationship.PRIVATE, Relationship.PUBLIC)

    def to_route_info(self, preference_rank: int) -> RouteInfo:
        """Annotation attached to session samples (§2.2.2)."""
        return RouteInfo(
            prefix=self.prefix,
            as_path=self.as_path,
            relationship=self.relationship,
            preference_rank=preference_rank,
            prepended=self.prepended,
        )


class RouteGenerator:
    """Generates realistic route sets for a destination prefix.

    The generated mix follows §6's observations:

    - most prefixes have a direct private peer route (AS-path length 1,
      best physical path);
    - many also have a public (IXP) peer route, physically similar but
      occasionally better or worse;
    - two or more transit routes exist with longer AS paths, a latency
      penalty (provider backbone detour), and less capacity headroom —
      "routes via transit providers frequently lack the capacity required"
      (§6.1);
    - a small fraction of prefixes have a *mis-preferred* route set where an
      alternate would actually perform better, seeding the limited
      opportunity the paper finds (§6.2).
    """

    TRANSIT_ASNS = (1299, 3356, 174, 2914, 6762)

    def __init__(
        self,
        rng: random.Random,
        private_peer_probability: float = 0.75,
        public_peer_probability: float = 0.55,
        transit_count: int = 2,
        mispreferred_probability: float = 0.04,
    ) -> None:
        self.rng = rng
        self.private_peer_probability = private_peer_probability
        self.public_peer_probability = public_peer_probability
        self.transit_count = transit_count
        self.mispreferred_probability = mispreferred_probability

    def routes_for_prefix(self, prefix: str, dest_asn: int) -> List[BgpRoute]:
        """Generate the route set a PoP learns for ``prefix``."""
        prefix_length = int(prefix.rsplit("/", 1)[1])
        rng = self.rng
        routes: List[BgpRoute] = []

        has_private = rng.random() < self.private_peer_probability
        has_public = rng.random() < self.public_peer_probability
        if not has_private and not has_public:
            has_public = True  # every prefix keeps at least one peer or
            # transit mix interesting; transit-only prefixes exist too:
            if rng.random() < 0.3:
                has_public = False

        if has_private:
            routes.append(
                BgpRoute(
                    prefix=prefix,
                    prefix_length=prefix_length,
                    as_path=(dest_asn,),
                    relationship=Relationship.PRIVATE,
                    condition=PathCondition(
                        rtt_penalty_ms=0.0,
                        loss_floor=0.0,
                        congestion_capacity=rng.uniform(1.5, 4.0),
                    ),
                )
            )
            if rng.random() < 0.35:
                # A second private route via a regional aggregator/sibling
                # AS: physically near-direct but one AS hop longer, so the
                # policy deprioritizes it (tiebreak 3). These are the
                # "same relationship, longer AS-path" alternates Table 2
                # finds most MinRTT opportunity on.
                routes.append(
                    BgpRoute(
                        prefix=prefix,
                        prefix_length=prefix_length,
                        as_path=(64800 + rng.randrange(100), dest_asn),
                        relationship=Relationship.PRIVATE,
                        condition=PathCondition(
                            rtt_penalty_ms=max(0.0, rng.gauss(1.5, 1.5)),
                            loss_floor=0.0,
                            congestion_capacity=rng.uniform(1.0, 3.0),
                        ),
                    )
                )
        if has_public:
            routes.append(
                BgpRoute(
                    prefix=prefix,
                    prefix_length=prefix_length,
                    as_path=(dest_asn,),
                    relationship=Relationship.PUBLIC,
                    condition=PathCondition(
                        rtt_penalty_ms=max(0.0, rng.gauss(1.0, 1.0)),
                        loss_floor=0.0,
                        congestion_capacity=rng.uniform(1.0, 2.5),
                    ),
                )
            )

        transit_asns = rng.sample(self.TRANSIT_ASNS, k=self.transit_count)
        for transit_asn in transit_asns:
            prepended = rng.random() < 0.15
            intermediate = (transit_asn,)
            if rng.random() < 0.35:
                intermediate = (transit_asn, 64000 + rng.randrange(100))
            path = intermediate + (dest_asn,)
            if prepended:
                path = path + (dest_asn,) * rng.choice((1, 2))
            routes.append(
                BgpRoute(
                    prefix=prefix,
                    prefix_length=prefix_length,
                    as_path=path,
                    relationship=Relationship.TRANSIT,
                    prepended=prepended,
                    condition=PathCondition(
                        rtt_penalty_ms=max(0.0, rng.gauss(4.0, 3.0)),
                        loss_floor=0.0,
                        congestion_capacity=rng.uniform(0.8, 2.0),
                    ),
                )
            )

        if routes and rng.random() < self.mispreferred_probability:
            routes = self._invert_best(routes)
        return routes

    def _invert_best(self, routes: List[BgpRoute]) -> List[BgpRoute]:
        """Make the physically best path one the policy will not prefer.

        Gives the policy-preferred route a latency penalty while one
        less-preferred route keeps the direct path — the "continuous
        opportunity" population of Table 1.
        """
        penalized = []
        for index, route in enumerate(routes):
            if index == 0:
                penalized.append(
                    replace(
                        route,
                        condition=replace(
                            route.condition,
                            rtt_penalty_ms=route.condition.rtt_penalty_ms
                            + self.rng.uniform(6.0, 15.0),
                        ),
                    )
                )
            else:
                penalized.append(route)
        return penalized
