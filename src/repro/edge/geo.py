"""Geography: continents, locations, distances, propagation delay.

The synthetic edge needs just enough geography to reproduce the paper's
spatial structure: PoPs and clients have coordinates; most clients are close
to a PoP (50% of traffic within 500 km, 90% within 2500 km, §2.1); RTT floors
follow great-circle distance through fiber with realistic path inflation; and
per-continent breakdowns (Figure 6) need continent labels.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = [
    "Continent",
    "Location",
    "great_circle_km",
    "propagation_rtt_ms",
]

EARTH_RADIUS_KM = 6371.0

#: Light in fiber travels ~204 km/ms; terrestrial routes are not great
#: circles, so an inflation factor models detours (submarine cable routes,
#: provider backbones). 1.5 is a conventional planning number.
FIBER_KM_PER_MS = 204.0
PATH_INFLATION = 1.5


class Continent(enum.Enum):
    AFRICA = "AF"
    ASIA = "AS"
    EUROPE = "EU"
    NORTH_AMERICA = "NA"
    OCEANIA = "OC"
    SOUTH_AMERICA = "SA"

    @property
    def code(self) -> str:
        return self.value


@dataclass(frozen=True)
class Location:
    """A point on the globe with political labels."""

    latitude: float
    longitude: float
    country: str
    continent: Continent

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError("latitude out of range")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError("longitude out of range")

    def distance_km(self, other: "Location") -> float:
        return great_circle_km(
            self.latitude, self.longitude, other.latitude, other.longitude
        )


def great_circle_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Haversine great-circle distance in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(math.sqrt(a), 1.0))


def propagation_rtt_ms(
    distance_km: float, inflation: float = PATH_INFLATION
) -> float:
    """Round-trip propagation delay over fibre for a given distance.

    ``inflation`` scales the great-circle distance to a realistic routed
    path length. A 500 km client at 1.5x inflation sees ~7.4 ms RTT, a
    2500 km client ~37 ms — consistent with the paper's locality/latency
    observations (§2.1, §4).
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    one_way_ms = distance_km * inflation / FIBER_KM_PER_MS
    return 2.0 * one_way_ms
