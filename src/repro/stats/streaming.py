"""Streaming median comparison from t-digests (paper footnote 11).

Production traffic-engineering systems "need to be able to make these
comparisons in near real-time"; the paper points at t-digests as the way to
compute percentiles in streaming analytics frameworks and derive confidence
intervals "via the cited approach" (Price & Bonett).

The exact McKean–Schrader estimator needs order statistics; a t-digest
yields any quantile, and the order statistic ``X(k)`` of an ``n``-sample is
the quantile at ``k / n``. So the streaming construction is:

1. median from the digest at q = 0.5;
2. ``c = floor((n + 1) / 2 - z * sqrt(n / 4))`` as in the exact method;
3. ``SE = (Q((n - c + 1) / n) - Q(c / n)) / (2 z)`` from digest quantiles;
4. combine two SEs for the difference CI.

:func:`streaming_compare` mirrors
:func:`repro.stats.median_ci.compare_medians` but over digests, and
:class:`StreamingAggregate` is the bounded-memory per-aggregation state a
real-time pipeline would keep instead of raw sample lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.stats.median_ci import (
    MIN_SAMPLES_FOR_COMPARISON,
    MedianComparison,
    normal_quantile,
)
from repro.stats.tdigest import TDigest

__all__ = ["StreamingAggregate", "streaming_median_se", "streaming_compare"]


def streaming_median_se(digest: TDigest, confidence: float = 0.95) -> float:
    """McKean–Schrader SE of the median, from a t-digest."""
    n = int(digest.total_weight)
    if n < 5:
        raise ValueError("need at least 5 observations for a median SE")
    z = normal_quantile(0.5 + confidence / 2.0)
    c = max(int(math.floor((n + 1) / 2.0 - z * math.sqrt(n / 4.0))), 1)
    upper = digest.quantile((n - c + 1) / n)
    lower = digest.quantile(c / n)
    return max(upper - lower, 0.0) / (2.0 * z)


def streaming_compare(
    digest_a: TDigest,
    digest_b: TDigest,
    confidence: float = 0.95,
    max_ci_width: float = math.inf,
    min_samples: int = MIN_SAMPLES_FOR_COMPARISON,
) -> MedianComparison:
    """Difference-of-medians comparison computed entirely from digests."""
    n_a, n_b = int(digest_a.total_weight), int(digest_b.total_weight)
    if n_a < 5 or n_b < 5:
        return MedianComparison(math.nan, -math.inf, math.inf, False, n_a, n_b)
    difference = digest_a.median() - digest_b.median()
    se_a = streaming_median_se(digest_a, confidence)
    se_b = streaming_median_se(digest_b, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)
    half = z * math.sqrt(se_a * se_a + se_b * se_b)
    low, high = difference - half, difference + half
    valid = (
        n_a >= min_samples and n_b >= min_samples and (high - low) <= max_ci_width
    )
    return MedianComparison(difference, low, high, valid, n_a, n_b)


@dataclass
class StreamingAggregate:
    """Bounded-memory aggregation state for one (group, route, window).

    Holds two digests (MinRTT in milliseconds, HDratio) plus the traffic
    counter — everything the §§5–6 comparisons need, at O(compression)
    memory instead of O(samples).
    """

    rtt_digest: TDigest
    hd_digest: TDigest
    traffic_bytes: int = 0
    session_count: int = 0

    @classmethod
    def empty(cls, compression: float = 100.0) -> "StreamingAggregate":
        return cls(
            rtt_digest=TDigest(compression=compression),
            hd_digest=TDigest(compression=compression),
        )

    def add(
        self, min_rtt_ms: float, hdratio: Optional[float], bytes_sent: int
    ) -> None:
        self.rtt_digest.add(min_rtt_ms)
        if hdratio is not None:
            self.hd_digest.add(hdratio)
        self.traffic_bytes += bytes_sent
        self.session_count += 1

    def merge(self, other: "StreamingAggregate") -> "StreamingAggregate":
        """Combine state from another collector (e.g. another LB process)."""
        self.rtt_digest.merge(other.rtt_digest)
        if other.hd_digest.total_weight > 0:
            self.hd_digest.merge(other.hd_digest)
        self.traffic_bytes += other.traffic_bytes
        self.session_count += other.session_count
        return self

    @property
    def minrtt_p50(self) -> Optional[float]:
        if self.rtt_digest.total_weight == 0:
            return None
        return self.rtt_digest.median()

    @property
    def hdratio_p50(self) -> Optional[float]:
        if self.hd_digest.total_weight == 0:
            return None
        return self.hd_digest.median()
