"""Bootstrap confidence intervals — a cross-check for the parametric-free CIs.

The paper's methodology uses the Price–Bonett construction because it is
cheap enough for production streaming; the percentile bootstrap is the
slower gold standard. This module exists (a) as an alternative backend for
offline analysis and (b) so the test suite can verify that the
McKean–Schrader/Price–Bonett intervals agree with bootstrap intervals on
realistic data — the empirical justification for trusting the fast path.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.stats.weighted import percentile

__all__ = ["bootstrap_median_ci", "bootstrap_median_difference_ci"]


def _median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def bootstrap_median_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    rng: Optional[random.Random] = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for a median: ``(median, low, high)``."""
    if len(values) < 5:
        raise ValueError("need at least 5 observations")
    if resamples < 50:
        raise ValueError("resamples too small for a stable interval")
    rng = rng or random.Random(0)
    data = [float(v) for v in values]
    n = len(data)
    medians = []
    for _ in range(resamples):
        resample = [data[rng.randrange(n)] for _ in range(n)]
        medians.append(_median(resample))
    alpha = (1.0 - confidence) / 2.0
    return (
        _median(data),
        percentile(medians, 100.0 * alpha),
        percentile(medians, 100.0 * (1.0 - alpha)),
    )


def bootstrap_median_difference_ci(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    rng: Optional[random.Random] = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for ``median(a) - median(b)``.

    Resamples each side independently (the two aggregations are
    independent route measurements). Returns ``(difference, low, high)``.
    """
    if len(sample_a) < 5 or len(sample_b) < 5:
        raise ValueError("need at least 5 observations per side")
    rng = rng or random.Random(0)
    a = [float(v) for v in sample_a]
    b = [float(v) for v in sample_b]
    n_a, n_b = len(a), len(b)
    differences = []
    for _ in range(resamples):
        resample_a = [a[rng.randrange(n_a)] for _ in range(n_a)]
        resample_b = [b[rng.randrange(n_b)] for _ in range(n_b)]
        differences.append(_median(resample_a) - _median(resample_b))
    alpha = (1.0 - confidence) / 2.0
    return (
        _median(a) - _median(b),
        percentile(differences, 100.0 * alpha),
        percentile(differences, 100.0 * (1.0 - alpha)),
    )
