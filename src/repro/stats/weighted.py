"""Weighted percentiles and empirical CDFs.

The paper reports every distribution weighted by traffic volume (§3.3):
"prefixes are arbitrary units of address space whose size may not map to the
underlying userbase size", so user groups are weighted by the bytes their
sessions carried. These helpers implement the weighted ECDF/percentile
machinery used by the figure drivers in :mod:`repro.pipeline.experiments`.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

__all__ = [
    "ecdf",
    "percentile",
    "weighted_ecdf",
    "weighted_fraction_at_most",
    "weighted_percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Unweighted percentile with linear interpolation (q in [0, 100])."""
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def weighted_percentile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """Weighted percentile (q in [0, 100]) by cumulative weight.

    The returned value is the smallest observation whose cumulative weight
    share reaches ``q`` percent — the inverse of the weighted ECDF. This is
    the "fraction of traffic" interpretation used throughout the paper's
    figures.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    pairs = sorted(zip((float(v) for v in values), (float(w) for w in weights)))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise ValueError("total weight must be positive")
    target = (q / 100.0) * total
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        if cumulative >= target:
            return value
    return pairs[-1][0]


def ecdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Unweighted ECDF as ``(sorted_values, cumulative_fractions)``."""
    if not values:
        raise ValueError("cannot build an ECDF from an empty sequence")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    fractions = [(i + 1) / n for i in range(n)]
    return ordered, fractions


def weighted_ecdf(
    values: Sequence[float], weights: Sequence[float]
) -> Tuple[List[float], List[float]]:
    """Weighted ECDF as ``(sorted_values, cumulative_weight_fractions)``."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if not values:
        raise ValueError("cannot build an ECDF from an empty sequence")
    pairs = sorted(zip((float(v) for v in values), (float(w) for w in weights)))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise ValueError("total weight must be positive")
    xs: List[float] = []
    fractions: List[float] = []
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        xs.append(value)
        fractions.append(cumulative / total)
    return xs, fractions


def weighted_fraction_at_most(
    values: Sequence[float], weights: Sequence[float], threshold: float
) -> float:
    """Weight share of observations with ``value <= threshold``.

    Convenience for statements like "83.9% of traffic is within 3 ms of
    optimal" — evaluates the weighted ECDF at ``threshold``.
    """
    xs, fractions = weighted_ecdf(values, weights)
    index = bisect.bisect_right(xs, threshold)
    if index == 0:
        return 0.0
    return fractions[index - 1]
