"""Distribution-free confidence intervals for medians and their differences.

The paper (§3.4.1) gates every degradation/opportunity decision on the
confidence interval of the *difference* between two medians, computed "using a
distribution-free technique" (Price & Bonett, "Distribution-Free Confidence
Intervals for Difference and Ratio of Medians", 2002).

We implement the standard construction:

1. Per-sample median standard error via the **McKean–Schrader** estimator:
   with order statistics ``X(1) <= ... <= X(n)`` and
   ``c = floor((n + 1) / 2 - z * sqrt(n / 4))``,
   ``SE = (X(n - c + 1) - X(c)) / (2 * z)``, where ``z`` is the standard
   normal quantile for the chosen confidence level.
2. The difference of two independent medians is approximately normal with
   variance ``SE1^2 + SE2^2`` (the Price–Bonett combination), giving
   ``(M1 - M2) ± z * sqrt(SE1^2 + SE2^2)``.

This matches the paper's operational requirements: no normality assumption on
the underlying samples, cheap enough for streaming use, and it produces the
interval *width* used for the paper's "tight CI" validity rule (<10 ms for
MinRTT_P50 differences, <0.1 for HDratio_P50 differences).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "MedianComparison",
    "compare_medians",
    "median_ci",
    "median_standard_error",
    "normal_quantile",
]

#: Minimum samples per aggregation before any comparison is attempted (§3.4.1).
MIN_SAMPLES_FOR_COMPARISON = 30


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation).

    Implemented from scratch so the core library only depends on the standard
    library; accurate to ~1e-9, far below what the CI machinery needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")

    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)

    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def _median_of_sorted(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return float(ordered[mid])
    return 0.5 * (float(ordered[mid - 1]) + float(ordered[mid]))


def median_standard_error(values: Sequence[float], confidence: float = 0.95) -> float:
    """McKean–Schrader standard error of the sample median.

    ``values`` need not be sorted. Requires at least 5 observations; below
    that the order-statistic construction degenerates.
    """
    n = len(values)
    if n < 5:
        raise ValueError("need at least 5 observations for a median SE")
    z = normal_quantile(0.5 + confidence / 2.0)
    ordered = sorted(float(v) for v in values)
    c = int(math.floor((n + 1) / 2.0 - z * math.sqrt(n / 4.0)))
    c = max(c, 1)
    upper = ordered[n - c]      # X(n - c + 1), 1-indexed
    lower = ordered[c - 1]      # X(c), 1-indexed
    return (upper - lower) / (2.0 * z)


def median_ci(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Median and its distribution-free CI: ``(median, low, high)``."""
    ordered = sorted(float(v) for v in values)
    med = _median_of_sorted(ordered)
    se = median_standard_error(ordered, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)
    return med, med - z * se, med + z * se


@dataclass(frozen=True)
class MedianComparison:
    """Outcome of comparing two aggregations' medians (§3.4).

    Attributes
    ----------
    difference:
        ``median_a - median_b``.
    ci_low, ci_high:
        Confidence interval for the difference.
    valid:
        Whether both sides had enough samples (>= 30) and the interval is
        "tight" (width below ``max_ci_width``). Invalid comparisons are
        excluded from the paper's analyses rather than trusted.
    n_a, n_b:
        Sample counts on each side.
    """

    difference: float
    ci_low: float
    ci_high: float
    valid: bool
    n_a: int
    n_b: int

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def exceeds(self, threshold: float) -> bool:
        """True when the difference is confidently above ``threshold``.

        Mirrors the paper's rule: compare the *lower bound* of the CI against
        the threshold so that only statistically significant differences
        count. Invalid comparisons never exceed.
        """
        return self.valid and self.ci_low > threshold

    def below(self, threshold: float) -> bool:
        """True when the difference is confidently below ``-threshold``."""
        return self.valid and self.ci_high < -threshold

    def statistically_equal_or_greater(self, slack: float = 0.0) -> bool:
        """True when ``a`` is not confidently worse than ``b`` by > slack.

        Used for the paper's guard: an alternate route only counts as a
        MinRTT opportunity if its HDratio is statistically equal or better
        than the preferred route's.
        """
        if not self.valid:
            return False
        return self.ci_high >= -slack


def compare_medians(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    confidence: float = 0.95,
    max_ci_width: float = math.inf,
    min_samples: int = MIN_SAMPLES_FOR_COMPARISON,
) -> MedianComparison:
    """Compare the medians of two independent samples.

    Returns a :class:`MedianComparison` whose ``difference`` is
    ``median(sample_a) - median(sample_b)`` with a Price–Bonett-style
    distribution-free CI. The comparison is flagged invalid when either side
    has fewer than ``min_samples`` observations or when the CI is wider than
    ``max_ci_width`` (the paper's tightness rule).
    """
    n_a, n_b = len(sample_a), len(sample_b)
    if n_a < 5 or n_b < 5:
        return MedianComparison(math.nan, -math.inf, math.inf, False, n_a, n_b)

    ordered_a = sorted(float(v) for v in sample_a)
    ordered_b = sorted(float(v) for v in sample_b)
    med_a = _median_of_sorted(ordered_a)
    med_b = _median_of_sorted(ordered_b)
    se_a = median_standard_error(ordered_a, confidence)
    se_b = median_standard_error(ordered_b, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)

    difference = med_a - med_b
    half_width = z * math.sqrt(se_a * se_a + se_b * se_b)
    low, high = difference - half_width, difference + half_width
    valid = (
        n_a >= min_samples
        and n_b >= min_samples
        and (high - low) <= max_ci_width
    )
    return MedianComparison(difference, low, high, valid, n_a, n_b)
