"""Seeded random-variate machinery for the synthetic workload generator.

The workload models in :mod:`repro.workload` are calibrated against the
quantiles the paper publishes (e.g. "50% of objects fetched are less than
3 KB", "7.4% of sessions last less than a second"). The helpers here make
that calibration direct:

- :func:`lognormal_from_quantiles` solves for the (mu, sigma) of a lognormal
  that passes through two target quantiles, so a distribution can be pinned
  to two published CDF points.
- :class:`Mixture` composes weighted component distributions, which is how
  the paper's visibly multi-modal distributions (session bytes, HDratio) are
  produced.
- Everything draws from an injected ``random.Random`` so scenarios are fully
  reproducible from a single seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "LogNormal",
    "Pareto",
    "Exponential",
    "Mixture",
    "lognormal_from_quantiles",
    "normal_quantile_unit",
]

from repro.stats.median_ci import normal_quantile as normal_quantile_unit


class Distribution:
    """A samplable scalar distribution with optional truncation bounds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def sample_many(self, rng: random.Random, count: int) -> List[float]:
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution — always returns ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean, optionally truncated to [low, high]."""

    mean: float
    low: float = 0.0
    high: float = math.inf

    def sample(self, rng: random.Random) -> float:
        value = rng.expovariate(1.0 / self.mean)
        return min(max(value + self.low, self.low), self.high)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Lognormal parameterized by the underlying normal's mu/sigma.

    ``low``/``high`` clamp samples — used to keep e.g. response sizes within
    physically sensible bounds without distorting the body of the
    distribution.
    """

    mu: float
    sigma: float
    low: float = 0.0
    high: float = math.inf

    def sample(self, rng: random.Random) -> float:
        # exp(gauss) rather than lognormvariate: identical distribution,
        # measurably faster (gauss skips normalvariate's rejection loop),
        # and this is the hottest sampler in trace generation.
        value = math.exp(rng.gauss(self.mu, self.sigma))
        return min(max(value, self.low), self.high)

    @property
    def median(self) -> float:
        return math.exp(self.mu)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (heavy tail) with scale ``xm`` and shape ``alpha``."""

    xm: float
    alpha: float
    high: float = math.inf

    def sample(self, rng: random.Random) -> float:
        value = self.xm * (1.0 - rng.random()) ** (-1.0 / self.alpha)
        return min(value, self.high)


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    >>> rng = random.Random(7)
    >>> m = Mixture([(0.5, Constant(1.0)), (0.5, Constant(2.0))])
    >>> {m.sample(rng) for _ in range(100)} == {1.0, 2.0}
    True
    """

    def __init__(self, components: Sequence[Tuple[float, Distribution]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._components = [(weight / total, dist) for weight, dist in components]

    def sample(self, rng: random.Random) -> float:
        roll = rng.random()
        cumulative = 0.0
        for weight, dist in self._components:
            cumulative += weight
            if roll <= cumulative:
                return dist.sample(rng)
        return self._components[-1][1].sample(rng)

    @property
    def components(self) -> List[Tuple[float, Distribution]]:
        return list(self._components)


def lognormal_from_quantiles(
    q1: float, x1: float, q2: float, x2: float,
    low: float = 0.0, high: float = math.inf,
) -> LogNormal:
    """Fit a lognormal through two quantile points.

    Solves for (mu, sigma) such that ``P(X <= x1) = q1`` and
    ``P(X <= x2) = q2``. For a lognormal, ``ln X`` is Normal(mu, sigma), so
    ``ln x = mu + sigma * z(q)`` gives two linear equations.

    >>> d = lognormal_from_quantiles(0.5, 3000.0, 0.9, 50000.0)
    >>> abs(d.median - 3000.0) < 1e-6
    True
    """
    if not (0.0 < q1 < 1.0 and 0.0 < q2 < 1.0):
        raise ValueError("quantiles must be in (0, 1)")
    if q1 == q2:
        raise ValueError("quantiles must differ")
    if x1 <= 0 or x2 <= 0:
        raise ValueError("lognormal quantile values must be positive")
    z1 = normal_quantile_unit(q1)
    z2 = normal_quantile_unit(q2)
    sigma = (math.log(x2) - math.log(x1)) / (z2 - z1)
    if sigma <= 0:
        raise ValueError("quantile points imply non-increasing CDF")
    mu = math.log(x1) - sigma * z1
    return LogNormal(mu=mu, sigma=sigma, low=low, high=high)


def make_sampler(dist: Distribution, seed: int) -> Callable[[], float]:
    """Bind a distribution to its own seeded RNG stream."""
    rng = random.Random(seed)
    return lambda: dist.sample(rng)
