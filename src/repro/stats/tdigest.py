"""Merging t-digest for streaming quantile estimation.

Implements the *merging* variant of the t-digest data structure described in
Dunning & Ertl, "Computing Extremely Accurate Quantiles Using t-Digests"
(arXiv:1902.04023), the reference the paper cites (footnote 11) for computing
percentiles of MinRTT/HDratio in production streaming analytics.

The digest maintains a compact set of weighted centroids whose sizes are
bounded by a scale function; quantiles near the tails are represented with
more, smaller centroids and are therefore more accurate — exactly the regime
the paper cares about (P50 comparisons with tight confidence bounds, and tail
degradation percentiles).

This implementation keeps the public surface small:

- :meth:`TDigest.add` / :meth:`TDigest.add_many` — insert values (optionally
  weighted).
- :meth:`TDigest.quantile` — estimate the value at quantile ``q``.
- :meth:`TDigest.cdf` — estimate the rank of a value.
- :meth:`TDigest.merge` — combine two digests (used when aggregations from
  multiple load balancers are combined).

The buffer-then-merge design means ``add`` is amortized O(1) with occasional
O(n log n) compactions.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["TDigest"]


def _k1(q: float, compression: float) -> float:
    """Scale function k1 from the t-digest paper (asin-based).

    Maps quantile ``q`` to the "k-scale"; centroids are limited to spanning
    one unit of k. The asin form concentrates resolution at both tails.
    """
    return (compression / (2.0 * math.pi)) * math.asin(2.0 * q - 1.0)


class TDigest:
    """A merging t-digest.

    Parameters
    ----------
    compression:
        The ``delta`` parameter. Larger values give more centroids and more
        accuracy at more memory. 100 is the customary default and keeps
        roughly ``2 * compression`` centroids.
    buffer_factor:
        Incoming points are buffered and merged in batches of
        ``buffer_factor * compression`` for amortized-constant insertion.
    """

    def __init__(self, compression: float = 100.0, buffer_factor: int = 5):
        if compression < 20:
            raise ValueError("compression must be >= 20 for sane accuracy")
        self.compression = float(compression)
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[Tuple[float, float]] = []
        self._buffer_limit = int(buffer_factor * compression)
        self._total_weight = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def add(self, value: float, weight: float = 1.0) -> None:
        """Add a single ``value`` with optional ``weight``."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if math.isnan(value):
            raise ValueError("cannot add NaN to a t-digest")
        self._buffer.append((value, weight))
        self._total_weight += weight
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= self._buffer_limit:
            self._compress()

    def add_many(self, values: Iterable[float]) -> None:
        """Add an iterable of unweighted values."""
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def centroid_count(self) -> int:
        self._compress()
        return len(self._means)

    def __len__(self) -> int:
        return int(self._total_weight)

    def quantile(self, q: float) -> float:
        """Estimate the value at quantile ``q`` in [0, 1].

        Uses linear interpolation between adjacent centroid means, treating
        each centroid as centred at its midpoint of cumulative weight, with
        the global min/max anchoring the extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        self._compress()
        if not self._means:
            raise ValueError("cannot query an empty t-digest")
        if len(self._means) == 1:
            return self._means[0]
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max

        target = q * self._total_weight
        cumulative = 0.0
        # Midpoint positions of each centroid along the weight axis.
        prev_position = 0.0
        prev_mean = self._min
        for mean, weight in zip(self._means, self._weights):
            position = cumulative + weight / 2.0
            if target < position:
                span = position - prev_position
                if span <= 0:
                    return mean
                frac = (target - prev_position) / span
                return prev_mean + frac * (mean - prev_mean)
            cumulative += weight
            prev_position = position
            prev_mean = mean
        # Interpolate between the last centroid midpoint and the max.
        span = self._total_weight - prev_position
        if span <= 0:
            return self._max
        frac = (target - prev_position) / span
        return prev_mean + frac * (self._max - prev_mean)

    def median(self) -> float:
        return self.quantile(0.5)

    def cdf(self, value: float) -> float:
        """Estimate P(X <= value)."""
        self._compress()
        if not self._means:
            raise ValueError("cannot query an empty t-digest")
        if value < self._min:
            return 0.0
        if value >= self._max:
            return 1.0
        cumulative = 0.0
        prev_position = 0.0
        prev_mean = self._min
        for mean, weight in zip(self._means, self._weights):
            position = cumulative + weight / 2.0
            if value < mean:
                span = mean - prev_mean
                if span <= 0:
                    return position / self._total_weight
                frac = (value - prev_mean) / span
                rank = prev_position + frac * (position - prev_position)
                return min(max(rank / self._total_weight, 0.0), 1.0)
            cumulative += weight
            prev_position = position
            prev_mean = mean
        span = self._max - prev_mean
        if span <= 0:
            return 1.0
        frac = (value - prev_mean) / span
        rank = prev_position + frac * (self._total_weight - prev_position)
        return min(max(rank / self._total_weight, 0.0), 1.0)

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def merge(self, other: "TDigest") -> "TDigest":
        """Merge ``other`` into ``self`` (in place) and return ``self``.

        ``other`` is left untouched. Both sides contribute their centroids
        *and* any unbuffered raw points, so the merged state depends only on
        the combined multiset of weighted points — ``merge(a, b)`` and
        ``merge(b, a)`` produce identical centroid state. (N-way merges are
        still order-sensitive at the usual t-digest approximation level,
        because each pairwise merge re-clusters; total weight and min/max
        are exact regardless of order.)
        """
        for mean, weight in zip(other._means, other._weights):
            self._buffer.append((mean, weight))
        self._buffer.extend(other._buffer)
        self._total_weight += other._total_weight
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    @classmethod
    def of(cls, values: Sequence[float], compression: float = 100.0) -> "TDigest":
        """Build a digest from a sequence of values."""
        digest = cls(compression=compression)
        digest.add_many(values)
        return digest

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compress(self) -> None:
        """Merge the buffer into the centroid list, enforcing k-size bounds."""
        if not self._buffer:
            return
        points = list(zip(self._means, self._weights))
        points.extend(self._buffer)
        self._buffer.clear()
        # Sorting on (mean, weight) — not mean alone — keeps the clustering
        # independent of insertion order when distinct points share a value,
        # which is what makes merge() commutative.
        points.sort()

        total = sum(weight for _, weight in points)
        merged_means: List[float] = []
        merged_weights: List[float] = []

        current_mean, current_weight = points[0]
        weight_so_far = 0.0
        k_lower = _k1(max(weight_so_far / total, 0.0), self.compression)

        for mean, weight in points[1:]:
            proposed = current_weight + weight
            q_upper = (weight_so_far + proposed) / total
            # Clamp to the open interval to keep asin defined.
            q_upper = min(max(q_upper, 1e-12), 1.0 - 1e-12)
            if _k1(q_upper, self.compression) - k_lower <= 1.0:
                # Centroid can absorb this point without exceeding its
                # k-size budget: fold it in (weighted mean update).
                current_mean += (mean - current_mean) * (weight / proposed)
                current_weight = proposed
            else:
                merged_means.append(current_mean)
                merged_weights.append(current_weight)
                weight_so_far += current_weight
                q_lower = min(max(weight_so_far / total, 1e-12), 1.0 - 1e-12)
                k_lower = _k1(q_lower, self.compression)
                current_mean, current_weight = mean, weight

        merged_means.append(current_mean)
        merged_weights.append(current_weight)
        self._means = merged_means
        self._weights = merged_weights
        self._total_weight = total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TDigest(n={self._total_weight:.0f}, "
            f"centroids={len(self._means)}, "
            f"compression={self.compression:.0f})"
        )
