"""Statistics substrate for the edge-performance reproduction.

The paper's methodology (§3.3–3.4) relies on three statistical tools, all of
which are implemented here from scratch:

- :mod:`repro.stats.tdigest` — a merging t-digest (Dunning & Ertl) used for
  streaming percentile estimation inside aggregations (footnote 11 of the
  paper notes t-digests are how this runs in production analytics).
- :mod:`repro.stats.median_ci` — distribution-free confidence intervals for a
  median and for the *difference* of two medians (McKean–Schrader standard
  errors combined in the Price & Bonett style), used to gate every
  degradation/opportunity decision.
- :mod:`repro.stats.weighted` — weighted percentiles and empirical CDFs used
  for traffic-weighted reporting.

:mod:`repro.stats.sampling` provides the seeded random-variate machinery the
synthetic workload generator is built on (mixtures, truncated lognormals,
quantile-matched lognormal fitting).
"""

from repro.stats.bootstrap import (
    bootstrap_median_ci,
    bootstrap_median_difference_ci,
)
from repro.stats.median_ci import (
    MedianComparison,
    compare_medians,
    median_ci,
    median_standard_error,
)
from repro.stats.streaming import (
    StreamingAggregate,
    streaming_compare,
    streaming_median_se,
)
from repro.stats.tdigest import TDigest
from repro.stats.weighted import (
    ecdf,
    weighted_ecdf,
    weighted_fraction_at_most,
    weighted_percentile,
)

__all__ = [
    "MedianComparison",
    "StreamingAggregate",
    "TDigest",
    "bootstrap_median_ci",
    "bootstrap_median_difference_ci",
    "compare_medians",
    "streaming_compare",
    "streaming_median_se",
    "ecdf",
    "median_ci",
    "median_standard_error",
    "weighted_ecdf",
    "weighted_fraction_at_most",
    "weighted_percentile",
]
