"""Transaction coalescing and eligibility rules (§3.2.5).

Real HTTP sessions violate the one-response-at-a-time assumption behind the
goodput model in three ways, each with a prescribed correction:

- **HTTP/2 preemption & multiplexing** — a response's wall-clock time may
  include time spent sending *other* responses. Overlapping responses are
  coalesced into a single larger logical transaction.
- **Back-to-back writes** — a burst of small responses written with no gap at
  the transport layer behaves like one large response and is coalesced so a
  sequence of small responses can still test for the target goodput.
- **Bytes in flight** — if a previous response was still unacknowledged when
  the next response started and the two were *not* coalesced, the later
  transaction's timing is contaminated and it is excluded from goodput
  analysis entirely.

The delayed-ACK correction (ignore the last data packet and its ACK) is
applied where the records are produced — see
:class:`repro.core.records.TransactionRecord` — because it needs NIC-level
timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.records import TransactionRecord

__all__ = [
    "CoalescedTransaction",
    "coalesce_transactions",
    "eligible_transactions",
    "filter_eligible",
]

#: Responses whose NIC writes are separated by at most this gap are treated
#: as back-to-back. The paper uses socket/NIC timestamps to detect a literal
#: zero gap at the transport layer; a small epsilon absorbs clock quantization.
BACK_TO_BACK_GAP_SECONDS = 1e-4


@dataclass(frozen=True)
class CoalescedTransaction:
    """One logical transaction after coalescing — the goodput model's input."""

    first_byte_time: float
    ack_time: float
    total_bytes: int
    last_packet_bytes: int
    cwnd_bytes_at_first_byte: int
    member_count: int
    last_byte_write_time: float

    @property
    def transfer_time(self) -> float:
        return self.ack_time - self.first_byte_time

    @property
    def measured_bytes(self) -> int:
        """Bytes entering the model: the final packet is excluded (§3.2.5)."""
        return self.total_bytes - self.last_packet_bytes


def _overlaps_or_abuts(prev_end: float, next_start: float) -> bool:
    return next_start <= prev_end + BACK_TO_BACK_GAP_SECONDS


def coalesce_transactions(
    transactions: Sequence[TransactionRecord],
) -> List[CoalescedTransaction]:
    """Coalesce overlapping/back-to-back responses into logical transactions.

    Input records must be ordered by ``first_byte_time`` (the load balancer
    emits them in send order). Two adjacent records merge when the second's
    first byte is written before (multiplexing/preemption) or immediately
    after (back-to-back writes) the first's *last byte write* — the
    transport-layer-gap criterion of paper footnote 9. A response written
    only after the previous one was acknowledged (normal request/response
    alternation) never coalesces. Merged transactions take the earliest
    start, the latest ACK and write times, the summed bytes, the last
    member's final-packet size, and the *first* member's Wnic (the window
    when the combined burst began).
    """
    coalesced: List[CoalescedTransaction] = []
    previous_start = -float("inf")
    for record in transactions:
        if record.first_byte_time < previous_start:
            raise ValueError("transactions must be ordered by first_byte_time")
        previous_start = record.first_byte_time
        record_last_write = (
            record.last_byte_write_time
            if record.last_byte_write_time is not None
            else record.first_byte_time
        )
        if coalesced and _overlaps_or_abuts(
            coalesced[-1].last_byte_write_time, record.first_byte_time
        ):
            prev = coalesced[-1]
            coalesced[-1] = CoalescedTransaction(
                first_byte_time=prev.first_byte_time,
                ack_time=max(prev.ack_time, record.ack_time),
                total_bytes=prev.total_bytes + record.response_bytes,
                last_packet_bytes=record.last_packet_bytes,
                cwnd_bytes_at_first_byte=prev.cwnd_bytes_at_first_byte,
                member_count=prev.member_count + 1,
                last_byte_write_time=max(
                    prev.last_byte_write_time, record_last_write
                ),
            )
        else:
            coalesced.append(
                CoalescedTransaction(
                    first_byte_time=record.first_byte_time,
                    ack_time=record.ack_time,
                    total_bytes=record.response_bytes,
                    last_packet_bytes=record.last_packet_bytes,
                    cwnd_bytes_at_first_byte=record.cwnd_bytes_at_first_byte,
                    member_count=1,
                    last_byte_write_time=record_last_write,
                )
            )
    return coalesced


def eligible_transactions(
    transactions: Sequence[TransactionRecord],
) -> List[CoalescedTransaction]:
    """Coalesce, then drop transactions contaminated by bytes in flight.

    A coalesced transaction is ineligible when the record that *opened* it
    reported unacknowledged bytes from an earlier, non-coalesced response
    (§3.2.5 "Bytes in Flight"). The session's first transaction is always
    eligible — any bytes in flight at that point are handshake/TLS bytes,
    not an earlier response.
    """
    return filter_eligible(transactions, coalesce_transactions(transactions))


def filter_eligible(
    transactions: Sequence[TransactionRecord],
    coalesced: Sequence[CoalescedTransaction],
) -> List[CoalescedTransaction]:
    """Apply the bytes-in-flight rule to an already-coalesced sequence.

    ``coalesced`` must be ``coalesce_transactions(transactions)``; exposed
    separately so callers that need both the coalesced and the eligible
    counts (methodology accounting) coalesce only once.
    """
    eligible: List[CoalescedTransaction] = []
    opener_index = 0
    for position, txn in enumerate(coalesced):
        opener = transactions[opener_index]
        if position == 0 or opener.bytes_in_flight_at_start == 0:
            eligible.append(txn)
        opener_index += txn.member_count
    return eligible
