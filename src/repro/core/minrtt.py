"""Windowed MinRTT estimation (§3.1).

MinRTT is "the minimum round-trip time observed over a configurable window"
as maintained by the Linux kernel's TCP stack; Facebook configures the window
to 5 minutes and records the value at session termination. Because most
sessions end within 5 minutes (§2.3), this effectively captures the
session-lifetime minimum.

:class:`MinRttEstimator` mirrors the kernel's windowed-min filter
(``tcp_min_rtt``): a monotonic deque of (timestamp, rtt) candidates where
newer, smaller samples evict older, larger ones, and entries older than the
window expire. The smoothed-RTT estimator used for RTO bookkeeping (sRTT,
RFC 6298 coefficients) is included for completeness — the paper records it
but deliberately bases its analysis on MinRTT because RTT *variation* mostly
reflects last-mile conditions, not the routes being studied.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.constants import MINRTT_WINDOW_SECONDS

__all__ = ["MinRttEstimator", "SmoothedRttEstimator"]


class MinRttEstimator:
    """Windowed minimum RTT filter.

    >>> est = MinRttEstimator(window_seconds=10.0)
    >>> est.update(0.0, 0.050)
    >>> est.update(1.0, 0.040)
    >>> est.current(1.0)
    0.04
    >>> est.update(12.0, 0.060)   # the 40 ms sample has expired
    >>> est.current(12.0)
    0.06
    """

    def __init__(self, window_seconds: float = MINRTT_WINDOW_SECONDS):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._samples: Deque[Tuple[float, float]] = deque()
        self._lifetime_min: Optional[float] = None
        self._sample_count = 0

    def update(self, now: float, rtt_seconds: float) -> None:
        """Feed one RTT sample observed at time ``now``."""
        if rtt_seconds <= 0:
            raise ValueError("rtt_seconds must be positive")
        self._sample_count += 1
        if self._lifetime_min is None or rtt_seconds < self._lifetime_min:
            self._lifetime_min = rtt_seconds
        self._expire(now)
        # Monotonic deque: drop candidates that can never be the window min
        # again because this sample is newer and no larger.
        while self._samples and self._samples[-1][1] >= rtt_seconds:
            self._samples.pop()
        self._samples.append((now, rtt_seconds))

    def current(self, now: float) -> Optional[float]:
        """MinRTT over the trailing window ending at ``now``."""
        self._expire(now)
        if not self._samples:
            return None
        return self._samples[0][1]

    def at_termination(self, now: float) -> Optional[float]:
        """The value the load balancer records when the session closes.

        Falls back to the lifetime minimum when the window has gone empty
        (an idle tail longer than the window) — matching the paper's note
        that recording at termination "effectively captures the minimum RTT
        observed over the session's lifetime" for typical sessions.
        """
        windowed = self.current(now)
        if windowed is not None:
            return windowed
        return self._lifetime_min

    @property
    def sample_count(self) -> int:
        return self._sample_count

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()


class SmoothedRttEstimator:
    """RFC 6298 smoothed RTT / RTT variance (kernel ``srtt``/``rttvar``).

    Used by the simulator for retransmission timeouts; the analysis layer
    intentionally does not consume it (§3.1 explains why MinRTT is the
    route-quality signal).
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0
    MIN_RTO = 0.2   # Linux lower bound (200 ms)
    MAX_RTO = 120.0

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None

    def update(self, rtt_seconds: float) -> None:
        if rtt_seconds <= 0:
            raise ValueError("rtt_seconds must be positive")
        if self.srtt is None:
            self.srtt = rtt_seconds
            self.rttvar = rtt_seconds / 2.0
            return
        self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
            self.srtt - rtt_seconds
        )
        self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt_seconds

    @property
    def rto(self) -> float:
        """Current retransmission timeout."""
        if self.srtt is None:
            return 1.0  # RFC 6298 initial RTO
        rto = self.srtt + self.K * (self.rttvar or 0.0)
        return min(max(rto, self.MIN_RTO), self.MAX_RTO)
