"""Server-side goodput estimation — the paper's core contribution (§3.2).

The method answers two questions per HTTP transaction:

1. **Can this transaction test for a target goodput?** (§3.2.2) Small
   responses and cold congestion windows cannot exercise a target rate, so
   their low measured goodput says nothing about the network. We model TCP
   slow start under *ideal* conditions — cwnd doubling per round trip,
   starting from ``Wstart`` — and compute the maximum goodput any single
   round trip could demonstrate (``Gtestable``, eqs. 1–3 of the paper).
   ``Wstart`` chains across the session: it is the max of the measured cwnd
   when the first response byte hit the NIC (``Wnic``) and the *ideal* cwnd
   at the end of the previous transaction, so that a cwnd collapsed by real
   losses still counts as evidence of poor performance rather than being
   excluded (§3.2.2, last paragraph).

2. **Did a capable transaction achieve the target?** (§3.2.3) We compare the
   measured transfer time ``Ttotal`` against the transfer time of a
   best-case model transaction through a bottleneck of rate ``R``
   (``Tmodel(R)``): cwnd doubling until the window supports ``R``, then
   perfect delivery at ``R``, with MinRTT as the best-case RTT. If
   ``Ttotal <= Tmodel(R)`` the real transfer delivered at least ``R``.

Worked example (Figure 4 of the paper, 60 ms MinRTT, 1500 B packets,
initial cwnd 10):

>>> mss = 1500
>>> txn1 = max_testable_goodput(2 * mss, 10 * mss, 0.060)
>>> round(txn1 * 8 / 1e6, 1)   # 0.4 Mbps
0.4
>>> txn2 = max_testable_goodput(24 * mss, 10 * mss, 0.060)
>>> round(txn2 * 8 / 1e6, 1)   # 2.8 Mbps (its second round trip)
2.8
>>> w3 = ideal_wstart(24 * mss, 10 * mss)  # cwnd grown by txn2 under ideal net
>>> w3 // mss
20
>>> txn3 = max_testable_goodput(14 * mss, w3, 0.060)
>>> round(txn3 * 8 / 1e6, 1)   # 2.8 Mbps, single round trip of 14 packets
2.8

All rates in this module are **bytes per second** and sizes are bytes;
convert at the call sites that speak Mbps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC

__all__ = [
    "GoodputAssessment",
    "assess_transaction",
    "estimate_delivery_rate",
    "ideal_round_trips",
    "ideal_wstart",
    "max_testable_goodput",
    "model_transfer_time",
    "naive_goodput",
    "slow_start_rounds_for_rate",
    "window_at_round",
]

#: Hard cap on modelled slow-start doublings. 2**60 bytes dwarfs any real
#: transfer; this only guards against pathological inputs.
_MAX_ROUNDS = 60


def ideal_round_trips(total_bytes: int, wstart_bytes: int) -> int:
    """Round trips ``m`` to transfer ``total_bytes`` under ideal slow start.

    Equation (1) of the paper: ``m = ceil(log2(Btotal / Wstart + 1))`` —
    round ``n`` can carry ``2**(n-1) * Wstart`` bytes, so ``m`` rounds carry
    ``Wstart * (2**m - 1)``.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if wstart_bytes <= 0:
        raise ValueError("wstart_bytes must be positive")
    ratio = total_bytes / wstart_bytes + 1.0
    m = math.ceil(math.log2(ratio) - 1e-12)
    return max(m, 1)


def window_at_round(round_index: int, wstart_bytes: int) -> int:
    """Ideal cwnd (bytes) at the start of round ``n`` — eq. (2): WSS(n).

    ``round_index`` is 1-based like the paper's ``n``; WSS(1) = Wstart.
    """
    if round_index < 1:
        raise ValueError("round_index is 1-based")
    if round_index > _MAX_ROUNDS:
        raise ValueError("round_index implausibly large")
    return (2 ** (round_index - 1)) * wstart_bytes


def ideal_wstart(prev_total_bytes: int, prev_wstart_bytes: int) -> int:
    """Ideal cwnd after a transaction completes: WSS(m) of the previous one.

    Used to chain ``Wstart`` across transactions (§3.2.2): the next
    transaction's ``Wstart`` is ``max(Wnic, WSS(m))`` where ``m`` is the
    previous transaction's ideal round-trip count. WSS(m) is a lower bound
    on the ideal next window because growth during the final (possibly
    partial) round is ignored (paper footnote 4).
    """
    m = ideal_round_trips(prev_total_bytes, prev_wstart_bytes)
    return window_at_round(m, prev_wstart_bytes)


def _bytes_per_round(total_bytes: int, wstart_bytes: int) -> tuple:
    """(bytes in penultimate round, bytes in final round) under ideal growth."""
    m = ideal_round_trips(total_bytes, wstart_bytes)
    if m == 1:
        return 0, total_bytes
    sent_before_last = wstart_bytes * ((2 ** (m - 1)) - 1)  # rounds 1..m-1
    final_round = total_bytes - sent_before_last
    penultimate = window_at_round(m - 1, wstart_bytes)
    return penultimate, final_round


def max_testable_goodput(
    total_bytes: int, wstart_bytes: int, min_rtt_seconds: float
) -> float:
    """Maximum goodput (bytes/s) a transaction can demonstrate — eq. (3).

    The best single-round-trip delivery under ideal conditions: the larger
    of the bytes carried in the last and penultimate round trips, divided by
    MinRTT. A transaction can only *test* for rates at or below this.
    """
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    penultimate, final_round = _bytes_per_round(total_bytes, wstart_bytes)
    return max(penultimate, final_round) / min_rtt_seconds


def slow_start_rounds_for_rate(
    rate_bytes_per_sec: float, wnic_bytes: int, min_rtt_seconds: float
) -> int:
    """Rounds of doubling (from Wnic) until the cwnd supports ``rate``.

    The model congestion control (§3.2.3) doubles the cwnd each round trip
    until ``cwnd >= rate * MinRTT`` (the BDP at the target rate), then sends
    at exactly ``rate``. Returns ``n >= 0``.
    """
    if rate_bytes_per_sec <= 0:
        raise ValueError("rate must be positive")
    needed = rate_bytes_per_sec * min_rtt_seconds
    if wnic_bytes >= needed:
        return 0
    n = math.ceil(math.log2(needed / wnic_bytes) - 1e-12)
    return min(max(n, 0), _MAX_ROUNDS)


def model_transfer_time(
    rate_bytes_per_sec: float,
    total_bytes: int,
    wnic_bytes: int,
    min_rtt_seconds: float,
) -> float:
    """Best-case transfer time through a bottleneck of ``rate`` — Tmodel(R).

    ``n`` slow-start round trips (cwnd doubling from ``Wnic``) carry
    ``Wnic * (2**n - 1)`` bytes, the remainder crosses the bottleneck at
    ``rate``, and one final MinRTT covers the last acknowledgement:

        Tmodel(R) = n * MinRTT + (Btotal - SS(n)) / R + MinRTT

    ``n`` is the doublings needed before the cwnd covers the BDP of ``rate``,
    capped at ``m - 1`` (the transfer cannot spend more sending rounds in
    slow start than the ideal transfer uses in total). The cap keeps the
    paper's two anchor cases consistent: short responses reduce to
    ``Btotal / R + MinRTT`` (their single-RTT example charges the full
    bottleneck transmission time even though the response fits in one
    window), and large responses pay ``n`` doubling rounds before streaming
    at ``R``. With the cap, Tmodel is continuous and strictly decreasing in
    ``R``, approaching the ideal slow-start floor ``m * MinRTT`` as
    ``R -> inf``.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if wnic_bytes <= 0:
        raise ValueError("wnic_bytes must be positive")
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")

    m = ideal_round_trips(total_bytes, wnic_bytes)
    n = slow_start_rounds_for_rate(rate_bytes_per_sec, wnic_bytes, min_rtt_seconds)
    n = min(n, m - 1)
    slow_start_bytes = wnic_bytes * ((2 ** n) - 1)
    remaining = total_bytes - slow_start_bytes
    return n * min_rtt_seconds + remaining / rate_bytes_per_sec + min_rtt_seconds


def estimate_delivery_rate(
    total_bytes: int,
    transfer_time_seconds: float,
    wnic_bytes: int,
    min_rtt_seconds: float,
    max_rate_bytes_per_sec: float = 125e6,  # 1 Gbps ceiling
) -> float:
    """Largest rate ``R`` with ``Ttotal <= Tmodel(R)`` (bytes/s).

    This is the paper's delivery-rate estimate: the fastest modelled
    bottleneck that the real transfer kept up with. For single-round-trip
    responses it reduces to ``Btotal / (Ttotal - MinRTT)``.

    ``Tmodel`` is piecewise in the number of slow-start rounds ``n``; within
    a branch the candidate rate has the closed form
    ``R = (Btotal - SS(n)) / (Ttotal - (n + 1) * MinRTT)``. We evaluate every
    consistent branch and take the best, then clamp to
    ``max_rate_bytes_per_sec`` (transfers faster than the ideal slow-start
    time have unbounded model rate).
    """
    if transfer_time_seconds <= 0:
        raise ValueError("transfer_time_seconds must be positive")

    # Faster than (or equal to) the ideal slow-start completion: the network
    # never limited this transfer within model resolution.
    m = ideal_round_trips(total_bytes, wnic_bytes)
    if transfer_time_seconds <= m * min_rtt_seconds:
        return max_rate_bytes_per_sec

    best_rate = 0.0
    for n in range(0, m):
        slow_start_bytes = wnic_bytes * ((2 ** n) - 1)
        if slow_start_bytes >= total_bytes:
            break
        denom = transfer_time_seconds - (n + 1) * min_rtt_seconds
        if denom <= 0:
            continue
        rate = (total_bytes - slow_start_bytes) / denom
        # Consistency: n must be exactly the (capped) doublings this rate
        # requires under the model.
        required = min(
            slow_start_rounds_for_rate(rate, wnic_bytes, min_rtt_seconds), m - 1
        )
        if required != n:
            continue
        best_rate = max(best_rate, rate)

    if best_rate == 0.0:
        # No branch was self-consistent (can happen at branch boundaries);
        # fall back to a conservative scan for the largest achievable rate.
        low, high = 1.0, max_rate_bytes_per_sec
        if transfer_time_seconds > model_transfer_time(
            low, total_bytes, wnic_bytes, min_rtt_seconds
        ):
            return 0.0
        for _ in range(64):
            mid = math.sqrt(low * high)
            if transfer_time_seconds <= model_transfer_time(
                mid, total_bytes, wnic_bytes, min_rtt_seconds
            ):
                low = mid
            else:
                high = mid
        best_rate = low
    return min(best_rate, max_rate_bytes_per_sec)


def naive_goodput(total_bytes: int, transfer_time_seconds: float) -> float:
    """The simple estimator the paper compares against (§4): Btotal / Ttotal.

    Ignores slow start and propagation delay, so it systematically
    underestimates — the paper reports it drags the median HDratio down to
    0.69 from the model's value.
    """
    if transfer_time_seconds <= 0:
        raise ValueError("transfer_time_seconds must be positive")
    return total_bytes / transfer_time_seconds


@dataclass(frozen=True)
class GoodputAssessment:
    """Outcome of assessing one transaction against a target rate.

    ``can_test`` — Gtestable >= target (§3.2.2).
    ``achieved`` — Ttotal <= Tmodel(target); only meaningful when
    ``can_test`` is true.
    ``next_wstart_bytes`` — ideal cwnd to chain into the next transaction.
    """

    can_test: bool
    achieved: bool
    testable_goodput: float
    wstart_bytes: int
    next_wstart_bytes: int
    model_time_seconds: Optional[float] = None


def assess_transaction(
    total_bytes: int,
    transfer_time_seconds: float,
    wnic_bytes: int,
    min_rtt_seconds: float,
    prev_ideal_wstart_bytes: int = 0,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> GoodputAssessment:
    """Full §3.2 assessment of one (already corrected) transaction.

    ``total_bytes``/``transfer_time_seconds`` must already have the
    delayed-ACK correction applied (last packet and its ACK excluded —
    see :class:`repro.core.records.TransactionRecord`).

    ``prev_ideal_wstart_bytes`` is the chained ideal window from the previous
    transaction (0 for the first). ``Wstart = max(Wnic, prev_ideal)``.
    """
    wstart = max(wnic_bytes, prev_ideal_wstart_bytes)
    testable = max_testable_goodput(total_bytes, wstart, min_rtt_seconds)
    next_wstart = ideal_wstart(total_bytes, wstart)

    can_test = testable >= target_rate_bytes_per_sec
    if not can_test:
        return GoodputAssessment(
            can_test=False,
            achieved=False,
            testable_goodput=testable,
            wstart_bytes=wstart,
            next_wstart_bytes=next_wstart,
        )

    model_time = model_transfer_time(
        target_rate_bytes_per_sec, total_bytes, wstart, min_rtt_seconds
    )
    achieved = transfer_time_seconds <= model_time
    return GoodputAssessment(
        can_test=True,
        achieved=achieved,
        testable_goodput=testable,
        wstart_bytes=wstart,
        next_wstart_bytes=next_wstart,
        model_time_seconds=model_time,
    )
