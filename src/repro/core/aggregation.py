"""Aggregation of session samples into user groups and time windows (§3.3).

A **user group** is (PoP, client BGP prefix, client country); an
**aggregation** is one user group's samples for one egress route within one
15-minute window. Each aggregation summarizes its sessions as:

- ``MinRTT_P50`` — median of the sessions' MinRTTs (milliseconds);
- ``HDratio_P50`` — median HDratio across sessions that had at least one
  transaction test for HD goodput;
- traffic weight — total bytes carried, used to weight every reported
  distribution (§3.3's argument that prefixes are arbitrary units).

Medians (not means) are used to track shifts of the distribution without
being skewed by second-scale tail RTTs or HDratio's bimodality. The raw
per-session values are retained inside each aggregation because the
comparison layer (§3.4) needs them to compute distribution-free confidence
intervals; a t-digest is maintained alongside as the streaming-production
analogue (paper footnote 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.constants import AGGREGATION_WINDOW_SECONDS, MIN_AGGREGATION_SAMPLES
from repro.core.hdratio import compute_hdratio
from repro.core.records import RouteInfo, SessionSample, UserGroupKey
from repro.stats.tdigest import TDigest
from repro.stats.weighted import percentile

__all__ = ["Aggregation", "AggregationStore", "window_index"]


def window_index(timestamp: float, window_seconds: float = AGGREGATION_WINDOW_SECONDS) -> int:
    """Index of the fixed time window containing ``timestamp``."""
    return int(math.floor(timestamp / window_seconds))


@dataclass
class Aggregation:
    """Samples for one (user group, route preference rank, window).

    ``route_rank`` is 0 for the policy-preferred route and 1+ for the
    alternates measured in parallel (§2.2.3): keeping ranks separate is what
    makes the §6 preferred-vs-alternate comparison possible.
    """

    group: UserGroupKey
    route_rank: int
    window: int
    min_rtts_ms: List[float] = field(default_factory=list)
    hdratios: List[float] = field(default_factory=list)
    traffic_bytes: int = 0
    session_count: int = 0
    route: Optional["RouteInfo"] = None
    _rtt_digest: Optional[TDigest] = field(default=None, repr=False)
    _hd_digest: Optional[TDigest] = field(default=None, repr=False)

    def add(self, sample: SessionSample, hdratio: Optional[float]) -> None:
        """Add one session sample (HDratio may be None: not testable)."""
        self.min_rtts_ms.append(sample.min_rtt_ms)
        if self.route is None:
            self.route = sample.route
        if self._rtt_digest is not None:
            self._rtt_digest.add(sample.min_rtt_ms)
        if hdratio is not None:
            self.hdratios.append(hdratio)
            if self._hd_digest is not None:
                self._hd_digest.add(hdratio)
        self.traffic_bytes += sample.bytes_sent
        self.session_count += 1

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    @property
    def minrtt_p50(self) -> float:
        if not self.min_rtts_ms:
            raise ValueError("empty aggregation has no MinRTT_P50")
        return percentile(self.min_rtts_ms, 50.0)

    @property
    def hdratio_p50(self) -> Optional[float]:
        if not self.hdratios:
            return None
        return percentile(self.hdratios, 50.0)

    def minrtt_p50_streaming(self) -> float:
        """The t-digest estimate of MinRTT_P50 (production-analytics path)."""
        if self._rtt_digest is None:
            raise ValueError("aggregation was built without streaming digests")
        return self._rtt_digest.median()

    def hdratio_p50_streaming(self) -> Optional[float]:
        if self._hd_digest is None:
            raise ValueError("aggregation was built without streaming digests")
        if self._hd_digest.total_weight == 0:
            return None
        return self._hd_digest.median()

    # ------------------------------------------------------------------ #
    # Merging (parallel/sharded ingestion)
    # ------------------------------------------------------------------ #
    def merge(self, other: "Aggregation") -> "Aggregation":
        """Fold a later partition's state for the same key into this one.

        ``other`` must describe the same (group, route rank, window) and its
        samples must come later in the stream than this aggregation's (the
        sharded pipeline merges partitions in stream order), so the raw
        value lists are concatenated — which keeps the per-session order,
        and hence medians and McKean–Schrader CIs, bit-identical to a
        single-process pass.
        """
        if (self.group, self.route_rank, self.window) != (
            other.group,
            other.route_rank,
            other.window,
        ):
            raise ValueError("cannot merge aggregations with different keys")
        self.min_rtts_ms.extend(other.min_rtts_ms)
        self.hdratios.extend(other.hdratios)
        self.traffic_bytes += other.traffic_bytes
        self.session_count += other.session_count
        if self.route is None:
            self.route = other.route
        if self._rtt_digest is not None and other._rtt_digest is not None:
            self._rtt_digest.merge(other._rtt_digest)
        if self._hd_digest is not None and other._hd_digest is not None:
            self._hd_digest.merge(other._hd_digest)
        return self

    @property
    def has_min_samples(self) -> bool:
        return self.session_count >= MIN_AGGREGATION_SAMPLES

    @property
    def has_min_hd_samples(self) -> bool:
        return len(self.hdratios) >= MIN_AGGREGATION_SAMPLES


class AggregationStore:
    """Groups a stream of session samples into aggregations.

    The store is keyed by (user group, route rank, window index). Samples
    without a route annotation are rejected — the measurement pipeline
    guarantees route annotation at session close (§2.2.2).
    """

    def __init__(
        self,
        window_seconds: float = AGGREGATION_WINDOW_SECONDS,
        with_digests: bool = True,
        metrics=None,
    ):
        self.window_seconds = window_seconds
        self.with_digests = with_digests
        #: Optional :class:`repro.obs.MetricsRegistry`. Only :meth:`add`
        #: counts into it (one count per sample routed), never the merge
        #: path — so sharded rebuilds keep counters plan-invariant.
        self.metrics = metrics
        self._store: Dict[Tuple[UserGroupKey, int, int], Aggregation] = {}

    def key_for(self, sample: SessionSample) -> Tuple[UserGroupKey, int, int]:
        """The (user group, route rank, window) key ``sample`` lands in."""
        if sample.route is None:
            raise ValueError("sample is missing its egress route annotation")
        group = UserGroupKey(
            pop=sample.pop, prefix=sample.route.prefix, country=sample.client_country
        )
        window = window_index(sample.end_time, self.window_seconds)
        return (group, sample.route.preference_rank, window)

    def add(self, sample: SessionSample, hdratio: Optional[float] = None) -> Aggregation:
        """Route one sample into its aggregation; returns the aggregation.

        If ``hdratio`` is not supplied it is computed from the sample's
        transaction records.
        """
        key = self.key_for(sample)
        if hdratio is None and sample.transactions:
            hdratio = compute_hdratio(sample)
        aggregation = self._store.get(key)
        if aggregation is None:
            group, rank, window = key
            aggregation = Aggregation(group=group, route_rank=rank, window=window)
            if self.with_digests:
                aggregation._rtt_digest = TDigest()
                aggregation._hd_digest = TDigest()
            self._store[key] = aggregation
        aggregation.add(sample, hdratio)
        if self.metrics is not None:
            self.metrics.inc("core.aggregation.samples")
            if hdratio is not None:
                self.metrics.inc("core.aggregation.hd_samples")
        return aggregation

    def add_all(self, samples: Iterable[SessionSample]) -> None:
        for sample in samples:
            self.add(sample)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._store)

    def get(
        self, group: UserGroupKey, route_rank: int, window: int
    ) -> Optional[Aggregation]:
        return self._store.get((group, route_rank, window))

    def groups(self) -> List[UserGroupKey]:
        """Distinct user groups, in insertion order."""
        seen: Dict[UserGroupKey, None] = {}
        for group, _, _ in self._store:
            seen.setdefault(group)
        return list(seen)

    def windows(self) -> List[int]:
        """Distinct window indices, sorted."""
        return sorted({window for _, _, window in self._store})

    def group_windows(self, group: UserGroupKey, route_rank: int = 0) -> List[int]:
        """Windows in which ``group`` has samples at ``route_rank``, sorted."""
        return sorted(
            window
            for key_group, rank, window in self._store
            if key_group == group and rank == route_rank
        )

    def group_series(
        self, group: UserGroupKey, route_rank: int = 0
    ) -> List[Aggregation]:
        """All aggregations of a group at a rank, ordered by window."""
        items = [
            aggregation
            for (key_group, rank, _), aggregation in self._store.items()
            if key_group == group and rank == route_rank
        ]
        return sorted(items, key=lambda aggregation: aggregation.window)

    def route_ranks(self, group: UserGroupKey, window: int) -> List[int]:
        """Route ranks with data for ``group`` in ``window``, sorted."""
        return sorted(
            rank
            for key_group, rank, key_window in self._store
            if key_group == group and key_window == window
        )

    def all_aggregations(self) -> List[Aggregation]:
        return list(self._store.values())

    def items(self) -> List[Tuple[Tuple[UserGroupKey, int, int], Aggregation]]:
        """(key, aggregation) pairs in insertion order."""
        return list(self._store.items())

    # ------------------------------------------------------------------ #
    # Merging (parallel/sharded ingestion)
    # ------------------------------------------------------------------ #
    def put(self, key: Tuple[UserGroupKey, int, int], aggregation: Aggregation) -> None:
        """Install (or fold into) an aggregation under ``key``.

        Used by the sharded pipeline's merger to rebuild a store in exact
        serial insertion order; ``key`` must match the aggregation's own
        identity fields.
        """
        if key != (aggregation.group, aggregation.route_rank, aggregation.window):
            raise ValueError("key does not match the aggregation's identity")
        existing = self._store.get(key)
        if existing is None:
            self._store[key] = aggregation
        else:
            existing.merge(aggregation)

    def merge_store(self, other: "AggregationStore") -> "AggregationStore":
        """Key-wise merge of another store's aggregations (stream order:
        ``other`` must hold samples later in the stream than ``self``)."""
        if other.window_seconds != self.window_seconds:
            raise ValueError("cannot merge stores with different windows")
        for key, aggregation in other._store.items():
            self.put(key, aggregation)
        return self
