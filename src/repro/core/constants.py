"""Constants fixed by the paper's methodology.

Every number here is taken directly from the text of "Internet Performance
from Facebook's Edge" (IMC 2019) and referenced back to the section that
defines it.
"""

from __future__ import annotations

#: Target goodput for the HD capability test: 2.5 Mbps, "the minimum required
#: to stream HD video" (§3.2.1). Expressed in bytes/second because the model
#: works in bytes.
HD_GOODPUT_BPS = 2.5e6
HD_GOODPUT_BYTES_PER_SEC = HD_GOODPUT_BPS / 8.0

#: Kernel MinRTT tracking window (§3.1): "in Facebook's environment this
#: window is set to 5 minutes".
MINRTT_WINDOW_SECONDS = 300.0

#: Aggregation time window (§3.3): measurements are grouped into 15 minute
#: windows per user group.
AGGREGATION_WINDOW_SECONDS = 900.0

#: Confidence level for all median-difference comparisons (§3.4.1).
CONFIDENCE_LEVEL = 0.95

#: Minimum samples in an aggregation before comparisons are attempted
#: (§3.4.1): "we only consider aggregations with at least 30 samples".
MIN_AGGREGATION_SAMPLES = 30

#: "Tight CI" validity rule (§3.4.1): the CI of a MinRTT_P50 difference must
#: be narrower than 10 ms, and of an HDratio_P50 difference narrower than 0.1,
#: for the comparison to be considered valid.
MAX_CI_WIDTH_MINRTT_MS = 10.0
MAX_CI_WIDTH_HDRATIO = 0.1

#: Default decision thresholds used throughout §§5–6: 5 ms for MinRTT_P50 and
#: 0.05 for HDratio_P50.
DEFAULT_MINRTT_THRESHOLD_MS = 5.0
DEFAULT_HDRATIO_THRESHOLD = 0.05

#: Degradation baselines (§3.4): baseline MinRTT_P50 is the 10th percentile of
#: the preferred route's per-window MinRTT_P50 distribution; baseline
#: HDratio_P50 is the 90th percentile of its distribution.
BASELINE_MINRTT_PERCENTILE = 10.0
BASELINE_HDRATIO_PERCENTILE = 90.0

#: Temporal class thresholds (§3.4.2): persistent requires degradation or
#: opportunity in >= 75% of valid windows; diurnal requires a recurring
#: fixed 15-minute window on >= 5 distinct days; groups need traffic in
#: >= 60% of windows to be classified at all.
PERSISTENT_WINDOW_FRACTION = 0.75
DIURNAL_MIN_DAYS = 5
MIN_COVERAGE_FRACTION = 0.60

#: Linux's delayed-ACK timeout lower bound mentioned in §3.2.5 ("30ms+ for
#: Linux"); the simulator uses 40 ms by default.
DELAYED_ACK_TIMEOUT_SECONDS = 0.040

#: Conventional TCP constants used by the models and the simulator.
DEFAULT_MSS_BYTES = 1500
DEFAULT_INITIAL_CWND_PACKETS = 10

#: Number of alternate routes continuously measured per prefix (§6.2): "by
#: default ... the two next best paths to the destination".
DEFAULT_ALTERNATE_ROUTES = 2

#: Fraction of sampled sessions kept on the policy-preferred path (§6.2):
#: "approximately 47% of sampled HTTP sessions are routed via the best path".
PREFERRED_ROUTE_SAMPLE_FRACTION = 0.47

#: Share of measured traffic filtered out as hosting providers / VPNs (§2.2.4).
HOSTING_PROVIDER_TRAFFIC_FRACTION = 0.02
