"""HDratio — per-session ability to sustain the HD goodput target (§3.2.4).

``HDratio`` is the paper's summary metric for achievable goodput: for each
HTTP session, the ratio of transactions that *achieved* a delivery rate of at
least HD goodput (2.5 Mbps) to the transactions that were *capable of
testing* for it. Sessions where no transaction could test are assigned no
HDratio at all (``None``) — the absence of a test is not a performance
signal (§3.2.2).

The per-session (rather than per-transaction) definition prevents paths that
carry many-transaction sessions from being over-represented in aggregates
(§3.2.4, referencing Figure 3's heavy tail of transaction counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.coalesce import (
    CoalescedTransaction,
    coalesce_transactions,
    filter_eligible,
)
from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import assess_transaction, naive_goodput
from repro.core.records import SessionSample, TransactionRecord

__all__ = ["SessionGoodput", "compute_hdratio", "session_goodput", "naive_hdratio"]


@dataclass(frozen=True)
class SessionGoodput:
    """Per-session goodput assessment summary.

    ``hdratio`` is ``None`` when no transaction could test for the target —
    such sessions are excluded from HDratio aggregates rather than counted
    as zero.

    The count fields form the §3.2 funnel, in order: ``raw_count`` records
    in, ``coalesced_count`` logical transactions after coalescing (§3.2.5),
    ``eligible`` after the bytes-in-flight rule, ``tested`` Gtestable at
    the target (§3.2.2), ``achieved`` at or under Tmodel (§3.2.3). The
    observability layer sums these per-session funnels into the pipeline's
    methodology counters.
    """

    tested: int
    achieved: int
    eligible: int
    raw_count: int = 0
    coalesced_count: int = 0

    @property
    def hdratio(self) -> Optional[float]:
        if self.tested == 0:
            return None
        return self.achieved / self.tested

    @property
    def merged_away(self) -> int:
        """Raw records absorbed into another transaction by coalescing."""
        return self.raw_count - self.coalesced_count

    @property
    def inflight_dropped(self) -> int:
        """Coalesced transactions excluded by the bytes-in-flight rule."""
        return self.coalesced_count - self.eligible


def _assess_session(
    transactions: Sequence[CoalescedTransaction],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float,
    use_model: bool,
) -> Tuple[int, int]:
    """(tested, achieved) over already-eligible coalesced transactions."""
    tested = 0
    achieved = 0
    prev_ideal_wstart = 0
    for txn in transactions:
        measured_bytes = txn.measured_bytes
        if measured_bytes <= 0:
            # Single-packet response: nothing left after the delayed-ACK
            # correction, so it cannot inform goodput. It still grows the
            # ideal window chain by its full size.
            prev_ideal_wstart = max(prev_ideal_wstart, txn.cwnd_bytes_at_first_byte)
            continue
        assessment = assess_transaction(
            total_bytes=measured_bytes,
            transfer_time_seconds=txn.transfer_time,
            wnic_bytes=txn.cwnd_bytes_at_first_byte,
            min_rtt_seconds=min_rtt_seconds,
            prev_ideal_wstart_bytes=prev_ideal_wstart,
            target_rate_bytes_per_sec=target_rate_bytes_per_sec,
        )
        prev_ideal_wstart = assessment.next_wstart_bytes
        if not assessment.can_test:
            continue
        tested += 1
        if use_model:
            if assessment.achieved:
                achieved += 1
        else:
            # Ablation path: the naive Btotal/Ttotal estimator (§4), still
            # gated by the same capability test.
            if txn.transfer_time > 0 and (
                naive_goodput(measured_bytes, txn.transfer_time)
                >= target_rate_bytes_per_sec
            ):
                achieved += 1
    return tested, achieved


def session_goodput(
    transactions: Sequence[TransactionRecord],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> SessionGoodput:
    """Assess a session's raw transaction records against a target rate.

    Applies, in order: coalescing, bytes-in-flight eligibility, the
    capability test (Gtestable with the chained ideal Wstart), and the
    achievement test (Tmodel comparison).
    """
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    coalesced = coalesce_transactions(transactions)
    eligible = filter_eligible(transactions, coalesced)
    tested, achieved = _assess_session(
        eligible, min_rtt_seconds, target_rate_bytes_per_sec, use_model=True
    )
    return SessionGoodput(
        tested=tested,
        achieved=achieved,
        eligible=len(eligible),
        raw_count=len(transactions),
        coalesced_count=len(coalesced),
    )


def naive_hdratio(
    transactions: Sequence[TransactionRecord],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> Optional[float]:
    """HDratio under the naive Btotal/Ttotal estimator — the §4 ablation."""
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    coalesced = coalesce_transactions(transactions)
    eligible = filter_eligible(transactions, coalesced)
    tested, achieved = _assess_session(
        eligible, min_rtt_seconds, target_rate_bytes_per_sec, use_model=False
    )
    return SessionGoodput(
        tested=tested, achieved=achieved, eligible=len(eligible)
    ).hdratio


def compute_hdratio(
    sample: SessionSample,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> Optional[float]:
    """Convenience wrapper: HDratio for a :class:`SessionSample`."""
    return session_goodput(
        sample.transactions, sample.min_rtt_seconds, target_rate_bytes_per_sec
    ).hdratio
