"""HDratio — per-session ability to sustain the HD goodput target (§3.2.4).

``HDratio`` is the paper's summary metric for achievable goodput: for each
HTTP session, the ratio of transactions that *achieved* a delivery rate of at
least HD goodput (2.5 Mbps) to the transactions that were *capable of
testing* for it. Sessions where no transaction could test are assigned no
HDratio at all (``None``) — the absence of a test is not a performance
signal (§3.2.2).

The per-session (rather than per-transaction) definition prevents paths that
carry many-transaction sessions from being over-represented in aggregates
(§3.2.4, referencing Figure 3's heavy tail of transaction counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.coalesce import CoalescedTransaction, eligible_transactions
from repro.core.constants import HD_GOODPUT_BYTES_PER_SEC
from repro.core.goodput import assess_transaction, naive_goodput
from repro.core.records import SessionSample, TransactionRecord

__all__ = ["SessionGoodput", "compute_hdratio", "session_goodput", "naive_hdratio"]


@dataclass(frozen=True)
class SessionGoodput:
    """Per-session goodput assessment summary.

    ``hdratio`` is ``None`` when no transaction could test for the target —
    such sessions are excluded from HDratio aggregates rather than counted
    as zero.
    """

    tested: int
    achieved: int
    eligible: int

    @property
    def hdratio(self) -> Optional[float]:
        if self.tested == 0:
            return None
        return self.achieved / self.tested


def _assess_session(
    transactions: Sequence[CoalescedTransaction],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float,
    use_model: bool,
) -> SessionGoodput:
    tested = 0
    achieved = 0
    prev_ideal_wstart = 0
    for txn in transactions:
        measured_bytes = txn.measured_bytes
        if measured_bytes <= 0:
            # Single-packet response: nothing left after the delayed-ACK
            # correction, so it cannot inform goodput. It still grows the
            # ideal window chain by its full size.
            prev_ideal_wstart = max(prev_ideal_wstart, txn.cwnd_bytes_at_first_byte)
            continue
        assessment = assess_transaction(
            total_bytes=measured_bytes,
            transfer_time_seconds=txn.transfer_time,
            wnic_bytes=txn.cwnd_bytes_at_first_byte,
            min_rtt_seconds=min_rtt_seconds,
            prev_ideal_wstart_bytes=prev_ideal_wstart,
            target_rate_bytes_per_sec=target_rate_bytes_per_sec,
        )
        prev_ideal_wstart = assessment.next_wstart_bytes
        if not assessment.can_test:
            continue
        tested += 1
        if use_model:
            if assessment.achieved:
                achieved += 1
        else:
            # Ablation path: the naive Btotal/Ttotal estimator (§4), still
            # gated by the same capability test.
            if txn.transfer_time > 0 and (
                naive_goodput(measured_bytes, txn.transfer_time)
                >= target_rate_bytes_per_sec
            ):
                achieved += 1
    return SessionGoodput(tested=tested, achieved=achieved, eligible=len(transactions))


def session_goodput(
    transactions: Sequence[TransactionRecord],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> SessionGoodput:
    """Assess a session's raw transaction records against a target rate.

    Applies, in order: coalescing, bytes-in-flight eligibility, the
    capability test (Gtestable with the chained ideal Wstart), and the
    achievement test (Tmodel comparison).
    """
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    coalesced = eligible_transactions(transactions)
    return _assess_session(
        coalesced, min_rtt_seconds, target_rate_bytes_per_sec, use_model=True
    )


def naive_hdratio(
    transactions: Sequence[TransactionRecord],
    min_rtt_seconds: float,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> Optional[float]:
    """HDratio under the naive Btotal/Ttotal estimator — the §4 ablation."""
    if min_rtt_seconds <= 0:
        raise ValueError("min_rtt_seconds must be positive")
    coalesced = eligible_transactions(transactions)
    return _assess_session(
        coalesced, min_rtt_seconds, target_rate_bytes_per_sec, use_model=False
    ).hdratio


def compute_hdratio(
    sample: SessionSample,
    target_rate_bytes_per_sec: float = HD_GOODPUT_BYTES_PER_SEC,
) -> Optional[float]:
    """Convenience wrapper: HDratio for a :class:`SessionSample`."""
    return session_goodput(
        sample.transactions, sample.min_rtt_seconds, target_rate_bytes_per_sec
    ).hdratio
