"""Temporal behaviour classification (§3.4.2).

After computing per-window degradation/opportunity verdicts, each user group
is assigned one of four classes, checked in order:

1. **uneventful** — no valid window has the event at the threshold;
2. **continuous** (the paper also says "persistent") — the event occurs in
   at least 75% of valid windows;
3. **diurnal** — some fixed 15-minute time-of-day slot has the event on at
   least 5 distinct days;
4. **episodic** — everything else with at least one event.

Groups with traffic in fewer than 60% of the study's windows are left
unclassified (``None``) — the paper ignores them because a representative
view of the group's time behaviour is impossible (sporadic business-hours
traffic, Cartographer re-steering, etc.).

The classifier also reports the two traffic numbers Table 1 is built from:
the group's total traffic (how widespread a class is) and the traffic sent
*during* event windows (how much traffic the episodes actually affected).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.comparison import WindowVerdict
from repro.core.constants import (
    AGGREGATION_WINDOW_SECONDS,
    DIURNAL_MIN_DAYS,
    MIN_COVERAGE_FRACTION,
    PERSISTENT_WINDOW_FRACTION,
)

__all__ = ["TemporalClass", "GroupClassification", "classify_group"]

#: 15-minute windows per day (96 for the paper's configuration).
WINDOWS_PER_DAY = int(round(86400.0 / AGGREGATION_WINDOW_SECONDS))


class TemporalClass(enum.Enum):
    UNEVENTFUL = "uneventful"
    CONTINUOUS = "continuous"
    DIURNAL = "diurnal"
    EPISODIC = "episodic"


@dataclass(frozen=True)
class GroupClassification:
    """Classification result for one user group at one threshold.

    ``total_traffic_bytes`` covers every window with data (Table 1's blue
    columns); ``event_traffic_bytes`` only windows where the event fired
    (the orange columns).
    """

    temporal_class: Optional[TemporalClass]
    total_traffic_bytes: int
    event_traffic_bytes: int
    valid_windows: int
    event_windows: int
    coverage: float

    @property
    def classified(self) -> bool:
        return self.temporal_class is not None


def classify_group(
    verdicts: Sequence[WindowVerdict],
    threshold: float,
    study_windows: int,
    windows_per_day: int = WINDOWS_PER_DAY,
    coverage_fraction: float = MIN_COVERAGE_FRACTION,
    persistent_fraction: float = PERSISTENT_WINDOW_FRACTION,
    diurnal_min_days: int = DIURNAL_MIN_DAYS,
) -> GroupClassification:
    """Classify one group's verdict series at ``threshold``.

    ``study_windows`` is the total number of windows in the study period
    (for the 60% coverage rule). ``verdicts`` should contain one entry per
    window the group had preferred-route data in, valid or not.
    """
    if study_windows <= 0:
        raise ValueError("study_windows must be positive")

    total_traffic = sum(v.traffic_bytes for v in verdicts)
    coverage = len(verdicts) / study_windows

    valid = [v for v in verdicts if v.valid]
    events = [v for v in valid if v.event_at(threshold)]
    event_traffic = sum(v.traffic_bytes for v in events)

    if coverage < coverage_fraction:
        return GroupClassification(
            temporal_class=None,
            total_traffic_bytes=total_traffic,
            event_traffic_bytes=event_traffic,
            valid_windows=len(valid),
            event_windows=len(events),
            coverage=coverage,
        )

    temporal_class = _classify(
        valid, events, windows_per_day, persistent_fraction, diurnal_min_days
    )
    return GroupClassification(
        temporal_class=temporal_class,
        total_traffic_bytes=total_traffic,
        event_traffic_bytes=event_traffic,
        valid_windows=len(valid),
        event_windows=len(events),
        coverage=coverage,
    )


def _classify(
    valid: List[WindowVerdict],
    events: List[WindowVerdict],
    windows_per_day: int,
    persistent_fraction: float,
    diurnal_min_days: int,
) -> TemporalClass:
    if not events:
        return TemporalClass.UNEVENTFUL
    if valid and len(events) / len(valid) >= persistent_fraction:
        return TemporalClass.CONTINUOUS
    if _is_diurnal(events, windows_per_day, diurnal_min_days):
        return TemporalClass.DIURNAL
    return TemporalClass.EPISODIC


def _is_diurnal(
    events: Sequence[WindowVerdict], windows_per_day: int, min_days: int
) -> bool:
    """True when some fixed time-of-day slot fires on >= ``min_days`` days."""
    days_per_slot: Dict[int, set] = defaultdict(set)
    for verdict in events:
        slot = verdict.window % windows_per_day
        day = verdict.window // windows_per_day
        days_per_slot[slot].add(day)
        if len(days_per_slot[slot]) >= min_days:
            return True
    return False
