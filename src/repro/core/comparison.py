"""Degradation and routing-opportunity comparisons (§3.4, §5, §6).

Two comparisons drive the paper's analyses, both gated by distribution-free
confidence intervals so that measurement noise is never reported as signal:

**Degradation** (§5). Each user group's *baseline* is the 10th percentile of
its preferred route's per-window ``MinRTT_P50`` distribution (90th percentile
for ``HDratio_P50``). A window is degraded at threshold ``t`` when the lower
bound of the CI of (current − baseline) exceeds ``t`` (baseline − current for
HDratio, where lower is worse).

**Opportunity** (§6). Within a window, the preferred route (rank 0) is
compared against the best-performing alternate. An HDratio opportunity
requires the CI lower bound of (alternate − preferred) to exceed the
threshold. A MinRTT opportunity additionally requires the alternate's
HDratio to be statistically equal or better — the paper assumes operators
would never trade goodput for latency.

Comparisons are *valid* only when both sides have ≥30 samples and the CI is
"tight" (<10 ms for MinRTT differences, <0.1 for HDratio differences).
Invalid windows are excluded from analysis rather than guessed at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.aggregation import Aggregation, AggregationStore
from repro.core.constants import (
    BASELINE_HDRATIO_PERCENTILE,
    BASELINE_MINRTT_PERCENTILE,
    CONFIDENCE_LEVEL,
    MAX_CI_WIDTH_HDRATIO,
    MAX_CI_WIDTH_MINRTT_MS,
    MIN_AGGREGATION_SAMPLES,
)
from repro.core.records import UserGroupKey
from repro.stats.median_ci import (
    MedianComparison,
    compare_medians,
    median_standard_error,
    normal_quantile,
)
from repro.stats.weighted import percentile

__all__ = [
    "GroupBaseline",
    "WindowVerdict",
    "compute_baseline",
    "degradation_series",
    "opportunity_series",
]


@dataclass(frozen=True)
class GroupBaseline:
    """Baseline performance of a user group's preferred route (§3.4)."""

    minrtt_p50_ms: Optional[float]
    hdratio_p50: Optional[float]
    window_count: int


@dataclass(frozen=True)
class WindowVerdict:
    """One window's comparison outcome for one metric.

    ``difference`` is oriented so that **positive = the paper's event**
    (degradation for §5, improvement available for §6):

    - MinRTT degradation: ``current − baseline`` (ms).
    - HDratio degradation: ``baseline − current``.
    - MinRTT opportunity: ``preferred − alternate`` (ms).
    - HDratio opportunity: ``alternate − preferred``.

    ``valid`` applies the sample-count and tight-CI rules; ``ci_low`` is what
    thresholds are compared against.
    """

    window: int
    difference: float
    ci_low: float
    ci_high: float
    valid: bool
    traffic_bytes: int
    alternate_rank: Optional[int] = None

    def event_at(self, threshold: float) -> bool:
        """Degraded / improvable at ``threshold`` (CI-lower-bound rule)."""
        return self.valid and self.ci_low > threshold


def compute_baseline(
    series: Sequence[Aggregation],
    minrtt_percentile: float = BASELINE_MINRTT_PERCENTILE,
    hdratio_percentile: float = BASELINE_HDRATIO_PERCENTILE,
) -> GroupBaseline:
    """Baseline MinRTT_P50 / HDratio_P50 over a group's window series.

    Only windows meeting the minimum sample count contribute; the MinRTT
    baseline is the ``p10`` of the per-window medians (best sustained
    latency) and the HDratio baseline the ``p90`` (best sustained goodput).
    """
    rtt_medians = [
        aggregation.minrtt_p50 for aggregation in series if aggregation.has_min_samples
    ]
    hd_medians = [
        aggregation.hdratio_p50
        for aggregation in series
        if aggregation.has_min_hd_samples and aggregation.hdratio_p50 is not None
    ]
    return GroupBaseline(
        minrtt_p50_ms=percentile(rtt_medians, minrtt_percentile) if rtt_medians else None,
        hdratio_p50=percentile(hd_medians, hdratio_percentile) if hd_medians else None,
        window_count=len(series),
    )


def _one_sample_verdict(
    window: int,
    values: Sequence[float],
    baseline: float,
    orientation: float,
    max_ci_width: float,
    traffic_bytes: int,
    confidence: float = CONFIDENCE_LEVEL,
) -> WindowVerdict:
    """CI for (median(values) − baseline) with the baseline as a constant.

    ``orientation`` is +1 when larger medians mean degradation (MinRTT) and
    −1 when smaller medians do (HDratio).
    """
    n = len(values)
    if n < MIN_AGGREGATION_SAMPLES:
        return WindowVerdict(window, math.nan, -math.inf, math.inf, False, traffic_bytes)
    med = percentile(values, 50.0)
    se = median_standard_error(values, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)
    difference = orientation * (med - baseline)
    half = z * se
    low, high = difference - half, difference + half
    valid = (high - low) <= max_ci_width
    return WindowVerdict(window, difference, low, high, valid, traffic_bytes)


def degradation_series(
    store: AggregationStore,
    group: UserGroupKey,
    metric: str,
) -> List[WindowVerdict]:
    """Per-window degradation verdicts for one group (§5).

    ``metric`` is ``"minrtt"`` or ``"hdratio"``. Windows with no preferred-
    route data are skipped; windows failing validity rules are returned but
    flagged invalid so coverage accounting can still see them.
    """
    if metric not in ("minrtt", "hdratio"):
        raise ValueError("metric must be 'minrtt' or 'hdratio'")
    series = store.group_series(group, route_rank=0)
    if not series:
        return []
    baseline = compute_baseline(series)
    verdicts: List[WindowVerdict] = []
    for aggregation in series:
        if metric == "minrtt":
            if baseline.minrtt_p50_ms is None:
                continue
            verdicts.append(
                _one_sample_verdict(
                    aggregation.window,
                    aggregation.min_rtts_ms,
                    baseline.minrtt_p50_ms,
                    orientation=+1.0,
                    max_ci_width=MAX_CI_WIDTH_MINRTT_MS,
                    traffic_bytes=aggregation.traffic_bytes,
                )
            )
        else:
            if baseline.hdratio_p50 is None or len(aggregation.hdratios) == 0:
                continue
            verdicts.append(
                _one_sample_verdict(
                    aggregation.window,
                    aggregation.hdratios,
                    baseline.hdratio_p50,
                    orientation=-1.0,
                    max_ci_width=MAX_CI_WIDTH_HDRATIO,
                    traffic_bytes=aggregation.traffic_bytes,
                )
            )
    return verdicts


def _two_sample_comparison(
    values_a: Sequence[float],
    values_b: Sequence[float],
    max_ci_width: float,
) -> MedianComparison:
    return compare_medians(
        values_a,
        values_b,
        confidence=CONFIDENCE_LEVEL,
        max_ci_width=max_ci_width,
        min_samples=MIN_AGGREGATION_SAMPLES,
    )


def _best_alternate(
    store: AggregationStore,
    group: UserGroupKey,
    window: int,
    metric: str,
) -> Optional[Aggregation]:
    """The best-performing alternate-route aggregation in a window."""
    best: Optional[Aggregation] = None
    best_value: Optional[float] = None
    for rank in store.route_ranks(group, window):
        if rank == 0:
            continue
        candidate = store.get(group, rank, window)
        if candidate is None:
            continue
        if metric == "minrtt":
            if not candidate.has_min_samples:
                continue
            value = candidate.minrtt_p50
            better = best_value is None or value < best_value
        else:
            if not candidate.has_min_hd_samples or candidate.hdratio_p50 is None:
                continue
            value = candidate.hdratio_p50
            better = best_value is None or value > best_value
        if better:
            best, best_value = candidate, value
    return best


def opportunity_series(
    store: AggregationStore,
    group: UserGroupKey,
    metric: str,
    hd_guard_slack: float = 0.0,
) -> List[WindowVerdict]:
    """Per-window opportunity verdicts for one group (§6).

    Positive differences mean the best alternate beats the preferred route.
    For ``metric="minrtt"`` the HDratio guard is applied: the verdict is
    only valid if the alternate's HDratio is statistically equal or better
    than the preferred route's (within ``hd_guard_slack``); when the guard
    cannot be evaluated (insufficient HD samples), the paper's
    prioritization of HDratio means we conservatively treat the window as
    having no MinRTT opportunity — the verdict is kept but its difference
    is clamped to the CI so it never fires.
    """
    if metric not in ("minrtt", "hdratio"):
        raise ValueError("metric must be 'minrtt' or 'hdratio'")
    verdicts: List[WindowVerdict] = []
    for window in store.group_windows(group, route_rank=0):
        preferred = store.get(group, 0, window)
        if preferred is None:
            continue
        alternate = _best_alternate(store, group, window, metric)
        if alternate is None:
            continue
        if metric == "minrtt":
            comparison = _two_sample_comparison(
                preferred.min_rtts_ms, alternate.min_rtts_ms, MAX_CI_WIDTH_MINRTT_MS
            )
            guard_ok = True
            if comparison.valid:
                guard = _two_sample_comparison(
                    alternate.hdratios, preferred.hdratios, MAX_CI_WIDTH_HDRATIO
                )
                if guard.valid:
                    guard_ok = guard.statistically_equal_or_greater(hd_guard_slack)
                elif len(alternate.hdratios) >= 5 and len(preferred.hdratios) >= 5:
                    # Not enough signal to rule out an HD regression: be
                    # conservative and suppress the MinRTT opportunity.
                    guard_ok = guard.statistically_equal_or_greater(hd_guard_slack)
            verdicts.append(
                WindowVerdict(
                    window=window,
                    difference=comparison.difference,
                    ci_low=comparison.ci_low if guard_ok else -math.inf,
                    ci_high=comparison.ci_high,
                    valid=comparison.valid,
                    traffic_bytes=preferred.traffic_bytes,
                    alternate_rank=alternate.route_rank,
                )
            )
        else:
            comparison = _two_sample_comparison(
                alternate.hdratios, preferred.hdratios, MAX_CI_WIDTH_HDRATIO
            )
            verdicts.append(
                WindowVerdict(
                    window=window,
                    difference=comparison.difference,
                    ci_low=comparison.ci_low,
                    ci_high=comparison.ci_high,
                    valid=comparison.valid,
                    traffic_bytes=preferred.traffic_bytes,
                    alternate_rank=alternate.route_rank,
                )
            )
    return verdicts
