"""Sample records exchanged between the measurement and analysis layers.

These dataclasses define the contract the paper's load balancer
instrumentation produces (§2.2.2): per-transaction TCP state captured "at
prescribed points", plus per-session TCP state at start and end, annotated
after close with the egress route (BGP prefix, AS path, relationship).

Everything downstream — goodput estimation, HDratio, aggregation,
degradation and opportunity analysis — consumes only these records, so the
same analysis code runs over packet-level simulator output and over the
synthetic session-level workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "HttpVersion",
    "Relationship",
    "RouteInfo",
    "TransactionRecord",
    "SessionSample",
    "UserGroupKey",
]


class HttpVersion(enum.Enum):
    """Application protocol carried by the session (§2.1)."""

    HTTP_1_1 = "HTTP/1.1"
    HTTP_2 = "HTTP/2"


class Relationship(enum.Enum):
    """Peering relationship of an egress route (§6.1).

    ``PRIVATE`` is a PNI peer, ``PUBLIC`` is peering across an IXP fabric,
    ``TRANSIT`` is a (paid) transit provider.
    """

    PRIVATE = "private"
    PUBLIC = "public"
    TRANSIT = "transit"


@dataclass(frozen=True)
class RouteInfo:
    """Egress route annotation attached to each sample after session close.

    Attributes
    ----------
    prefix:
        Destination BGP prefix (e.g. ``"203.0.112.0/20"``).
    as_path:
        AS path as announced, including any prepending.
    relationship:
        Peering relationship of the next hop.
    preference_rank:
        0 for the policy-preferred route, 1 for the best alternate, etc.
    prepended:
        Whether the announcement carried AS-path prepending (§6.2.2 uses this
        as an ingress-TE signal that deprioritizes a route).
    """

    prefix: str
    as_path: Tuple[int, ...]
    relationship: Relationship
    preference_rank: int = 0
    prepended: bool = False

    @property
    def as_path_length(self) -> int:
        return len(self.as_path)

    @property
    def is_preferred(self) -> bool:
        return self.preference_rank == 0


@dataclass(frozen=True)
class TransactionRecord:
    """Instrumented state for one HTTP transaction (§§3.2.2–3.2.5).

    Times are absolute seconds on the server clock. ``first_byte_time`` is
    when the first response byte is written to the NIC; ``ack_time`` is when
    the ACK covering the *second-to-last* packet arrives at the NIC (the
    delayed-ACK correction of §3.2.5 — the last packet and its ACK are
    excluded). ``response_bytes`` is the full response size; the goodput
    model subtracts ``last_packet_bytes`` before use.

    ``cwnd_bytes_at_first_byte`` is Wnic: the congestion window measured when
    the first response byte was written to the NIC.

    ``bytes_in_flight_at_start`` supports the eligibility rule of §3.2.5: a
    transaction whose predecessor still had unacknowledged data when this
    response started, and which was not coalesced with it, must be excluded
    from goodput analysis.

    ``last_byte_write_time`` is when the final response byte was handed to
    the NIC; it is what the back-to-back coalescing rule compares against
    (paper footnote 9 — responses written "in series" with no transport-
    layer gap behave as one). ``None`` means unknown, in which case only
    genuinely overlapping responses coalesce.
    """

    first_byte_time: float
    ack_time: float
    response_bytes: int
    last_packet_bytes: int
    cwnd_bytes_at_first_byte: int
    bytes_in_flight_at_start: int = 0
    coalesced_count: int = 1
    last_byte_write_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ack_time < self.first_byte_time:
            raise ValueError("ack_time precedes first_byte_time")
        if (
            self.last_byte_write_time is not None
            and self.last_byte_write_time < self.first_byte_time
        ):
            raise ValueError("last_byte_write_time precedes first_byte_time")
        if self.response_bytes <= 0:
            raise ValueError("response_bytes must be positive")
        if not 0 <= self.last_packet_bytes <= self.response_bytes:
            raise ValueError("last_packet_bytes out of range")
        if self.cwnd_bytes_at_first_byte <= 0:
            raise ValueError("cwnd_bytes_at_first_byte must be positive")

    @property
    def transfer_time(self) -> float:
        """Ttotal after the delayed-ACK correction (§3.2.5)."""
        return self.ack_time - self.first_byte_time

    @property
    def measured_bytes(self) -> int:
        """Btotal after excluding the last packet (§3.2.5)."""
        return self.response_bytes - self.last_packet_bytes


@dataclass
class SessionSample:
    """One sampled HTTP session as emitted by the load balancer (§2.2.2).

    The measurement layer fills in the raw fields; the analysis layer
    computes ``hdratio`` lazily via :mod:`repro.core.hdratio`.
    """

    session_id: int
    start_time: float
    end_time: float
    http_version: HttpVersion
    min_rtt_seconds: float
    bytes_sent: int
    busy_time_seconds: float
    transactions: List[TransactionRecord] = field(default_factory=list)
    route: Optional[RouteInfo] = None
    pop: str = ""
    client_country: str = ""
    client_continent: str = ""
    client_ip_is_hosting: bool = False
    geo_tag: str = ""
    #: Response sizes of transactions against media (image/video) endpoints.
    #: The paper's Figure 2 splits responses by serving endpoint; the load
    #: balancer knows the endpoint, so the tag rides along with the sample.
    media_response_sizes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("session ends before it starts")
        if self.min_rtt_seconds <= 0:
            raise ValueError("min_rtt_seconds must be positive")
        if self.bytes_sent < 0:
            raise ValueError("bytes_sent must be non-negative")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def busy_fraction(self) -> float:
        """Share of the session lifetime the server was actively sending."""
        if self.duration <= 0:
            return 1.0
        return min(self.busy_time_seconds / self.duration, 1.0)

    @property
    def min_rtt_ms(self) -> float:
        return self.min_rtt_seconds * 1000.0

    @property
    def transaction_count(self) -> int:
        return len(self.transactions)


@dataclass(frozen=True)
class UserGroupKey:
    """Aggregation key (§3.3): (PoP, client BGP prefix, client country).

    The prefix carries the client AS implicitly (routes vary per prefix, so
    aggregating to the AS would mix routing decisions), and the country term
    reduces variance from geographically wide prefixes (Figure 5).
    """

    pop: str
    prefix: str
    country: str

    def __str__(self) -> str:
        return f"{self.pop}|{self.prefix}|{self.country}"
