"""Core methodology of "Internet Performance from Facebook's Edge" (§3).

The subpackage implements, from scratch, the paper's measurement and
analysis machinery:

- :mod:`repro.core.goodput` — Gtestable / Tmodel(R) / delivery-rate
  estimation (the novel server-side goodput method, §3.2.2–3.2.3);
- :mod:`repro.core.coalesce` — HTTP/2 and back-to-back coalescing and
  bytes-in-flight eligibility (§3.2.5);
- :mod:`repro.core.hdratio` — the per-session HDratio metric (§3.2.4);
- :mod:`repro.core.minrtt` — windowed MinRTT / smoothed RTT (§3.1);
- :mod:`repro.core.aggregation` — user groups and 15-minute windows (§3.3);
- :mod:`repro.core.comparison` — CI-gated degradation and opportunity
  verdicts (§3.4, §§5–6);
- :mod:`repro.core.classification` — temporal behaviour classes (§3.4.2).
"""

from repro.core.aggregation import Aggregation, AggregationStore, window_index
from repro.core.classification import (
    GroupClassification,
    TemporalClass,
    classify_group,
)
from repro.core.coalesce import (
    CoalescedTransaction,
    coalesce_transactions,
    eligible_transactions,
)
from repro.core.comparison import (
    GroupBaseline,
    WindowVerdict,
    compute_baseline,
    degradation_series,
    opportunity_series,
)
from repro.core.constants import (
    AGGREGATION_WINDOW_SECONDS,
    HD_GOODPUT_BPS,
    HD_GOODPUT_BYTES_PER_SEC,
    MINRTT_WINDOW_SECONDS,
)
from repro.core.goodput import (
    GoodputAssessment,
    assess_transaction,
    estimate_delivery_rate,
    ideal_round_trips,
    ideal_wstart,
    max_testable_goodput,
    model_transfer_time,
    naive_goodput,
)
from repro.core.hdratio import (
    SessionGoodput,
    compute_hdratio,
    naive_hdratio,
    session_goodput,
)
from repro.core.minrtt import MinRttEstimator, SmoothedRttEstimator
from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
    UserGroupKey,
)

__all__ = [
    "AGGREGATION_WINDOW_SECONDS",
    "Aggregation",
    "AggregationStore",
    "CoalescedTransaction",
    "GoodputAssessment",
    "GroupBaseline",
    "GroupClassification",
    "HD_GOODPUT_BPS",
    "HD_GOODPUT_BYTES_PER_SEC",
    "HttpVersion",
    "MINRTT_WINDOW_SECONDS",
    "MinRttEstimator",
    "Relationship",
    "RouteInfo",
    "SessionGoodput",
    "SessionSample",
    "SmoothedRttEstimator",
    "TemporalClass",
    "TransactionRecord",
    "UserGroupKey",
    "WindowVerdict",
    "assess_transaction",
    "classify_group",
    "coalesce_transactions",
    "compute_baseline",
    "compute_hdratio",
    "degradation_series",
    "eligible_transactions",
    "estimate_delivery_rate",
    "ideal_round_trips",
    "ideal_wstart",
    "max_testable_goodput",
    "model_transfer_time",
    "naive_goodput",
    "naive_hdratio",
    "opportunity_series",
    "session_goodput",
    "window_index",
]
