"""Durable filesystem helpers: fsync'd atomic replace.

``os.replace`` alone gives *atomicity* (readers see the old file or the
new file, never a mix) but not *durability*: on many filesystems a crash
shortly after the rename can surface a zero-length or partial target,
because neither the temp file's data nor the directory entry had reached
the disk. The write protocol here closes that window:

1. write the payload to a temp file beside the target;
2. flush and ``fsync`` the temp file (data durable under its temp name);
3. ``os.replace`` onto the target (atomic swap);
4. ``fsync`` the parent directory (the rename itself durable).

:func:`fsync_file` exists for writers that stream through higher-level
handles (text wrappers, gzip) and can only sync after closing: re-opening
the closed file and fsyncing its descriptor flushes the same inode.

Directory fsync is not supported everywhere (and fails on some network
filesystems); :func:`fsync_dir` degrades to a no-op rather than turning a
successful write into an error.
"""

from __future__ import annotations

import os
import pathlib
from typing import Union

__all__ = ["atomic_write_bytes", "fsync_dir", "fsync_file", "temp_path_for"]

PathLike = Union[str, pathlib.Path]


def temp_path_for(path: PathLike) -> pathlib.Path:
    """The conventional temp-file name for an atomic write of ``path``."""
    path = pathlib.Path(path)
    return path.parent / f"{path.name}.tmp.{os.getpid()}"


def fsync_file(path: PathLike) -> None:
    """Flush a *closed* file's data to disk (open read-only, fsync, close)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: PathLike) -> None:
    """Flush a directory entry table to disk; no-op where unsupported."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = pathlib.Path(path)
    tmp = temp_path_for(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)
