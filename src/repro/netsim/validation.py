"""§3.2.3 validation sweep: the estimator against the packet simulator.

The paper validates its goodput-estimation technique in NS3 over 15,840
configurations of bottleneck bandwidth (0.5–5 Mbps), round-trip propagation
delay (20–200 ms), initial cwnd (1–50 packets), and transfer size (1–500
packets). For every configuration whose transfer *can* test for the
bottleneck rate (``Gtestable > Gbottleneck``), the estimated goodput must

- **never overestimate** the bottleneck rate, and
- usually only slightly underestimate it: the paper reports the 99th
  percentile of the relative error ``(Gbottleneck − G) / Gbottleneck`` as
  0.066.

:func:`run_validation_sweep` reruns that experiment against our simulator
(delayed ACKs off, as in the paper's NS3 setup — footnote 7). The default
grid is a coarser version of the paper's for runtime reasons; the benchmark
exposes the density as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.goodput import (
    estimate_delivery_rate,
    max_testable_goodput,
)
from repro.netsim.scenarios import run_transfer
from repro.stats.weighted import percentile

__all__ = [
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "effective_min_rtt",
    "run_validation_sweep",
]

MSS = 1500


def effective_min_rtt(
    measured_seconds: Optional[float], configured_rtt_ms: float
) -> float:
    """MinRTT to feed the model: measured if any, else the configured delay.

    The fallback must trigger only when *no* RTT sample exists
    (``measured_seconds is None``) — a measured value of ``0.0`` is a real
    observation on a zero-propagation grid point and must be preserved. A
    truthiness test (``measured or fallback``) silently replaces that 0.0
    with the configured propagation delay and corrupts the relative-error
    accounting on zero-RTT points.
    """
    if measured_seconds is None:
        return configured_rtt_ms / 1000.0
    return measured_seconds


@dataclass(frozen=True)
class SweepConfig:
    """Grid of configurations to simulate (paper ranges by default)."""

    bottleneck_mbps: Sequence[float] = (0.5, 1.0, 2.5, 5.0)
    rtt_ms: Sequence[float] = (20.0, 60.0, 120.0, 200.0)
    initial_cwnd_packets: Sequence[int] = (1, 10, 25, 50)
    transfer_packets: Sequence[int] = (1, 10, 50, 200, 500)

    def points(self) -> Iterable[tuple]:
        for bw in self.bottleneck_mbps:
            for rtt in self.rtt_ms:
                for icw in self.initial_cwnd_packets:
                    for size in self.transfer_packets:
                        yield bw, rtt, icw, size

    @property
    def count(self) -> int:
        return (
            len(self.bottleneck_mbps)
            * len(self.rtt_ms)
            * len(self.initial_cwnd_packets)
            * len(self.transfer_packets)
        )


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome."""

    bottleneck_mbps: float
    rtt_ms: float
    initial_cwnd_packets: int
    transfer_packets: int
    testable_goodput_mbps: float
    estimated_goodput_mbps: Optional[float]
    can_test_bottleneck: bool

    @property
    def relative_error(self) -> Optional[float]:
        """(Gbottleneck − G) / Gbottleneck for configurations that test."""
        if not self.can_test_bottleneck or self.estimated_goodput_mbps is None:
            return None
        return (
            self.bottleneck_mbps - self.estimated_goodput_mbps
        ) / self.bottleneck_mbps


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)
    congestion_control: str = "reno"

    @property
    def testing_points(self) -> List[SweepPoint]:
        return [p for p in self.points if p.can_test_bottleneck]

    @property
    def overestimates(self) -> List[SweepPoint]:
        """Configurations where the estimate exceeded the bottleneck rate
        beyond numerical tolerance — the paper requires none."""
        return [
            p
            for p in self.testing_points
            if p.relative_error is not None and p.relative_error < -1e-6
        ]

    def relative_error_percentile(self, q: float) -> float:
        errors = [
            p.relative_error for p in self.testing_points if p.relative_error is not None
        ]
        if not errors:
            raise ValueError("no testing configurations in sweep")
        return percentile(errors, q)


def run_validation_sweep(
    config: SweepConfig = SweepConfig(),
    congestion_control: str = "reno",
) -> SweepResult:
    """Run the sweep and evaluate the estimator at every grid point.

    ``congestion_control`` names any registered controller — the estimator
    is Reno-modelled (footnote 3), so sweeping other controllers maps where
    the never-overestimate invariant holds beyond its home assumptions.
    """
    result = SweepResult(congestion_control=congestion_control)
    for bw, rtt_ms, icw, size_packets in config.points():
        total_bytes = size_packets * MSS
        transfer = run_transfer(
            response_sizes=[total_bytes],
            bottleneck_mbps=bw,
            rtt_ms=rtt_ms,
            initial_cwnd_packets=icw,
            delayed_ack=False,
            queue_packets=10_000,  # no drop-tail losses: ideal conditions
            congestion_control=congestion_control,
        )
        # Use the *measured* MinRTT exactly as production does: it already
        # includes one packet's serialization at the bottleneck, which is
        # what lets the model's per-round accounting match reality
        # (paper footnote 5).
        rtt = effective_min_rtt(transfer.min_rtt_seconds, rtt_ms)
        bottleneck_bytes_per_sec = bw * 1e6 / 8.0
        record = transfer.records[0] if transfer.records else None

        estimated: Optional[float] = None
        testable = 0.0
        # A transfer whose measured portion is a single packet (after the
        # delayed-ACK correction drops the final packet) cannot resolve a
        # delivery rate: its timing is one serialization against one
        # propagation sample, so the ±1-packet ambiguity between MinRTT and
        # the transfer time dominates. Such micro-transfers are treated as
        # unable to test — in production they would coalesce with adjacent
        # responses (§3.2.5) rather than stand alone.
        if record is not None and record.measured_bytes > MSS and rtt > 0:
            wstart = record.cwnd_bytes_at_first_byte
            testable = max_testable_goodput(record.measured_bytes, wstart, rtt)
            estimated = estimate_delivery_rate(
                record.measured_bytes,
                record.transfer_time,
                wstart,
                rtt,
            )
            # Cap at the testable rate: the estimator can only speak to
            # rates the transaction exercised.
            estimated = min(estimated, testable)
        can_test = testable > bottleneck_bytes_per_sec
        result.points.append(
            SweepPoint(
                bottleneck_mbps=bw,
                rtt_ms=rtt_ms,
                initial_cwnd_packets=icw,
                transfer_packets=size_packets,
                testable_goodput_mbps=testable * 8 / 1e6,
                estimated_goodput_mbps=(
                    estimated * 8 / 1e6 if estimated is not None else None
                ),
                can_test_bottleneck=can_test,
            )
        )
    return result
