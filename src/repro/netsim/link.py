"""Unidirectional link model with a bottleneck queue.

Models the four delay/loss effects the goodput model has to survive:

- **serialization** — packets drain at ``rate_bps``; back-to-back sends queue
  behind each other (this is the "transmission time at bottleneck links" of
  §3.2.3);
- **propagation** — fixed one-way delay;
- **queueing/drops** — a finite FIFO; packets arriving to a full queue are
  dropped (drop-tail), which is how congestion losses arise;
- **random loss & jitter** — i.i.d. loss probability and additive random
  delay, modelling lossy access links and cross-traffic-induced variance;
- **burst loss** — an optional two-state Gilbert–Elliott process (good/bad,
  geometric burst lengths) modelling the correlated fades of LTE and
  high-mobility paths, where losses arrive in trains rather than i.i.d.

The link is the only place in the simulator where time physics lives; TCP
sees only "hand me a packet" and "a packet arrived".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.engine import Simulator

__all__ = ["Link", "LinkStats", "Packet"]


@dataclass
class Packet:
    """A TCP segment on the wire.

    ``seq`` is the first payload byte's offset; ``payload_bytes`` is 0 for a
    pure ACK. ``ack_seq`` is the cumulative acknowledgement (next expected
    byte) carried by the segment; ``None`` for data-only segments.
    """

    seq: int
    payload_bytes: int
    ack_seq: Optional[int] = None
    header_bytes: int = 40
    sent_at: float = 0.0
    retransmission: bool = False

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_bytes

    @property
    def is_ack(self) -> bool:
        return self.ack_seq is not None and self.payload_bytes == 0


@dataclass
class LinkStats:
    """Counters for assertions and debugging."""

    sent: int = 0
    delivered: int = 0
    dropped_queue: int = 0
    dropped_random: int = 0
    dropped_burst: int = 0
    bytes_delivered: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_queue + self.dropped_random + self.dropped_burst


class Link:
    """One direction of a path.

    Parameters
    ----------
    sim:
        The simulation engine.
    rate_bps:
        Serialization rate in bits/second. ``None`` means infinitely fast
        (used for ACK return paths where only propagation matters).
    propagation_delay:
        One-way propagation delay in seconds.
    queue_packets:
        FIFO capacity in packets (beyond the one in service). Arrivals when
        the queue is full are dropped.
    loss_probability:
        I.i.d. probability a packet is dropped in flight.
    jitter_seconds:
        Maximum additional uniform random delay per packet.
    burst_loss_probability:
        Per-packet probability of entering the Gilbert–Elliott *bad* state
        (in which every packet is dropped). 0 disables burst loss — and
        draws nothing from ``rng``, so enabling it never perturbs the
        random stream of existing scenarios.
    burst_length_packets:
        Mean burst length expressed in back-to-back packet times: on entry
        the fade's *duration* is drawn exponentially with mean
        ``burst_length_packets`` line-rate serializations, so a burst kills
        about that many consecutive packets of a saturating flow. The fade
        expires in wall-time, not per packet — a sparse flow (e.g. one RTO
        retransmission a minute) must not pin the channel bad forever.
    rng:
        Random source for loss/jitter; pass a seeded instance for
        reproducibility.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float] = None,
        propagation_delay: float = 0.010,
        queue_packets: int = 1000,
        loss_probability: float = 0.0,
        jitter_seconds: float = 0.0,
        burst_loss_probability: float = 0.0,
        burst_length_packets: float = 4.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive (or None for infinite)")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= burst_loss_probability < 1.0:
            raise ValueError("burst_loss_probability must be in [0, 1)")
        if burst_length_packets < 1.0:
            raise ValueError("burst_length_packets must be >= 1")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.queue_packets = queue_packets
        self.loss_probability = loss_probability
        self.jitter_seconds = jitter_seconds
        self.burst_loss_probability = burst_loss_probability
        self.burst_length_packets = burst_length_packets
        self._burst_bad = False
        self._burst_until = 0.0
        self.rng = rng or random.Random(0)
        self.stats = LinkStats()
        self.receiver: Optional[Callable[[Packet], None]] = None
        self._busy_until = 0.0
        self._queued = 0
        #: Observers called as ``callback(event, packet, now)`` where event
        #: is "send", "deliver", "drop-queue", or "drop-loss" — used by the
        #: trace recorder; zero cost when empty.
        self.observers: list = []

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        self.receiver = receiver

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission at the current time."""
        if self.receiver is None:
            raise RuntimeError("link has no receiver connected")
        self.stats.sent += 1
        for observer in self.observers:
            observer("send", packet, self.sim.now)

        now = self.sim.now
        if self.rate_bps is None:
            serialization = 0.0
            departure = now
        else:
            serialization = packet.size_bytes * 8.0 / self.rate_bps
            # Drop-tail: count packets waiting for the serializer.
            if self._busy_until > now and self._queued >= self.queue_packets:
                self.stats.dropped_queue += 1
                for observer in self.observers:
                    observer("drop-queue", packet, now)
                return
            if self._busy_until > now:
                self._queued += 1
                start = self._busy_until
            else:
                start = now
            departure = start + serialization
            self._busy_until = departure

        if self.loss_probability > 0 and self.rng.random() < self.loss_probability:
            self.stats.dropped_random += 1
            for observer in self.observers:
                observer("drop-loss", packet, now)
            if self.rate_bps is not None and departure > now:
                # The packet still occupied the serializer before being lost
                # downstream; release its queue slot at departure.
                self.sim.schedule_at(departure, self._release_slot)
            return

        if self.burst_loss_probability > 0 and self._burst_loss():
            self.stats.dropped_burst += 1
            for observer in self.observers:
                observer("drop-loss", packet, now)
            if self.rate_bps is not None and departure > now:
                self.sim.schedule_at(departure, self._release_slot)
            return

        jitter = self.rng.uniform(0.0, self.jitter_seconds) if self.jitter_seconds else 0.0
        arrival = departure + self.propagation_delay + jitter
        if self.rate_bps is not None and departure > now:
            self.sim.schedule_at(departure, self._release_slot)
        self.sim.schedule_at(arrival, lambda p=packet: self._deliver(p))

    def _burst_loss(self) -> bool:
        """Advance the Gilbert–Elliott chain; True = drop this packet."""
        now = self.sim.now
        if self._burst_bad and now >= self._burst_until:
            self._burst_bad = False
        if self._burst_bad:
            return True
        if self.rng.random() < self.burst_loss_probability:
            # Fade duration ~ Exp(mean = burst_length_packets line-rate
            # serializations): about that many consecutive packets of a
            # saturating flow die, but the fade ends in wall-time even if
            # the flow has stalled.
            packet_time = (
                1540 * 8.0 / self.rate_bps
                if self.rate_bps is not None
                else 0.003
            )
            mean = self.burst_length_packets * packet_time
            self._burst_bad = True
            self._burst_until = now + self.rng.expovariate(1.0 / mean)
            return True
        return False

    def _release_slot(self) -> None:
        if self._queued > 0:
            self._queued -= 1

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.payload_bytes
        for observer in self.observers:
            observer("deliver", packet, self.sim.now)
        assert self.receiver is not None
        self.receiver(packet)

    @property
    def queue_depth(self) -> int:
        return self._queued
