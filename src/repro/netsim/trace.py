"""Packet trace capture and sequence-diagram rendering.

Attaches to a connection's data/ACK links and records every wire event.
:meth:`PacketTrace.render` draws a textual time/sequence diagram in the
spirit of the paper's Figure 4 — data packets flowing right, ACKs flowing
left, losses marked — which is the fastest way to understand (or debug) a
simulated transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.link import Link, Packet

__all__ = ["PacketTrace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One wire event."""

    time: float
    direction: str   # "data" or "ack"
    kind: str        # "send", "deliver", "drop-queue", "drop-loss"
    seq: int
    end_seq: int
    ack_seq: Optional[int]
    retransmission: bool

    @property
    def is_drop(self) -> bool:
        return self.kind.startswith("drop")


class PacketTrace:
    """Event recorder for one connection's two links."""

    def __init__(self, data_link: Link, ack_link: Link) -> None:
        self.events: List[TraceEvent] = []
        data_link.observers.append(self._observer("data"))
        ack_link.observers.append(self._observer("ack"))

    def _observer(self, direction: str):
        def observe(kind: str, packet: Packet, now: float) -> None:
            self.events.append(
                TraceEvent(
                    time=now,
                    direction=direction,
                    kind=kind,
                    seq=packet.seq,
                    end_seq=packet.end_seq,
                    ack_seq=packet.ack_seq,
                    retransmission=packet.retransmission,
                )
            )

        return observe

    # ------------------------------------------------------------------ #
    @property
    def data_packets_sent(self) -> int:
        return sum(
            1 for e in self.events if e.direction == "data" and e.kind == "send"
        )

    @property
    def acks_sent(self) -> int:
        return sum(
            1 for e in self.events if e.direction == "ack" and e.kind == "send"
        )

    @property
    def drops(self) -> int:
        return sum(1 for e in self.events if e.is_drop)

    def round_trips(self) -> int:
        """Rough count of sender round trips: bursts of data separated by
        quiet periods longer than half the median data-send gap."""
        sends = sorted(
            e.time
            for e in self.events
            if e.direction == "data" and e.kind == "send"
        )
        if len(sends) < 2:
            return min(len(sends), 1)
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        threshold = max(sorted(gaps)[len(gaps) // 2] * 4, 1e-6)
        return 1 + sum(1 for gap in gaps if gap > threshold)

    # ------------------------------------------------------------------ #
    def render(self, max_events: int = 80, mss: int = 1500) -> str:
        """Figure-4-style textual sequence diagram.

        One line per event: time, the server/client rails, and what crossed
        the wire. Data flows left→right, ACKs right→left.
        """
        lines = [
            "time (ms)  server                                client",
            "---------  ------                                ------",
        ]
        shown = self.events[:max_events]
        for event in shown:
            stamp = f"{event.time * 1000:8.1f}  "
            if event.direction == "data":
                packets = max((event.end_seq - event.seq + mss - 1) // mss, 1)
                label = f"data {event.seq}..{event.end_seq}"
                if event.retransmission:
                    label += " (rtx)"
                if event.kind == "send":
                    body = f"{label} ──▶".ljust(38)
                elif event.kind == "deliver":
                    body = f"{'':14}──▶ {label}".ljust(38)
                else:
                    body = f"{label} ──✕ {event.kind}".ljust(38)
            else:
                label = f"ack {event.ack_seq}"
                if event.kind == "send":
                    body = f"{'':24}◀── {label}".ljust(38)
                elif event.kind == "deliver":
                    body = f"◀── {label}".ljust(38)
                else:
                    body = f"✕── {label} ({event.kind})".ljust(38)
            lines.append(stamp + body)
        if len(self.events) > max_events:
            lines.append(f"… {len(self.events) - max_events} more events")
        lines.append(
            f"[{self.data_packets_sent} data packets, {self.acks_sent} ACKs, "
            f"{self.drops} drops]"
        )
        return "\n".join(lines)
