"""Performance-enhancing proxy (PEP) split-connection study (§2.2.1).

Satellite and cellular operators commonly deploy PEPs that terminate the
client's TCP connection mid-path and open a second connection to the
server, optimizing each segment separately (RFC 3135). The paper flags the
measurement consequence: server-side instrumentation then observes only the
**server↔PEP** segment, so it "may overestimate goodput and underestimate
latency relative to what would be measured end-to-end" — acceptable for the
paper's purposes (Facebook can only optimize its side of the PEP), and a
drawback that QUIC's encryption removes by making connection splitting
impossible.

:func:`run_split_transfer` builds the full topology — server → (good
middle-mile) → PEP → (impaired last-mile) → client — with two real TCP
connections chained through a relay buffer, instruments the server-side
connection exactly as production would, and reports both the server-side
view and the end-to-end truth so the bias can be quantified.

:func:`run_end_to_end_transfer` runs the same physical path as one
unsplit connection (the QUIC-like behaviour) for comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.hdratio import session_goodput
from repro.netsim.endpoints import InstrumentedServer, TransferResult
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.tcp import TcpConnection, TcpParams

__all__ = ["SplitPathResult", "run_split_transfer", "run_end_to_end_transfer"]


@dataclass(frozen=True)
class SplitPathResult:
    """Server-side view vs end-to-end truth for one (split) transfer."""

    server_view: TransferResult
    server_min_rtt_ms: float
    end_to_end_completion: float
    end_to_end_goodput_bps: float
    client_received_bytes: int
    server_hdratio: Optional[float]

    @property
    def server_goodput_bps(self) -> float:
        if self.server_view.completion_time <= 0:
            return 0.0
        return self.server_view.total_bytes * 8 / self.server_view.completion_time


def _path_links(
    sim: Simulator,
    rtt_ms: float,
    bottleneck_mbps: Optional[float],
    loss: float,
    rng: random.Random,
    queue_packets: int = 1000,
):
    one_way = rtt_ms / 2000.0
    data = Link(
        sim,
        rate_bps=None if bottleneck_mbps is None else bottleneck_mbps * 1e6,
        propagation_delay=one_way,
        loss_probability=loss,
        queue_packets=queue_packets,
        rng=rng,
    )
    ack = Link(sim, rate_bps=None, propagation_delay=one_way, rng=rng)
    return data, ack


def run_split_transfer(
    response_sizes: List[int],
    middle_rtt_ms: float = 20.0,
    middle_mbps: Optional[float] = None,
    last_mile_rtt_ms: float = 550.0,
    last_mile_mbps: float = 2.0,
    last_mile_loss: float = 0.01,
    initial_cwnd_packets: int = 10,
    seed: int = 1,
    max_duration: float = 900.0,
) -> SplitPathResult:
    """Serve ``response_sizes`` through a PEP that splits the connection.

    Defaults model a satellite access network: a short clean segment from
    the server to the ground-station PEP, then a long-latency lossy
    bottleneck to the client. The server's instrumentation (MinRTT, HDratio)
    sees only the first segment.
    """
    if not response_sizes:
        raise ValueError("need at least one response")
    sim = Simulator()
    rng = random.Random(seed)

    # Segment 1: server -> PEP (what the load balancer measures).
    data1, ack1 = _path_links(sim, middle_rtt_ms, middle_mbps, 0.0, rng)
    conn1 = TcpConnection(
        sim, data1, ack1, TcpParams(initial_cwnd_packets=initial_cwnd_packets)
    )
    server = InstrumentedServer(sim, conn1)

    # Segment 2: PEP -> client (the impaired last mile).
    data2, ack2 = _path_links(
        sim, last_mile_rtt_ms, last_mile_mbps, last_mile_loss, rng
    )
    conn2 = TcpConnection(
        sim, data2, ack2, TcpParams(initial_cwnd_packets=initial_cwnd_packets)
    )

    # The PEP relay: bytes delivered in order on segment 1 are immediately
    # written onward on segment 2.
    def relay(nbytes: int, now: float) -> None:
        conn2.write(nbytes)

    conn1.on_deliver.append(relay)

    client_received = [0]
    completion = [0.0]

    def client_read(nbytes: int, now: float) -> None:
        client_received[0] += nbytes
        completion[0] = now

    conn2.on_deliver.append(client_read)

    server.send_response(response_sizes[0])
    for size in response_sizes[1:]:
        server.send_after_ack(size)
    sim.run(until=max_duration)

    view = server.result()
    total = sum(response_sizes)
    e2e_goodput = (
        client_received[0] * 8 / completion[0] if completion[0] > 0 else 0.0
    )
    hdratio = (
        session_goodput(view.records, view.min_rtt_seconds).hdratio
        if view.records
        and view.min_rtt_seconds is not None
        and view.min_rtt_seconds > 0
        else None
    )
    return SplitPathResult(
        server_view=view,
        server_min_rtt_ms=(view.min_rtt_seconds or 0.0) * 1000.0,
        end_to_end_completion=completion[0],
        end_to_end_goodput_bps=e2e_goodput,
        client_received_bytes=client_received[0],
        server_hdratio=hdratio,
    )


def run_end_to_end_transfer(
    response_sizes: List[int],
    middle_rtt_ms: float = 20.0,
    last_mile_rtt_ms: float = 550.0,
    last_mile_mbps: float = 2.0,
    last_mile_loss: float = 0.01,
    initial_cwnd_packets: int = 10,
    seed: int = 1,
    max_duration: float = 900.0,
) -> TransferResult:
    """The same physical path without the split (QUIC-like: no PEP).

    One connection traverses the combined latency with the last mile as the
    bottleneck — the server's measurements now reflect end-to-end truth.
    """
    from repro.netsim.scenarios import run_transfer

    return run_transfer(
        response_sizes,
        bottleneck_mbps=last_mile_mbps,
        rtt_ms=middle_rtt_ms + last_mile_rtt_ms,
        loss_probability=last_mile_loss,
        initial_cwnd_packets=initial_cwnd_packets,
        seed=seed,
        max_duration=max_duration,
    )
