"""Packet-level discrete-event TCP simulator.

This subpackage stands in for the NS3 simulations the paper uses to validate
its goodput-estimation technique (§3.2.3), and for the production TCP stack
whose state the load balancer instruments. It is written from scratch:

- :mod:`repro.netsim.engine` — event loop and simulation clock;
- :mod:`repro.netsim.link` — bottleneck link with serialization delay,
  propagation delay, a finite FIFO queue, random loss, and jitter;
- :mod:`repro.netsim.tcp` — a TCP sender/receiver pair with byte-counted
  slow start, congestion avoidance, fast retransmit, RTO with backoff, and
  (optionally delayed) cumulative ACKs;
- :mod:`repro.netsim.endpoints` — an HTTP-ish server that writes transaction
  responses over a connection and captures the same instrumentation contract
  the paper's load balancer uses (Wnic, NIC timestamps, second-to-last-ACK);
- :mod:`repro.netsim.scenarios` — canned single-connection topologies,
  including the paper's Figure-4 walkthrough;
- :mod:`repro.netsim.validation` — the §3.2.3 parameter sweep.
"""

from repro.netsim.congestion import (
    BbrLikeControl,
    CongestionControl,
    CubicControl,
    RenoControl,
    cc_for,
    register_congestion_control,
    registered_congestion_controls,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import Link, LinkStats
from repro.netsim.pep import (
    SplitPathResult,
    run_end_to_end_transfer,
    run_split_transfer,
)
from repro.netsim.tcp import TcpConnection, TcpParams
from repro.netsim.trace import PacketTrace, TraceEvent
from repro.netsim.endpoints import InstrumentedServer, TransferResult
from repro.netsim.scenarios import (
    Figure4Result,
    run_figure4_scenario,
    run_transfer,
)
from repro.netsim.validation import SweepConfig, SweepResult, run_validation_sweep

__all__ = [
    "BbrLikeControl",
    "CongestionControl",
    "CubicControl",
    "Figure4Result",
    "InstrumentedServer",
    "Link",
    "LinkStats",
    "PacketTrace",
    "RenoControl",
    "Simulator",
    "TraceEvent",
    "SplitPathResult",
    "SweepConfig",
    "SweepResult",
    "TcpConnection",
    "TcpParams",
    "TransferResult",
    "cc_for",
    "register_congestion_control",
    "registered_congestion_controls",
    "run_end_to_end_transfer",
    "run_figure4_scenario",
    "run_split_transfer",
    "run_transfer",
    "run_validation_sweep",
]
