"""Discrete-event simulation engine.

A minimal but complete event loop: events are (time, sequence, callback)
tuples in a binary heap; ties in time break by insertion order so the
simulation is fully deterministic. Cancellation is handled with tombstones
(the pattern recommended by the ``heapq`` docs) because timer cancellation
(e.g. TCP RTO restarts) vastly outnumbers expiry.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._cancelled_reaped = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def events_cancelled(self) -> int:
        """Tombstoned events reaped from the queue so far."""
        return self._cancelled_reaped

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        handle = EventHandle()
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), handle, callback)
        )
        return handle

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``."""
        return self.schedule(when - self._now, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        event budget is exhausted (a guard against runaway simulations)."""
        processed_before = self._processed
        cancelled_before = self._cancelled_reaped
        try:
            while self._queue:
                when, _, handle, callback = self._queue[0]
                if until is not None and when > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                if handle.cancelled:
                    self._cancelled_reaped += 1
                    continue
                if self._processed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; likely a bug"
                    )
                self._now = when
                self._processed += 1
                callback()
        finally:
            self._publish_metrics(processed_before, cancelled_before)

    def _publish_metrics(self, processed_before: int, cancelled_before: int) -> None:
        """Count this run's event-loop work into the active obs registry."""
        from repro.obs import active_metrics

        registry = active_metrics()
        if registry is None:
            return
        registry.inc("netsim.events_processed", self._processed - processed_before)
        registry.inc(
            "netsim.events_cancelled", self._cancelled_reaped - cancelled_before
        )
        registry.inc("netsim.runs")
        registry.set_gauge("netsim.sim_time_seconds", self._now)

    def run_until_idle(self) -> None:
        self.run(until=None)

    @property
    def pending_events(self) -> int:
        return sum(1 for _, _, handle, _ in self._queue if not handle.cancelled)
